//! Background S1+S2 rebuilds.
//!
//! Paper §3.3: "we also decompose the dataset into grids and perform S1
//! and S2 in independent sub-processes while training continues either
//! with uniform sampling, or a previously calculated distribution."
//!
//! [`BackgroundBuilder`] owns a worker thread fed through std mpsc
//! channels: the trainer requests a rebuild every `τ_G` iterations and
//! keeps sampling from the previous clustering until the new one arrives
//! (`S ← S_new` in Algorithm 1, lines 14–18). The GPU-side training loop
//! therefore never blocks on graph work.
//!
//! A worker that dies (panics) is *detected*, not silently absorbed:
//! every channel operation reports [`WorkerDied`] once the worker is
//! gone, so the trainer can fall back to inline rebuilds instead of
//! waiting forever on a result that will never come.

use sgm_graph::knn::{build_knn_graph, KnnConfig};
use sgm_graph::lrd::{decompose, Clustering, LrdConfig};
use sgm_graph::points::PointCloud;
use sgm_graph::refresh::{GraphRefresher, RefreshConfig, RefreshOptions, RefreshStats};
use sgm_obs::{trace, Histogram, SpanContext, TraceLevel};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Wall time of every PGM rebuild, background or inline (nanoseconds).
static REBUILD_NS: Histogram = Histogram::new("sgm_sampler_rebuild_ns");

/// A rebuild job: construct the kNN PGM over `cloud` and decompose it.
#[derive(Debug, Clone)]
pub struct RebuildRequest {
    /// Point cloud to build the PGM over (spatial coordinates, optionally
    /// augmented with output features — paper §3.2's later-stage rebuild).
    pub cloud: Arc<PointCloud>,
    /// kNN configuration (S1).
    pub knn: KnnConfig,
    /// LRD configuration (S2).
    pub lrd: LrdConfig,
    /// When set, the serving [`RebuildWorker`] maintains a persistent
    /// [`GraphRefresher`] and ships **deltas**: only dirty points are
    /// re-queried and only dirty LRD blocks recomputed. `None` keeps
    /// the classic stateless full rebuild.
    pub incremental: Option<RefreshOptions>,
}

/// A finished rebuild: the clustering to swap in, plus the refresh
/// telemetry when the incremental path served it.
#[derive(Debug, Clone)]
pub struct RebuildOutput {
    /// The clustering (`S_new` in Algorithm 1).
    pub clustering: Clustering,
    /// Delta-path statistics (`None` on the classic full path).
    pub refresh: Option<RefreshStats>,
}

impl From<Clustering> for RebuildOutput {
    fn from(clustering: Clustering) -> Self {
        RebuildOutput {
            clustering,
            refresh: None,
        }
    }
}

/// Runs a **stateless full** rebuild synchronously (ignores
/// `req.incremental` — per-request state lives in [`RebuildWorker`]).
pub fn run_rebuild(req: &RebuildRequest) -> Clustering {
    let t0 = Instant::now();
    let g = build_knn_graph(&req.cloud, &req.knn);
    let c = decompose(&g, &req.lrd);
    REBUILD_NS.record_duration(t0.elapsed());
    c
}

/// The stateful rebuild executor: owns the persistent incremental
/// engine between requests. Both the production worker thread
/// ([`BackgroundBuilder::spawn`]) and the sampler's inline fallback
/// hold one, so the delta path is identical either way — and a worker
/// crash takes its engine state down with it, which is why a dying
/// worker can never hand the sampler a torn graph: only complete
/// [`RebuildOutput`]s ever cross the channel.
#[derive(Debug, Default)]
pub struct RebuildWorker {
    refresher: Option<GraphRefresher>,
}

impl RebuildWorker {
    /// A worker with no engine state yet.
    pub fn new() -> Self {
        RebuildWorker::default()
    }

    /// Serves one request: delta patch when `req.incremental` is set and
    /// the engine is warm, full (re)build otherwise.
    pub fn run(&mut self, req: &RebuildRequest) -> RebuildOutput {
        match &req.incremental {
            None => {
                self.refresher = None;
                run_rebuild(req).into()
            }
            Some(opts) => {
                let cfg = RefreshConfig {
                    knn: req.knn.clone(),
                    lrd: req.lrd.clone(),
                    opts: opts.clone(),
                };
                let stale = self.refresher.as_ref().is_some_and(|r| *r.config() != cfg);
                if stale {
                    self.refresher = None;
                }
                let refresher = self
                    .refresher
                    .get_or_insert_with(|| GraphRefresher::new(cfg));
                let t0 = Instant::now();
                let (clustering, stats) = refresher.refresh(&req.cloud);
                REBUILD_NS.record_duration(t0.elapsed());
                RebuildOutput {
                    clustering,
                    refresh: Some(stats),
                }
            }
        }
    }
}

/// The rebuild worker thread terminated (panicked) while results were
/// still expected. Carries the panic message when one could be
/// recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerDied {
    /// Panic payload, if the worker panicked with a string message.
    pub panic: Option<String>,
}

impl std::fmt::Display for WorkerDied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.panic {
            Some(msg) => write!(f, "background rebuild worker died: {msg}"),
            None => write!(f, "background rebuild worker died"),
        }
    }
}

impl std::error::Error for WorkerDied {}

/// Worker thread handle for asynchronous PGM rebuilds.
#[derive(Debug)]
pub struct BackgroundBuilder {
    tx: Option<Sender<(RebuildRequest, SpanContext)>>,
    rx: Receiver<(RebuildOutput, Duration)>,
    handle: Option<JoinHandle<()>>,
    pending: usize,
    died: Option<WorkerDied>,
    last_duration: Option<Duration>,
}

impl BackgroundBuilder {
    /// Spawns the standard worker thread: a [`RebuildWorker`] serving
    /// kNN + LRD per request (full or delta, per `req.incremental`).
    pub fn spawn() -> Self {
        let mut worker = RebuildWorker::new();
        Self::spawn_with_worker(move |req| Some(worker.run(req)))
    }

    /// Spawns a worker running `work` per request. Returning `None`
    /// drops the result (no message is sent back); panicking inside
    /// `work` kills the worker thread, which the owner observes as
    /// [`WorkerDied`]. Production code uses [`BackgroundBuilder::spawn`];
    /// this hook exists so test harnesses can inject delays, drops and
    /// panics deterministically.
    pub fn spawn_with_worker<F>(work: F) -> Self
    where
        F: FnMut(&RebuildRequest) -> Option<RebuildOutput> + Send + 'static,
    {
        let (tx_req, rx_req) = channel::<(RebuildRequest, SpanContext)>();
        let (tx_res, rx_res) = channel::<(RebuildOutput, Duration)>();
        let handle = std::thread::Builder::new()
            .name("sgm-rebuild".into())
            .spawn(move || {
                let mut work = work;
                while let Ok((req, ctx)) = rx_req.recv() {
                    // Explicit cross-thread parenting: the span lands on
                    // this worker's timeline but hangs off the engine
                    // refresh span that requested the rebuild.
                    let _span = trace::span_with_parent(
                        TraceLevel::Stages,
                        "sampler",
                        "background_rebuild",
                        ctx,
                    );
                    let t0 = Instant::now();
                    if let Some(output) = work(&req) {
                        if tx_res.send((output, t0.elapsed())).is_err() {
                            break;
                        }
                    }
                }
            })
            .expect("spawn rebuild worker");
        BackgroundBuilder {
            tx: Some(tx_req),
            rx: rx_res,
            handle: Some(handle),
            pending: 0,
            died: None,
            last_duration: None,
        }
    }

    /// Records the worker's death: joins the thread to recover the panic
    /// message, clears in-flight state and caches the error so every
    /// later call keeps reporting it.
    fn mark_dead(&mut self) -> WorkerDied {
        if let Some(d) = &self.died {
            return d.clone();
        }
        self.tx.take();
        self.pending = 0;
        let panic = self.handle.take().and_then(|h| match h.join() {
            Ok(()) => None,
            Err(payload) => payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned()),
        });
        let d = WorkerDied { panic };
        self.died = Some(d.clone());
        d
    }

    /// Enqueues a rebuild unless one is already in flight. Returns
    /// `Ok(true)` when the request was accepted, `Ok(false)` when one is
    /// already pending.
    ///
    /// # Errors
    /// Returns [`WorkerDied`] when the worker thread is gone — the
    /// request can never be served.
    pub fn request(&mut self, req: RebuildRequest) -> Result<bool, WorkerDied> {
        if let Some(d) = &self.died {
            return Err(d.clone());
        }
        if self.pending > 0 {
            return Ok(false);
        }
        match &self.tx {
            Some(tx) if tx.send((req, trace::current_context())).is_ok() => {
                self.pending += 1;
                Ok(true)
            }
            _ => Err(self.mark_dead()),
        }
    }

    /// Non-blocking poll for a finished rebuild. `Ok(None)` means no
    /// result is ready yet (the worker may still be computing).
    ///
    /// # Errors
    /// Returns [`WorkerDied`] when the worker thread is gone, so callers
    /// never spin forever waiting on a dead worker.
    pub fn try_take(&mut self) -> Result<Option<RebuildOutput>, WorkerDied> {
        if let Some(d) = &self.died {
            return Err(d.clone());
        }
        match self.rx.try_recv() {
            Ok((c, dt)) => {
                self.pending = self.pending.saturating_sub(1);
                self.last_duration = Some(dt);
                Ok(Some(c))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(self.mark_dead()),
        }
    }

    /// Blocking wait for a finished rebuild (used by tests and by
    /// shutdown paths).
    ///
    /// # Errors
    /// Returns [`WorkerDied`] when the worker thread exits without
    /// producing a result.
    pub fn take_blocking(&mut self) -> Result<RebuildOutput, WorkerDied> {
        if let Some(d) = &self.died {
            return Err(d.clone());
        }
        match self.rx.recv() {
            Ok((c, dt)) => {
                self.pending = self.pending.saturating_sub(1);
                self.last_duration = Some(dt);
                Ok(c)
            }
            Err(_) => Err(self.mark_dead()),
        }
    }

    /// Whether a rebuild is currently in flight.
    pub fn is_pending(&self) -> bool {
        self.pending > 0
    }

    /// Worker-side wall time of the most recently received rebuild.
    pub fn last_rebuild_duration(&self) -> Option<Duration> {
        self.last_duration
    }

    /// Whether the worker thread has been observed dead.
    pub fn is_dead(&self) -> bool {
        self.died.is_some()
    }
}

impl Drop for BackgroundBuilder {
    fn drop(&mut self) {
        // Close the request channel so the worker exits, then join. A
        // worker that panicked already poisoned the join handle; ignore
        // the payload — death was (or would have been) reported through
        // the channel API.
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgm_graph::knn::KnnStrategy;
    use sgm_linalg::rng::Rng64;

    fn cloud(n: usize, seed: u64) -> Arc<PointCloud> {
        let mut rng = Rng64::new(seed);
        Arc::new(PointCloud::uniform_box(n, 2, 0.0, 1.0, &mut rng))
    }

    fn req(c: Arc<PointCloud>) -> RebuildRequest {
        RebuildRequest {
            cloud: c,
            knn: KnnConfig {
                k: 5,
                strategy: KnnStrategy::Grid,
                ..KnnConfig::default()
            },
            lrd: LrdConfig::default(),
            incremental: None,
        }
    }

    #[test]
    fn background_rebuild_roundtrip() {
        let mut b = BackgroundBuilder::spawn();
        let c = cloud(200, 1);
        assert!(b.request(req(c.clone())).unwrap());
        let out = b.take_blocking().expect("worker result");
        assert_eq!(out.clustering.num_nodes(), 200);
        assert!(out.clustering.num_clusters() >= 2);
        assert!(out.refresh.is_none(), "full path carries no delta stats");
        assert!(!b.is_pending());
    }

    #[test]
    fn only_one_request_in_flight() {
        let mut b = BackgroundBuilder::spawn();
        let c = cloud(500, 2);
        assert!(b.request(req(c.clone())).unwrap());
        assert!(
            !b.request(req(c.clone())).unwrap(),
            "second request must be refused"
        );
        let _ = b.take_blocking();
        assert!(b.request(req(c)).unwrap());
        let _ = b.take_blocking();
    }

    #[test]
    fn matches_synchronous_rebuild() {
        let c = cloud(150, 3);
        let sync = run_rebuild(&req(c.clone()));
        let mut b = BackgroundBuilder::spawn();
        b.request(req(c)).unwrap();
        let asynch = b.take_blocking().unwrap();
        assert_eq!(sync.assignment(), asynch.clustering.assignment());
    }

    #[test]
    fn incremental_requests_ship_deltas_through_the_worker() {
        let base = cloud(600, 11);
        let delta_req = |c: Arc<PointCloud>| RebuildRequest {
            incremental: Some(sgm_graph::refresh::RefreshOptions::default()),
            ..req(c)
        };
        let mut b = BackgroundBuilder::spawn();
        b.request(delta_req(base.clone())).unwrap();
        let first = b.take_blocking().unwrap();
        let s1 = first.refresh.expect("incremental path reports stats");
        assert!(s1.full_build, "cold worker does a full build");

        // Nudge a handful of points and re-request: the worker's
        // persistent engine must serve a partial refresh.
        let mut moved = PointCloud::new(2);
        for i in 0..base.len() {
            let p = base.point(i);
            if i < 20 {
                moved.push(&[p[0] + 1e-3, p[1]]);
            } else {
                moved.push(p);
            }
        }
        b.request(delta_req(Arc::new(moved))).unwrap();
        let second = b.take_blocking().unwrap();
        let s2 = second.refresh.expect("incremental path reports stats");
        assert!(!s2.full_build, "warm worker patches in place");
        assert!(s2.points_moved >= 20);
        assert!(
            s2.points_rescored < base.len(),
            "only the dirty frontier is rescored"
        );
        assert_eq!(second.clustering.num_nodes(), base.len());
    }

    #[test]
    fn drop_joins_cleanly_with_pending_work() {
        let mut b = BackgroundBuilder::spawn();
        b.request(req(cloud(300, 4))).unwrap();
        drop(b); // must not hang or panic
    }

    #[test]
    fn panicking_worker_is_reported_not_hung() {
        let mut b = BackgroundBuilder::spawn_with_worker(|_req| -> Option<RebuildOutput> {
            panic!("injected rebuild failure")
        });
        assert!(b.request(req(cloud(50, 5))).unwrap());
        // Blocking take must return the error, not hang.
        let err = b.take_blocking().unwrap_err();
        assert_eq!(err.panic.as_deref(), Some("injected rebuild failure"));
        assert!(b.is_dead());
        assert!(!b.is_pending(), "death clears in-flight state");
        // Every later call keeps reporting the death (the pre-fix bug
        // left `pending` stuck, silently refusing all future requests).
        assert!(b.try_take().is_err());
        assert!(b.request(req(cloud(50, 6))).is_err());
        let msg = b.take_blocking().unwrap_err().to_string();
        assert!(msg.contains("injected rebuild failure"), "{msg}");
    }

    #[test]
    fn dropping_worker_skips_result_but_stays_alive() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc as StdArc;
        let calls = StdArc::new(AtomicUsize::new(0));
        let calls2 = calls.clone();
        let mut b = BackgroundBuilder::spawn_with_worker(move |r| {
            let n = calls2.fetch_add(1, Ordering::SeqCst);
            if n == 0 {
                None // drop the first result
            } else {
                Some(run_rebuild(r).into())
            }
        });
        let c = cloud(80, 7);
        assert!(b.request(req(c.clone())).unwrap());
        // The dropped result never arrives; the builder still reports
        // pending until we observe something. Re-requesting is refused
        // while the (orphaned) request counts as in flight, which is the
        // documented single-slot policy — so poll until the drop has
        // happened, then verify no result is pending and the worker is
        // still alive.
        while calls.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        assert!(b.try_take().unwrap().is_none());
        assert!(!b.is_dead());
    }
}
