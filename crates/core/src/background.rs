//! Background S1+S2 rebuilds.
//!
//! Paper §3.3: "we also decompose the dataset into grids and perform S1
//! and S2 in independent sub-processes while training continues either
//! with uniform sampling, or a previously calculated distribution."
//!
//! [`BackgroundBuilder`] owns a worker thread fed through std mpsc
//! channels: the trainer requests a rebuild every `τ_G` iterations and
//! keeps sampling from the previous clustering until the new one arrives
//! (`S ← S_new` in Algorithm 1, lines 14–18). The GPU-side training loop
//! therefore never blocks on graph work.

use sgm_graph::knn::{build_knn_graph, KnnConfig};
use sgm_graph::lrd::{decompose, Clustering, LrdConfig};
use sgm_graph::points::PointCloud;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A rebuild job: construct the kNN PGM over `cloud` and decompose it.
#[derive(Debug, Clone)]
pub struct RebuildRequest {
    /// Point cloud to build the PGM over (spatial coordinates, optionally
    /// augmented with output features — paper §3.2's later-stage rebuild).
    pub cloud: Arc<PointCloud>,
    /// kNN configuration (S1).
    pub knn: KnnConfig,
    /// LRD configuration (S2).
    pub lrd: LrdConfig,
}

/// Runs a rebuild synchronously (shared by the worker and the
/// non-threaded fallback).
pub fn run_rebuild(req: &RebuildRequest) -> Clustering {
    let g = build_knn_graph(&req.cloud, &req.knn);
    decompose(&g, &req.lrd)
}

/// Worker thread handle for asynchronous PGM rebuilds.
#[derive(Debug)]
pub struct BackgroundBuilder {
    tx: Option<Sender<RebuildRequest>>,
    rx: Receiver<Clustering>,
    handle: Option<JoinHandle<()>>,
    pending: usize,
}

impl BackgroundBuilder {
    /// Spawns the worker thread.
    pub fn spawn() -> Self {
        let (tx_req, rx_req) = channel::<RebuildRequest>();
        let (tx_res, rx_res) = channel::<Clustering>();
        let handle = std::thread::Builder::new()
            .name("sgm-rebuild".into())
            .spawn(move || {
                while let Ok(req) = rx_req.recv() {
                    let clustering = run_rebuild(&req);
                    if tx_res.send(clustering).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn rebuild worker");
        BackgroundBuilder {
            tx: Some(tx_req),
            rx: rx_res,
            handle: Some(handle),
            pending: 0,
        }
    }

    /// Enqueues a rebuild unless one is already in flight. Returns whether
    /// the request was accepted.
    pub fn request(&mut self, req: RebuildRequest) -> bool {
        if self.pending > 0 {
            return false;
        }
        if let Some(tx) = &self.tx {
            if tx.send(req).is_ok() {
                self.pending += 1;
                return true;
            }
        }
        false
    }

    /// Non-blocking poll for a finished clustering.
    pub fn try_take(&mut self) -> Option<Clustering> {
        match self.rx.try_recv() {
            Ok(c) => {
                self.pending = self.pending.saturating_sub(1);
                Some(c)
            }
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocking wait for a finished clustering (used by tests and by
    /// shutdown paths).
    pub fn take_blocking(&mut self) -> Option<Clustering> {
        match self.rx.recv() {
            Ok(c) => {
                self.pending = self.pending.saturating_sub(1);
                Some(c)
            }
            Err(_) => None,
        }
    }

    /// Whether a rebuild is currently in flight.
    pub fn is_pending(&self) -> bool {
        self.pending > 0
    }
}

impl Drop for BackgroundBuilder {
    fn drop(&mut self) {
        // Close the request channel so the worker exits, then join.
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgm_graph::knn::KnnStrategy;
    use sgm_linalg::rng::Rng64;

    fn cloud(n: usize, seed: u64) -> Arc<PointCloud> {
        let mut rng = Rng64::new(seed);
        Arc::new(PointCloud::uniform_box(n, 2, 0.0, 1.0, &mut rng))
    }

    fn req(c: Arc<PointCloud>) -> RebuildRequest {
        RebuildRequest {
            cloud: c,
            knn: KnnConfig {
                k: 5,
                strategy: KnnStrategy::Grid,
                ..KnnConfig::default()
            },
            lrd: LrdConfig::default(),
        }
    }

    #[test]
    fn background_rebuild_roundtrip() {
        let mut b = BackgroundBuilder::spawn();
        let c = cloud(200, 1);
        assert!(b.request(req(c.clone())));
        let clustering = b.take_blocking().expect("worker result");
        assert_eq!(clustering.num_nodes(), 200);
        assert!(clustering.num_clusters() >= 2);
        assert!(!b.is_pending());
    }

    #[test]
    fn only_one_request_in_flight() {
        let mut b = BackgroundBuilder::spawn();
        let c = cloud(500, 2);
        assert!(b.request(req(c.clone())));
        assert!(!b.request(req(c.clone())), "second request must be refused");
        let _ = b.take_blocking();
        assert!(b.request(req(c)));
        let _ = b.take_blocking();
    }

    #[test]
    fn matches_synchronous_rebuild() {
        let c = cloud(150, 3);
        let sync = run_rebuild(&req(c.clone()));
        let mut b = BackgroundBuilder::spawn();
        b.request(req(c));
        let asynch = b.take_blocking().unwrap();
        assert_eq!(sync.assignment(), asynch.assignment());
    }

    #[test]
    fn drop_joins_cleanly_with_pending_work() {
        let mut b = BackgroundBuilder::spawn();
        b.request(req(cloud(300, 4)));
        drop(b); // must not hang or panic
    }
}
