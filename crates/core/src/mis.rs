//! Loss-proportional importance sampling — the "MIS" baseline.
//!
//! Implements the method of Nabian, Gladstone & Meidani (2021) as shipped
//! in Modulus: every `τ_e` iterations the per-sample loss is evaluated on
//! a *seed* subset of the dataset, each remaining sample inherits the loss
//! of its nearest seed (piecewise-constant extension, paper §3.4), and
//! mini-batches are drawn with probability `P_{x_i} ∝ L(x_i)` (Eq. 7).
//!
//! With `seed_fraction = 1.0` every sample is scored directly — the exact
//! Modulus behaviour the paper benchmarks against (and the source of its
//! overhead: `N` forward passes per refresh).

use sgm_graph::points::PointCloud;
use sgm_json::Value;
use sgm_linalg::rng::Rng64;
use sgm_train::{Probe, Sampler};
use std::collections::BTreeMap;

/// Configuration for [`MisSampler`].
#[derive(Debug, Clone, PartialEq)]
pub struct MisConfig {
    /// Refresh period `τ_e` (iterations between probability updates).
    pub tau_e: usize,
    /// Fraction of the dataset scored directly each refresh (`1.0` =
    /// Modulus default; `< 1` uses nearest-seed extension).
    pub seed_fraction: f64,
    /// Mixing floor: final probability is
    /// `(1−ε)·P_loss + ε·uniform`, keeping every sample reachable.
    pub uniform_mix: f64,
    /// Exponent applied to the per-sample loss before normalisation:
    /// `P ∝ loss^power`. Modulus's implementation weights by the 2-norm
    /// of the velocity derivatives — roughly the *square root* of a
    /// squared-residual loss — so the default is 0.5; `1.0` gives the
    /// plain Eq. 7 of the paper.
    pub power: f64,
    /// Number of leading input columns treated as spatial coordinates for
    /// the nearest-seed extension.
    pub spatial_dims: usize,
}

impl Default for MisConfig {
    fn default() -> Self {
        MisConfig {
            tau_e: 300,
            seed_fraction: 1.0,
            uniform_mix: 0.1,
            power: 0.5,
            spatial_dims: 2,
        }
    }
}

/// The MIS baseline sampler.
#[derive(Debug, Clone)]
pub struct MisSampler {
    cfg: MisConfig,
    n: usize,
    /// Cumulative probability for O(log N) weighted draws.
    cumulative: Vec<f64>,
    /// Whether a refresh has happened yet (uniform until then).
    initialized: bool,
    /// Total number of loss evaluations spent on refreshes (overhead
    /// accounting for the experiment tables).
    probe_evals: usize,
}

impl MisSampler {
    /// A sampler over `n` interior samples.
    pub fn new(n: usize, cfg: MisConfig) -> Self {
        MisSampler {
            cfg,
            n,
            cumulative: Vec::new(),
            initialized: false,
            probe_evals: 0,
        }
    }

    /// Loss evaluations consumed by refreshes so far.
    pub fn probe_evals(&self) -> usize {
        self.probe_evals
    }

    fn rebuild_cumulative(&mut self, raw: &[f64]) {
        let mix = self.cfg.uniform_mix.clamp(0.0, 1.0);
        let pw = self.cfg.power;
        // Non-finite losses (a diverging residual, a NaN from a bad
        // forcing term) carry no usable importance signal: weight them 0
        // so one poisoned sample cannot turn the whole CDF into NaN.
        let weights: Vec<f64> = raw
            .iter()
            .map(|&w| {
                let p = if w > 0.0 { w.powf(pw) } else { 0.0 };
                if p.is_finite() {
                    p
                } else {
                    0.0
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let unif = 1.0 / self.n as f64;
        let mut acc = 0.0;
        self.cumulative = weights
            .iter()
            .map(|&w| {
                let p = if total > 0.0 {
                    (1.0 - mix) * w / total + mix * unif
                } else {
                    unif
                };
                acc += p;
                acc
            })
            .collect();
        if let Some(last) = self.cumulative.last_mut() {
            *last = 1.0;
        }
        self.initialized = true;
    }
}

impl Sampler for MisSampler {
    fn name(&self) -> &str {
        "mis"
    }

    fn fill_batch(&mut self, batch_size: usize, out: &mut Vec<usize>, rng: &mut Rng64) {
        out.clear();
        if !self.initialized {
            out.extend((0..batch_size).map(|_| rng.below(self.n)));
            return;
        }
        out.extend((0..batch_size).map(|_| {
            let u = rng.uniform();
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&u).unwrap())
            {
                Ok(i) => (i + 1).min(self.n - 1),
                Err(i) => i.min(self.n - 1),
            }
        }));
    }

    fn refresh(&mut self, iter: usize, probe: &Probe<'_>, rng: &mut Rng64) {
        if !iter.is_multiple_of(self.cfg.tau_e) {
            return;
        }
        let frac = self.cfg.seed_fraction.clamp(0.0, 1.0);
        if (frac - 1.0).abs() < 1e-12 {
            let all: Vec<usize> = (0..self.n).collect();
            let losses = probe.sample_losses(&all);
            self.probe_evals += self.n;
            self.rebuild_cumulative(&losses);
            return;
        }
        // Seed-based variant: score a random subset and extend each
        // sample's weight from its nearest seed.
        let n_seed = ((self.n as f64 * frac).ceil() as usize).clamp(1, self.n);
        let seeds = rng.sample_indices(self.n, n_seed);
        let seed_losses = probe.sample_losses(&seeds);
        self.probe_evals += n_seed;
        // Nearest-seed assignment via a kNN query of every sample against
        // the seed cloud (1-NN; brute force on the seed side).
        let d = self.cfg.spatial_dims;
        let all: Vec<usize> = (0..self.n).collect();
        let xs = probe.inputs(&all);
        let seed_cloud = {
            let mut flat = Vec::with_capacity(n_seed * d);
            for &s in &seeds {
                flat.extend_from_slice(&xs.row(s)[..d]);
            }
            PointCloud::from_flat(d, flat)
        };
        // For each sample find its nearest seed (linear scan over seeds;
        // O(N·n_seed), mirroring the piecewise assignment of [18]).
        let mut weights = vec![0.0; self.n];
        for (i, w) in weights.iter_mut().enumerate() {
            let p = &xs.row(i)[..d];
            let mut best = f64::MAX;
            let mut best_s = 0;
            for s in 0..n_seed {
                let mut dist = 0.0;
                let q = seed_cloud.point(s);
                for k in 0..d {
                    let dd = p[k] - q[k];
                    dist += dd * dd;
                }
                if dist < best {
                    best = dist;
                    best_s = s;
                }
            }
            *w = seed_losses[best_s].max(0.0);
        }
        self.rebuild_cumulative(&weights);
    }

    fn save_state(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert(
            "cumulative".to_string(),
            Value::Arr(self.cumulative.iter().map(|&c| Value::Num(c)).collect()),
        );
        obj.insert("initialized".to_string(), Value::Bool(self.initialized));
        obj.insert(
            "probe_evals".to_string(),
            Value::Num(self.probe_evals as f64),
        );
        Value::Obj(obj)
    }

    fn load_state(&mut self, state: &Value) -> Result<(), String> {
        let cum = state
            .get("cumulative")
            .and_then(Value::as_arr)
            .ok_or("mis state: missing cumulative")?;
        let cumulative: Vec<f64> = cum
            .iter()
            .map(|v| v.as_f64().ok_or("mis state: non-numeric cumulative"))
            .collect::<Result<_, _>>()?;
        if !cumulative.is_empty() && cumulative.len() != self.n {
            return Err(format!(
                "mis state: {} cumulative entries for n = {}",
                cumulative.len(),
                self.n
            ));
        }
        self.initialized = state
            .get("initialized")
            .and_then(Value::as_bool)
            .ok_or("mis state: missing initialized")?;
        self.probe_evals = state
            .get("probe_evals")
            .and_then(Value::as_u64)
            .ok_or("mis state: missing probe_evals")? as usize;
        self.cumulative = cumulative;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn next_batch(s: &mut dyn Sampler, batch: usize, rng: &mut Rng64) -> Vec<usize> {
        let mut out = Vec::new();
        s.fill_batch(batch, &mut out, rng);
        out
    }

    fn draws_histogram(s: &mut MisSampler, n_draws: usize, seed: u64) -> Vec<usize> {
        let mut rng = Rng64::new(seed);
        let mut counts = vec![0usize; s.n];
        for i in next_batch(s, n_draws, &mut rng) {
            counts[i] += 1;
        }
        counts
    }

    #[test]
    fn uniform_before_first_refresh() {
        let mut s = MisSampler::new(10, MisConfig::default());
        let counts = draws_histogram(&mut s, 10_000, 1);
        for &c in &counts {
            assert!(c > 700 && c < 1300, "count {c}");
        }
    }

    #[test]
    fn weighted_after_rebuild() {
        let mut s = MisSampler::new(
            4,
            MisConfig {
                uniform_mix: 0.0,
                power: 1.0, // plain Eq. 7 for an exact ratio check
                ..MisConfig::default()
            },
        );
        s.rebuild_cumulative(&[0.0, 1.0, 3.0, 0.0]);
        let counts = draws_histogram(&mut s, 40_000, 2);
        assert_eq!(counts[0], 0);
        assert_eq!(counts[3], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn uniform_mix_keeps_everything_reachable() {
        let mut s = MisSampler::new(
            4,
            MisConfig {
                uniform_mix: 0.2,
                ..MisConfig::default()
            },
        );
        s.rebuild_cumulative(&[0.0, 0.0, 1.0, 0.0]);
        let counts = draws_histogram(&mut s, 20_000, 3);
        assert!(counts[0] > 500, "zero-loss sample starved: {}", counts[0]);
        assert!(counts[2] > counts[0]);
    }

    #[test]
    fn zero_losses_fall_back_to_uniform() {
        let mut s = MisSampler::new(5, MisConfig::default());
        s.rebuild_cumulative(&[0.0; 5]);
        let counts = draws_histogram(&mut s, 10_000, 4);
        for &c in &counts {
            assert!(c > 1500 && c < 2500);
        }
    }

    #[test]
    fn state_roundtrip_preserves_draws() {
        let mut a = MisSampler::new(6, MisConfig::default());
        a.rebuild_cumulative(&[1.0, 2.0, 0.5, 4.0, 0.0, 1.5]);
        let saved = a.save_state();
        // Through JSON text, as the run-state checkpoint stores it.
        let saved = Value::parse(&saved.to_string_compact()).unwrap();
        let mut b = MisSampler::new(6, MisConfig::default());
        b.load_state(&saved).unwrap();
        assert_eq!(b.probe_evals(), a.probe_evals());
        let mut ra = Rng64::new(9);
        let mut rb = Rng64::new(9);
        assert_eq!(
            next_batch(&mut a, 100, &mut ra),
            next_batch(&mut b, 100, &mut rb)
        );
    }

    #[test]
    fn state_rejects_wrong_length() {
        let mut a = MisSampler::new(6, MisConfig::default());
        a.rebuild_cumulative(&[1.0; 6]);
        let saved = a.save_state();
        let mut b = MisSampler::new(7, MisConfig::default());
        assert!(b.load_state(&saved).is_err());
    }

    #[test]
    fn cumulative_is_monotone_and_normalised() {
        let mut s = MisSampler::new(6, MisConfig::default());
        s.rebuild_cumulative(&[1.0, 2.0, 0.5, 4.0, 0.0, 1.5]);
        for w in s.cumulative.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(*s.cumulative.last().unwrap(), 1.0);
    }
}
