//! DMIS — dynamic mesh-based importance sampling (Yang, Qiu, Fu & Yu,
//! arXiv 2211.13944), adapted to the engine's point-set interface.
//!
//! The reference method maintains a dynamic mesh over the domain,
//! estimates the loss distribution per mesh element, and redistributes
//! sample points towards high-loss elements. This implementation uses a
//! regular `g × g` grid over the first two spatial dimensions as the
//! mesh: every `τ` iterations it
//!
//! 1. scores the *current* collocation points with the loss probe,
//! 2. accumulates per-cell loss mass `Σ ε^k`,
//! 3. takes the lowest-loss `move_fraction · N` points and teleports
//!    each into a cell drawn proportionally to mass (uniform position
//!    inside the cell; trailing dimensions are kept).
//!
//! The set size never changes — DMIS reshapes the distribution by
//! *moving* points, which exercises the incremental-kNN delta path of
//! graph-backed consumers.

use sgm_json::{lossless_num_arr, obj, Value};
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_train::{PointChanges, PointSet, Probe, Sampler};

/// Configuration for [`DmisSampler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmisConfig {
    /// Redistribution period `τ` (iterations; 0 disables adaptation).
    pub tau: usize,
    /// Mesh resolution per axis (the mesh has `grid²` cells).
    pub grid: usize,
    /// Fraction of the set teleported per adapt (lowest-loss first).
    pub move_fraction: f64,
    /// Loss exponent `k` for the per-cell mass.
    pub power: f64,
}

impl Default for DmisConfig {
    fn default() -> Self {
        DmisConfig {
            tau: 200,
            grid: 16,
            move_fraction: 0.1,
            power: 1.0,
        }
    }
}

/// The DMIS sampler: grid-mesh loss-mass estimation + point teleports.
#[derive(Debug, Clone)]
pub struct DmisSampler {
    cfg: DmisConfig,
    n: usize,
    /// Domain box captured at the first mutating adapt and checkpointed:
    /// teleported points must not shrink the mesh on later captures.
    bounds: Option<(Vec<f64>, Vec<f64>)>,
    /// Per-cell loss mass of the last adapt (row-major `grid × grid`).
    cell_mass: Vec<f64>,
    probe_evals: usize,
    moves: usize,
}

impl DmisSampler {
    /// A DMIS sampler over an initial set of `n` collocation points.
    pub fn new(n: usize, cfg: DmisConfig) -> Self {
        assert!(n > 0, "empty collocation set");
        assert!(cfg.grid >= 1, "mesh needs at least one cell per axis");
        DmisSampler {
            cfg,
            n,
            bounds: None,
            cell_mass: Vec::new(),
            probe_evals: 0,
            moves: 0,
        }
    }

    /// Loss evaluations consumed by adapt passes so far.
    pub fn probe_evals(&self) -> usize {
        self.probe_evals
    }

    /// Points teleported over the sampler's lifetime.
    pub fn points_moved(&self) -> usize {
        self.moves
    }

    /// Per-cell loss mass of the last adapt (empty before the first).
    pub fn cell_mass(&self) -> &[f64] {
        &self.cell_mass
    }

    /// Cell index of a coordinate pair within the captured bounds.
    fn cell_of(&self, x: f64, y: f64) -> usize {
        let (mins, maxs) = self.bounds.as_ref().expect("bounds captured");
        let g = self.cfg.grid;
        let span_x = (maxs[0] - mins[0]).max(1e-300);
        let span_y =
            (maxs.get(1).copied().unwrap_or(1.0) - mins.get(1).copied().unwrap_or(0.0)).max(1e-300);
        let cx = (((x - mins[0]) / span_x * g as f64) as usize).min(g - 1);
        let cy =
            (((y - mins.get(1).copied().unwrap_or(0.0)) / span_y * g as f64) as usize).min(g - 1);
        cy * g + cx
    }
}

impl Sampler for DmisSampler {
    fn name(&self) -> &str {
        "dmis"
    }

    fn fill_batch(&mut self, batch_size: usize, out: &mut Vec<usize>, rng: &mut Rng64) {
        out.clear();
        out.extend((0..batch_size).map(|_| rng.below(self.n)));
    }

    fn adapts_points(&self) -> bool {
        true
    }

    fn adapt(&mut self, points: &mut PointSet, iter: usize, probe: &Probe<'_>, rng: &mut Rng64) {
        if self.cfg.tau == 0 || iter == 0 || !iter.is_multiple_of(self.cfg.tau) {
            return;
        }
        let n = points.len();
        let dim = points.dim();
        if self.bounds.is_none() {
            self.bounds = Some(points.cloud().bounds());
        }
        // Score the current set.
        let mut coords = Matrix::zeros(n, dim);
        for i in 0..n {
            coords.row_mut(i).copy_from_slice(points.point(i));
        }
        let losses = probe.losses_at(&coords);
        self.probe_evals += n;
        let g = self.cfg.grid;
        let mut mass = vec![0.0; g * g];
        let weight = |e: f64| -> f64 {
            if !e.is_finite() || e <= 0.0 {
                return 0.0;
            }
            let w = e.powf(self.cfg.power);
            if w.is_finite() {
                w
            } else {
                0.0
            }
        };
        for (i, &loss) in losses.iter().enumerate().take(n) {
            let p = points.point(i);
            let y = p.get(1).copied().unwrap_or(0.0);
            mass[self.cell_of(p[0], y)] += weight(loss);
        }
        let total: f64 = mass.iter().sum();
        self.cell_mass = mass;
        if total <= 0.0 {
            // Flat (or fully non-finite) loss field: nothing to chase.
            return;
        }
        // Lowest-loss points first; NaN losses sort as highest so a
        // diverging region is never the donor.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let (la, lb) = (losses[a], losses[b]);
            match (la.is_finite(), lb.is_finite()) {
                (true, true) => la.partial_cmp(&lb).unwrap().then(a.cmp(&b)),
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                (false, false) => a.cmp(&b),
            }
        });
        let move_n = ((n as f64 * self.cfg.move_fraction) as usize).min(n);
        let (mins, maxs) = self.bounds.clone().expect("bounds captured");
        let mut cdf = Vec::with_capacity(self.cell_mass.len());
        let mut acc = 0.0;
        for &m in &self.cell_mass {
            acc += m;
            cdf.push(acc);
        }
        let mut dst = vec![0.0; dim];
        for &i in order.iter().take(move_n) {
            let u = rng.uniform() * total;
            let cell = match cdf
                .binary_search_by(|c| c.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Less))
            {
                Ok(c) => (c + 1).min(cdf.len() - 1),
                Err(c) => c.min(cdf.len() - 1),
            };
            let (cx, cy) = (cell % g, cell / g);
            let span_x = (maxs[0] - mins[0]).max(1e-300);
            dst.copy_from_slice(points.point(i));
            dst[0] = mins[0] + (cx as f64 + rng.uniform()) / g as f64 * span_x;
            if dim > 1 {
                let span_y = (maxs[1] - mins[1]).max(1e-300);
                dst[1] = mins[1] + (cy as f64 + rng.uniform()) / g as f64 * span_y;
            }
            points.set_point(i, &dst);
        }
        self.moves += move_n;
    }

    fn on_points_changed(&mut self, points: &PointSet, _changes: &PointChanges) {
        self.n = points.len();
    }

    fn sync_points(&mut self, points: &PointSet) {
        self.n = points.len();
    }

    fn save_state(&self) -> Value {
        let bounds = match &self.bounds {
            Some((mins, maxs)) => obj([
                ("mins", lossless_num_arr(mins)),
                ("maxs", lossless_num_arr(maxs)),
            ]),
            None => Value::Null,
        };
        obj([
            ("n", Value::Num(self.n as f64)),
            ("probe_evals", Value::Num(self.probe_evals as f64)),
            ("moves", Value::Num(self.moves as f64)),
            ("bounds", bounds),
            ("cell_mass", lossless_num_arr(&self.cell_mass)),
        ])
    }

    fn load_state(&mut self, state: &Value) -> Result<(), String> {
        let req = |key: &str| {
            state
                .get(key)
                .and_then(Value::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("dmis state: missing {key}"))
        };
        let n = req("n")?;
        if n == 0 {
            return Err("dmis state: empty point set".to_string());
        }
        let bounds = match state.get("bounds") {
            None | Some(Value::Null) => None,
            Some(b) => {
                let mins = b
                    .req_lossless_f64_arr("mins")
                    .map_err(|e| format!("dmis state: {e}"))?;
                let maxs = b
                    .req_lossless_f64_arr("maxs")
                    .map_err(|e| format!("dmis state: {e}"))?;
                if mins.len() != maxs.len() || mins.is_empty() {
                    return Err("dmis state: mismatched bounds".to_string());
                }
                Some((mins, maxs))
            }
        };
        let mass = state
            .req_lossless_f64_arr("cell_mass")
            .map_err(|e| format!("dmis state: {e}"))?;
        if !mass.is_empty() && mass.len() != self.cfg.grid * self.cfg.grid {
            return Err(format!(
                "dmis state: {} cell masses for a {}²-cell mesh",
                mass.len(),
                self.cfg.grid
            ));
        }
        self.n = n;
        self.probe_evals = req("probe_evals")?;
        self.moves = req("moves")?;
        self.bounds = bounds;
        // Adversarial checkpoints may carry NaN/∞ masses (e.g. captured
        // mid-divergence); sanitise them so a restored sampler can never
        // build a poisoned CDF.
        self.cell_mass = mass
            .into_iter()
            .map(|m| if m.is_finite() && m > 0.0 { m } else { 0.0 })
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgm_graph::points::PointCloud;
    use sgm_nn::activation::Activation;
    use sgm_nn::mlp::{Mlp, MlpConfig};
    use sgm_physics::geometry::{Cavity, FillStrategy};
    use sgm_physics::pde::{Pde, PoissonConfig};
    use sgm_physics::problem::{Problem, TrainSet};
    use sgm_physics::PinnModel;

    fn setup(n: usize, seed: u64) -> (Mlp, Problem, TrainSet) {
        let problem = Problem::new(Pde::Poisson(PoissonConfig {
            forcing: |p: &[f64]| if p[0] < 0.5 { 100.0 } else { 0.01 },
        }));
        let cav = Cavity::default();
        let mut rng = Rng64::new(seed);
        let interior = cav.sample_interior(n, FillStrategy::Halton, &mut rng);
        let data = TrainSet {
            interior,
            boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
            boundary_targets: Matrix::zeros(1, 1),
        };
        let cfg = MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 8,
            hidden_layers: 1,
            activation: Activation::Tanh,
            fourier: None,
        };
        let mut nrng = Rng64::new(seed + 1);
        (Mlp::new(&cfg, &mut nrng), problem, data)
    }

    #[test]
    fn teleports_move_mass_towards_high_loss_cells() {
        let (net, prob, data) = setup(400, 1);
        let model = PinnModel::new(&prob, &data);
        let mut s = DmisSampler::new(
            400,
            DmisConfig {
                tau: 5,
                grid: 8,
                move_fraction: 0.25,
                ..DmisConfig::default()
            },
        );
        let mut points = PointSet::new(data.interior.clone());
        let before_left = (0..400).filter(|&i| points.point(i)[0] < 0.5).count();
        let mut rng = Rng64::new(2);
        let probe = Probe::new(&net, &model);
        s.adapt(&mut points, 5, &probe, &mut rng);
        let mut changes = PointChanges::default();
        assert!(points.drain_changes(&mut changes));
        assert_eq!(changes.moved.len(), 100, "move_fraction · N teleports");
        assert_eq!(changes.added, 0);
        assert_eq!(points.len(), 400, "DMIS preserves the set size");
        let after_left = (0..400).filter(|&i| points.point(i)[0] < 0.5).count();
        assert!(
            after_left > before_left + 20,
            "high-loss half did not gain points: {before_left} -> {after_left}"
        );
        assert_eq!(s.points_moved(), 100);
        assert_eq!(s.cell_mass().len(), 64);
    }

    #[test]
    fn flat_zero_loss_field_is_a_no_op() {
        // A network scored against its own outputs gives ~0 residual for
        // the trivial forcing; with literally zero mass nothing moves.
        let (net, _prob, data) = setup(100, 3);
        let zero_prob = Problem::new(Pde::Poisson(PoissonConfig {
            forcing: |_: &[f64]| 0.0,
        }));
        let model = PinnModel::new(&zero_prob, &data);
        let mut s = DmisSampler::new(
            100,
            DmisConfig {
                tau: 1,
                grid: 4,
                move_fraction: 0.5,
                power: 1.0,
            },
        );
        // Force all-zero masses by zeroing the power term: any loss > 0
        // still maps through powf, so instead check the degenerate guard
        // with a handcrafted mass via load_state + a fresh adapt below.
        let mut points = PointSet::new(data.interior.clone());
        let mut rng = Rng64::new(4);
        let probe = Probe::new(&net, &model);
        s.adapt(&mut points, 1, &probe, &mut rng);
        // Either the field was flat (no drain) or points moved; in both
        // cases the set size is intact and masses are finite.
        assert_eq!(points.len(), 100);
        assert!(s.cell_mass().iter().all(|m| m.is_finite()));
    }

    #[test]
    fn state_roundtrip_preserves_mesh_and_counters() {
        let (net, prob, data) = setup(200, 5);
        let model = PinnModel::new(&prob, &data);
        let cfg = DmisConfig {
            tau: 5,
            grid: 6,
            ..DmisConfig::default()
        };
        let mut a = DmisSampler::new(200, cfg);
        let mut points = PointSet::new(data.interior.clone());
        let mut rng = Rng64::new(6);
        let probe = Probe::new(&net, &model);
        a.adapt(&mut points, 5, &probe, &mut rng);
        let saved = Value::parse(&a.save_state().to_string_compact()).unwrap();
        let mut b = DmisSampler::new(200, cfg);
        b.load_state(&saved).unwrap();
        assert_eq!(b.probe_evals(), a.probe_evals());
        assert_eq!(b.points_moved(), a.points_moved());
        assert_eq!(b.bounds, a.bounds, "bounds checkpoint bit-exact");
        for (x, y) in b.cell_mass().iter().zip(a.cell_mass()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn non_finite_cell_masses_are_sanitised_on_load() {
        let cfg = DmisConfig {
            grid: 2,
            ..DmisConfig::default()
        };
        let a = {
            let mut s = DmisSampler::new(10, cfg);
            s.cell_mass = vec![1.5, f64::NAN, f64::INFINITY, -3.0];
            s.bounds = Some((vec![0.0, 0.0], vec![1.0, 1.0]));
            s
        };
        let saved = Value::parse(&a.save_state().to_string_compact()).unwrap();
        let mut b = DmisSampler::new(10, cfg);
        b.load_state(&saved).unwrap();
        assert_eq!(b.cell_mass(), &[1.5, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn state_rejects_wrong_mesh_size() {
        let a = DmisSampler::new(
            10,
            DmisConfig {
                grid: 4,
                ..DmisConfig::default()
            },
        );
        let mut saved = a.save_state();
        if let Value::Obj(m) = &mut saved {
            m.insert("cell_mass".to_string(), lossless_num_arr(&[1.0, 2.0]));
        }
        let mut b = DmisSampler::new(
            10,
            DmisConfig {
                grid: 4,
                ..DmisConfig::default()
            },
        );
        assert!(b.load_state(&saved).is_err());
    }
}
