//! Cluster scoring and score→sampling-ratio mapping (Algorithm 1, lines
//! 8–10).
//!
//! After the loss probe (and optionally the ISR pass) every cluster has a
//! scalar score. The mapping turns scores into per-cluster sampling
//! ratios `P_i`, and the epoch assembler draws `P_i · S_i` samples from
//! cluster `i` — with a floor of **one sample per cluster**, the paper's
//! guard against "forgetting" low-residual regions (§3.5, citing the R3
//! failure mode).

use sgm_linalg::rng::Rng64;

/// How cluster scores map to sampling ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoreMapping {
    /// Min–max normalise scores, then interpolate ratios linearly in
    /// `[lo, hi]`.
    Linear {
        /// Ratio given to the lowest-scoring cluster.
        lo: f64,
        /// Ratio given to the highest-scoring cluster.
        hi: f64,
    },
    /// Softmax over scores with temperature `temp`, rescaled to `[lo, hi]`.
    Softmax {
        /// Temperature (smaller = sharper).
        temp: f64,
        /// Ratio floor.
        lo: f64,
        /// Ratio ceiling.
        hi: f64,
    },
    /// Rank-based: ratios interpolate `[lo, hi]` by score rank, ignoring
    /// magnitudes (robust to outlier losses).
    Rank {
        /// Ratio for the lowest rank.
        lo: f64,
        /// Ratio for the highest rank.
        hi: f64,
    },
}

impl Default for ScoreMapping {
    fn default() -> Self {
        ScoreMapping::Linear { lo: 0.05, hi: 0.5 }
    }
}

/// Per-cluster sampling plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRatios {
    /// Sampling ratio per cluster (`P_i` in the paper).
    pub ratios: Vec<f64>,
    /// Number of samples to draw from each cluster this epoch
    /// (`max(1, round(P_i · S_i))` when the floor is enabled).
    pub counts: Vec<usize>,
}

/// Combines normalised loss and ISR scores into one score per cluster:
/// `score = norm(loss) + isr_weight · norm(isr)` (paper §3.5: the ISR is
/// "normalized with the other PDE losses").
///
/// Either input may be empty (treated as zeros). Normalisation is by the
/// maximum entry; all-zero vectors stay zero.
///
/// # Panics
/// Panics if both vectors are non-empty with different lengths.
pub fn combine_scores(losses: &[f64], isr: &[f64], isr_weight: f64) -> Vec<f64> {
    let n = losses.len().max(isr.len());
    if !losses.is_empty() && !isr.is_empty() {
        assert_eq!(losses.len(), isr.len(), "score length mismatch");
    }
    let norm = |xs: &[f64], i: usize| -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let m = xs.iter().cloned().fold(0.0f64, f64::max);
        if m <= 0.0 {
            0.0
        } else {
            (xs[i].max(0.0)) / m
        }
    };
    (0..n)
        .map(|i| norm(losses, i) + isr_weight * norm(isr, i))
        .collect()
}

/// Maps cluster scores to sampling ratios and epoch counts.
///
/// # Panics
/// Panics if `scores.len() != sizes.len()` or any size is zero.
pub fn map_scores(
    scores: &[f64],
    sizes: &[usize],
    mapping: ScoreMapping,
    floor_one: bool,
) -> ClusterRatios {
    assert_eq!(scores.len(), sizes.len(), "scores/sizes mismatch");
    assert!(sizes.iter().all(|&s| s > 0), "empty cluster");
    let n = scores.len();
    if n == 0 {
        return ClusterRatios {
            ratios: Vec::new(),
            counts: Vec::new(),
        };
    }
    let ratios: Vec<f64> = match mapping {
        ScoreMapping::Linear { lo, hi } => {
            let (mn, mx) = min_max(scores);
            let span = (mx - mn).max(1e-300);
            scores
                .iter()
                .map(|&s| lo + (hi - lo) * ((s - mn) / span))
                .collect()
        }
        ScoreMapping::Softmax { temp, lo, hi } => {
            let t = temp.max(1e-9);
            let mx = scores.iter().cloned().fold(f64::MIN, f64::max);
            let exps: Vec<f64> = scores.iter().map(|&s| ((s - mx) / t).exp()).collect();
            let (emn, emx) = min_max(&exps);
            let span = (emx - emn).max(1e-300);
            exps.iter()
                .map(|&e| lo + (hi - lo) * ((e - emn) / span))
                .collect()
        }
        ScoreMapping::Rank { lo, hi } => {
            let mut order: Vec<usize> = (0..n).collect();
            // total_cmp: a NaN score (poisoned cluster probe) must order
            // deterministically instead of panicking the rank sort.
            order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
            let mut ratios = vec![0.0; n];
            for (rank, &i) in order.iter().enumerate() {
                let t = if n == 1 {
                    1.0
                } else {
                    rank as f64 / (n - 1) as f64
                };
                ratios[i] = lo + (hi - lo) * t;
            }
            ratios
        }
    };
    let counts = ratios
        .iter()
        .zip(sizes)
        .map(|(&p, &s)| {
            let c = (p * s as f64).round() as usize;
            let c = c.min(s);
            if floor_one {
                c.max(1)
            } else {
                c
            }
        })
        .collect();
    ClusterRatios { ratios, counts }
}

fn min_max(xs: &[f64]) -> (f64, f64) {
    let mn = xs.iter().cloned().fold(f64::MAX, f64::min);
    let mx = xs.iter().cloned().fold(f64::MIN, f64::max);
    (mn, mx)
}

/// Assembles an epoch: draws `counts[i]` member indices from each cluster
/// (without replacement within a cluster) and shuffles the union.
///
/// # Panics
/// Panics if `counts.len() != clusters.len()`.
pub fn assemble_epoch(clusters: &[Vec<u32>], counts: &[usize], rng: &mut Rng64) -> Vec<usize> {
    assert_eq!(clusters.len(), counts.len(), "counts mismatch");
    let total: usize = counts.iter().sum();
    let mut epoch = Vec::with_capacity(total);
    for (cluster, &c) in clusters.iter().zip(counts) {
        let c = c.min(cluster.len());
        if c == 0 {
            continue;
        }
        let picks = rng.sample_indices(cluster.len(), c);
        epoch.extend(picks.into_iter().map(|p| cluster[p] as usize));
    }
    rng.shuffle(&mut epoch);
    epoch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_mapping_interpolates() {
        let r = map_scores(
            &[0.0, 5.0, 10.0],
            &[100, 100, 100],
            ScoreMapping::Linear { lo: 0.1, hi: 0.5 },
            true,
        );
        assert!((r.ratios[0] - 0.1).abs() < 1e-12);
        assert!((r.ratios[1] - 0.3).abs() < 1e-12);
        assert!((r.ratios[2] - 0.5).abs() < 1e-12);
        assert_eq!(r.counts, vec![10, 30, 50]);
    }

    #[test]
    fn floor_one_guards_small_ratios() {
        let r = map_scores(
            &[0.0, 100.0],
            &[50, 50],
            ScoreMapping::Linear { lo: 0.0, hi: 0.5 },
            true,
        );
        assert_eq!(r.counts[0], 1, "floor of one sample per cluster");
        let r2 = map_scores(
            &[0.0, 100.0],
            &[50, 50],
            ScoreMapping::Linear { lo: 0.0, hi: 0.5 },
            false,
        );
        assert_eq!(r2.counts[0], 0, "floor disabled");
    }

    #[test]
    fn equal_scores_get_equal_ratios() {
        for mapping in [
            ScoreMapping::default(),
            ScoreMapping::Softmax {
                temp: 1.0,
                lo: 0.05,
                hi: 0.5,
            },
        ] {
            let r = map_scores(&[3.0, 3.0, 3.0], &[10, 10, 10], mapping, true);
            let c0 = r.counts[0];
            assert!(r.counts.iter().all(|&c| c == c0), "{mapping:?}");
        }
    }

    #[test]
    fn rank_mapping_ignores_magnitude() {
        let a = map_scores(
            &[1.0, 2.0, 3.0],
            &[100, 100, 100],
            ScoreMapping::Rank { lo: 0.1, hi: 0.3 },
            true,
        );
        let b = map_scores(
            &[1.0, 2.0, 1000.0],
            &[100, 100, 100],
            ScoreMapping::Rank { lo: 0.1, hi: 0.3 },
            true,
        );
        assert_eq!(a.counts, b.counts);
        assert!(a.counts[2] > a.counts[0]);
    }

    #[test]
    fn counts_never_exceed_cluster_size() {
        let r = map_scores(
            &[10.0],
            &[3],
            ScoreMapping::Linear { lo: 2.0, hi: 2.0 }, // ratio > 1
            true,
        );
        assert_eq!(r.counts, vec![3]);
    }

    #[test]
    fn combine_scores_normalises_both() {
        let s = combine_scores(&[0.0, 10.0], &[5.0, 0.0], 1.0);
        assert!((s[0] - 1.0).abs() < 1e-12); // 0 + 1·(5/5)
        assert!((s[1] - 1.0).abs() < 1e-12); // 10/10 + 0
        let s2 = combine_scores(&[0.0, 10.0], &[], 1.0);
        assert_eq!(s2, vec![0.0, 1.0]);
    }

    #[test]
    fn combine_scores_respects_weight() {
        let s = combine_scores(&[1.0, 1.0], &[0.0, 2.0], 0.5);
        assert!((s[1] - s[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn assemble_epoch_draws_requested_counts() {
        let clusters = vec![vec![0, 1, 2, 3], vec![4, 5], vec![6]];
        let mut rng = Rng64::new(1);
        let epoch = assemble_epoch(&clusters, &[2, 2, 1], &mut rng);
        assert_eq!(epoch.len(), 5);
        // Cluster membership respected.
        let c0 = epoch.iter().filter(|&&i| i < 4).count();
        let c1 = epoch.iter().filter(|&&i| (4..6).contains(&i)).count();
        let c2 = epoch.iter().filter(|&&i| i == 6).count();
        assert_eq!((c0, c1, c2), (2, 2, 1));
        // No duplicates within a cluster draw.
        let set: std::collections::HashSet<_> = epoch.iter().collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn assemble_epoch_caps_at_cluster_size() {
        let clusters = vec![vec![0, 1]];
        let mut rng = Rng64::new(2);
        let epoch = assemble_epoch(&clusters, &[10], &mut rng);
        assert_eq!(epoch.len(), 2);
    }

    #[test]
    #[should_panic]
    fn mismatched_sizes_panic() {
        let _ = map_scores(&[1.0], &[1, 2], ScoreMapping::default(), true);
    }
}
