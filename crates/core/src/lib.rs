//! # sgm-core
//!
//! The paper's contribution: **SGM-PINN**, a graph-based importance
//! sampling framework for training physics-informed neural networks
//! (Algorithm 1), plus the baselines it is evaluated against.
//!
//! Pipeline per the paper's Figure 1:
//!
//! * **S1** — estimate a probabilistic graphical model of the collocation
//!   cloud as a kNN graph over the spatial coordinates (`sgm-graph::knn`).
//! * **S2** — partition the PGM into clusters of bounded
//!   effective-resistance diameter (`sgm-graph::lrd`), so that samples in a
//!   cluster are strongly conditionally dependent and share importance.
//! * **S3** — for parameterised problems, score cluster *stability* with
//!   the spectral ISR metric (`sgm-stability`), catching regions whose
//!   outputs change fastest with the inputs — the signal pure
//!   loss-proportional sampling misses.
//! * **S4** — probe the PDE loss on only `r`% of each cluster, rank
//!   clusters by (normalised loss + ISR), map ranks to per-cluster sampling
//!   ratios with a floor of one sample per cluster, and assemble the next
//!   epoch.
//!
//! Modules:
//!
//! * [`score`] — cluster score assembly and score→ratio mappings (S4).
//! * [`sgm`] — [`sgm::SgmSampler`], the full Algorithm 1 with `τ_e` score
//!   refreshes and `τ_G` graph rebuilds (optionally on a background
//!   thread, [`background`]).
//! * [`mis`] — [`mis::MisSampler`], the loss-proportional importance
//!   sampling baseline (Nabian et al., as shipped in Modulus).
//! * [`rar`] — [`rar::RarSampler`], the residual-based adaptive refinement
//!   baseline (DeepXDE-style, paper §1 ref [16]).
//! * [`rad`] — [`rad::RadSampler`] and [`rad::RarDSampler`], the
//!   point-set-adaptive rivals of Wu et al. (2023): full-set residual
//!   resampling and greedy densification.
//! * [`dmis`] — [`dmis::DmisSampler`], dynamic mesh-based importance
//!   sampling (arXiv 2211.13944) on a regular grid mesh.
//! * [`background`] — channel-fed worker thread that rebuilds S1+S2 while
//!   training continues (paper §3.3's parallel rebuild).
//!
//! Every sampler implements `sgm_train::Sampler`, the interface defined
//! by the staged training engine; the uniform baseline lives in
//! `sgm-train` itself and is re-exported here so experiment code imports
//! every sampler from one place. This crate depends only on the sampler
//! interface, not on any particular physics problem.

pub mod background;
pub mod dmis;
pub mod mis;
pub mod rad;
pub mod rar;
pub mod score;
pub mod sgm;

pub use dmis::{DmisConfig, DmisSampler};
pub use mis::{MisConfig, MisSampler};
pub use rad::{RadConfig, RadSampler, RarDConfig, RarDSampler};
pub use rar::{RarConfig, RarSampler};
pub use score::{ClusterRatios, ScoreMapping};
pub use sgm::{SgmConfig, SgmSampler, SgmStats};
pub use sgm_train::UniformSampler;
