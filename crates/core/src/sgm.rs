//! The SGM-PINN sampler — Algorithm 1 of the paper.
//!
//! ```text
//! 1: From X, create a kNN-graph G                      (S1)
//! 2: Use the LRD Algorithm to split G into n_c clusters (S2)
//! 3: S ← cluster sizes
//! 4: while training:
//! 5:   S* ← r · S_i points from each cluster
//! 6:   calculate the losses for S*
//! 7:   from S*, apply the ISR algorithm                 (S3, parameterised)
//! 8:   L ← combined losses and ISR per cluster
//! 9:   map L to proportional sampling ratios P
//! 10:  create an epoch with P_i · S_i samples per cluster (floor 1)
//! 11:  shuffle and serve the epoch until τ_e iterations pass
//! 14:  every τ_G iterations rebuild S1–S2 in the background
//! ```

use crate::background::{BackgroundBuilder, RebuildRequest, RebuildWorker};
use crate::score::{assemble_epoch, combine_scores, map_scores, ScoreMapping};
use sgm_graph::knn::{KnnConfig, KnnStrategy};
use sgm_graph::lrd::{Clustering, ErSource, LrdConfig};
use sgm_graph::points::PointCloud;
use sgm_graph::refresh::{RefreshOptions, RefreshStats};
use sgm_graph::resistance::ApproxErOptions;
use sgm_json::Value;
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_obs::{trace, Counter, Gauge, TraceLevel};
use sgm_stability::{spade_scores, SpadeConfig};
use sgm_train::{PointChanges, PointSet, Probe, Sampler};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Completed τ_e score refreshes.
static REFRESHES_TOTAL: Counter = Counter::new("sgm_sampler_refreshes_total");
/// τ_e refreshes that assembled an epoch from a *stale* clustering
/// (a rebuild was still in flight on the background worker).
static STALE_EPOCHS_TOTAL: Counter = Counter::new("sgm_sampler_stale_epochs_total");
/// Distribution summary of the per-cluster combined scores at the last
/// refresh.
static SCORE_MIN: Gauge = Gauge::new("sgm_sampler_score_min");
static SCORE_MEAN: Gauge = Gauge::new("sgm_sampler_score_mean");
static SCORE_MAX: Gauge = Gauge::new("sgm_sampler_score_max");
/// Normalised Shannon entropy of the per-cluster draw ratios at the last
/// refresh: 1.0 = uniform over clusters, → 0 as the sampler concentrates.
static DRAW_ENTROPY: Gauge = Gauge::new("sgm_sampler_draw_entropy");

/// Normalised Shannon entropy of a (non-negative) count distribution.
fn normalized_entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 || counts.len() < 2 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total as f64;
            h -= p * p.ln();
        }
    }
    h / (counts.len() as f64).ln()
}

/// Minimum probe points per parallel chunk in the τ_e loss refresh.
const PROBE_PAR_MIN: usize = 32;

/// Auto-mode work cutoff (≈ probe count × per-point forward cost proxy)
/// for fanning the refresh loss evaluations out to the pool.
const PROBE_PAR_WORK: usize = 1 << 18;

/// Evaluates `probe.sample_losses` over `idx`, fanning out to the pool in
/// chunks when the batch is large. Each per-point loss depends only on
/// its own input row, so the chunked result is bit-identical to the
/// one-shot serial call.
fn probe_losses(probe: &Probe<'_>, idx: &[usize]) -> Vec<f64> {
    let m = idx.len();
    match sgm_par::current().pool(m.saturating_mul(1024), PROBE_PAR_WORK) {
        Some(pool) => {
            let chunk = sgm_par::chunk_len(m, PROBE_PAR_MIN);
            let ranges: Vec<(usize, usize)> = (0..m)
                .step_by(chunk)
                .map(|r0| (r0, (r0 + chunk).min(m)))
                .collect();
            let parts = pool.par_map_indexed(ranges.len(), 1, |ci| {
                let (r0, r1) = ranges[ci];
                probe.sample_losses(&idx[r0..r1])
            });
            parts.concat()
        }
        None => probe.sample_losses(idx),
    }
}

/// Configuration of the SGM-PINN sampler.
#[derive(Debug, Clone)]
pub struct SgmConfig {
    /// kNN size `k` (paper: 30 for LDC, 7 for AR).
    pub k: usize,
    /// kNN algorithm for S1.
    pub knn_strategy: KnnStrategy,
    /// LRD contraction level `𝕃` (paper: 10 for LDC, 6 for AR).
    pub lrd_level: usize,
    /// Lower bound on cluster count.
    pub min_clusters: usize,
    /// Cluster size cap as a fraction of N.
    pub max_cluster_frac: f64,
    /// Probe ratio `r`: fraction of each cluster scored per refresh
    /// (paper: 15%).
    pub probe_ratio: f64,
    /// Score refresh period `τ_e` (iterations).
    pub tau_e: usize,
    /// Graph rebuild period `τ_G` (iterations; 0 disables rebuilds).
    pub tau_g: usize,
    /// Score → ratio mapping.
    pub mapping: ScoreMapping,
    /// Keep ≥ 1 sample per cluster in every epoch (paper §3.5).
    pub floor_one: bool,
    /// Enable the ISR stability term (S3; `SGM-S` in the paper).
    pub use_isr: bool,
    /// Weight of the normalised ISR term when fused with losses.
    pub isr_weight: f64,
    /// SPADE configuration for the ISR pass.
    pub spade: SpadeConfig,
    /// Cap on the number of probe points entering the dense ISR solve.
    pub isr_cap: usize,
    /// Leading input columns used as the kNN space (spatial coordinates;
    /// the PGM is built on these, per paper §3.2).
    pub spatial_dims: usize,
    /// Rebuild the PGM on a background thread (vs. inline).
    pub background: bool,
    /// When rebuilding at `τ_G`, append the network's current outputs as
    /// extra kNN features (paper §3.2: "At later stages in training this
    /// model can be re-built in parallel while incorporating additional
    /// features from the output"). Costs one full-dataset forward pass
    /// per rebuild.
    pub augment_outputs: bool,
    /// Seed for graph construction and ER probes.
    pub seed: u64,
    /// Incremental graph refresh: when set, τ_G rebuilds are served by a
    /// persistent delta engine (moved points re-queried, dirty LRD blocks
    /// recomputed) instead of a from-scratch build. The rebuild seed is
    /// held fixed in this mode so deltas compare against a stable
    /// configuration. `None` (default) keeps the classic full rebuild.
    pub incremental: Option<RefreshOptions>,
}

impl Default for SgmConfig {
    fn default() -> Self {
        SgmConfig {
            k: 8,
            knn_strategy: KnnStrategy::Grid,
            lrd_level: 6,
            min_clusters: 24,
            max_cluster_frac: 0.05,
            probe_ratio: 0.15,
            tau_e: 300,
            tau_g: 1200,
            mapping: ScoreMapping::default(),
            floor_one: true,
            use_isr: false,
            isr_weight: 1.0,
            spade: SpadeConfig::default(),
            isr_cap: 256,
            spatial_dims: 2,
            background: true,
            augment_outputs: false,
            seed: 0x56C1,
            incremental: None,
        }
    }
}

/// Overhead accounting, reported by the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SgmStats {
    /// Completed score refreshes.
    pub refreshes: usize,
    /// Rebuilds requested (τ_G events).
    pub rebuilds_requested: usize,
    /// Rebuilds whose result was swapped in (`S ← S_new`).
    pub rebuilds_applied: usize,
    /// PGM constructions that ran to completion, counting the initial
    /// build and rebuilds whether background or inline.
    pub rebuilds_completed: usize,
    /// Score refreshes that assembled an epoch from a stale clustering
    /// because a rebuild was still in flight.
    pub rebuilds_stale_served: usize,
    /// Worker-side wall seconds of the most recent completed rebuild
    /// (0.0 until one completes).
    pub last_rebuild_seconds: f64,
    /// Loss-probe forward evaluations consumed.
    pub probe_evals: usize,
    /// Background rebuild workers observed dead (the sampler falls back
    /// to inline rebuilds after the first death).
    pub worker_deaths: usize,
    /// Wall-clock seconds spent inside refresh (scoring + epoch assembly;
    /// excludes background-thread graph time by construction).
    pub refresh_seconds: f64,
    /// Cumulative points re-queried by the incremental graph engine
    /// (counts every point on full builds, only the dirty frontier on
    /// delta patches; 0 in classic full-rebuild mode).
    pub points_rescored: usize,
    /// Cumulative adjacency slots rewritten by delta patches (0 in
    /// classic full-rebuild mode).
    pub edges_patched: usize,
    /// Dirty fraction of the most recent incremental rebuild
    /// (`rescored / total`; 1.0 for a full build, 0.0 before any
    /// incremental rebuild completes).
    pub last_dirty_fraction: f64,
    /// Worker-side wall seconds (kNN patch + blocked LRD) of the most
    /// recent incremental rebuild (0.0 in classic mode).
    pub last_patch_seconds: f64,
}

/// The SGM-PINN sampler (implements [`Sampler`]).
#[derive(Debug)]
pub struct SgmSampler {
    cfg: SgmConfig,
    /// Spatial projection of the interior cloud the PGM is built on.
    cloud: Arc<PointCloud>,
    clustering: Clustering,
    epoch: Vec<usize>,
    cursor: usize,
    builder: Option<BackgroundBuilder>,
    /// Executor for the initial build and for inline (non-background or
    /// fallback-after-worker-death) rebuilds. In incremental mode it
    /// keeps its own warm delta engine, so a worker death degrades to
    /// inline *delta* rebuilds, not full ones.
    inline_worker: RebuildWorker,
    stats: SgmStats,
    rebuild_counter: u64,
}

impl SgmSampler {
    /// Builds the initial PGM and clustering over `interior` and returns a
    /// ready sampler. The first epoch (before any loss probe) is the whole
    /// dataset shuffled — equivalent to uniform sampling, as in the paper's
    /// warm-up while S1/S2 complete.
    ///
    /// # Panics
    /// Panics if the cloud is empty or `spatial_dims` exceeds its dimension.
    pub fn new(interior: &PointCloud, cfg: SgmConfig) -> Self {
        let builder = if cfg.background {
            Some(BackgroundBuilder::spawn())
        } else {
            None
        };
        Self::build(interior, cfg, builder)
    }

    /// Like [`SgmSampler::new`] but with a caller-supplied background
    /// builder (e.g. one spawned through
    /// [`BackgroundBuilder::spawn_with_worker`] by a fault-injection
    /// harness). Ignores `cfg.background`.
    ///
    /// # Panics
    /// Panics if the cloud is empty or `spatial_dims` exceeds its dimension.
    pub fn with_builder(interior: &PointCloud, cfg: SgmConfig, builder: BackgroundBuilder) -> Self {
        Self::build(interior, cfg, Some(builder))
    }

    fn build(interior: &PointCloud, cfg: SgmConfig, builder: Option<BackgroundBuilder>) -> Self {
        assert!(!interior.is_empty(), "empty interior cloud");
        assert!(
            cfg.spatial_dims >= 1 && cfg.spatial_dims <= interior.dim(),
            "bad spatial_dims"
        );
        let spatial = if cfg.spatial_dims < interior.dim() {
            interior.project(cfg.spatial_dims)
        } else {
            interior.clone()
        };
        let cloud = Arc::new(spatial);
        let req = RebuildRequest {
            cloud: cloud.clone(),
            knn: Self::knn_config(&cfg, cfg.seed),
            lrd: Self::lrd_config(&cfg, cfg.seed),
            incremental: cfg.incremental.clone(),
        };
        let mut inline_worker = RebuildWorker::new();
        let t_build = Instant::now();
        let output = inline_worker.run(&req);
        let build_seconds = t_build.elapsed().as_secs_f64();
        let n = interior.len();
        let mut rng = Rng64::new(cfg.seed ^ 0xE90C);
        let mut epoch: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut epoch);
        let mut sampler = SgmSampler {
            cfg,
            cloud,
            clustering: output.clustering,
            epoch,
            cursor: 0,
            builder,
            inline_worker,
            stats: SgmStats {
                rebuilds_completed: 1,
                last_rebuild_seconds: build_seconds,
                ..SgmStats::default()
            },
            rebuild_counter: 0,
        };
        if let Some(rs) = &output.refresh {
            sampler.apply_refresh_stats(rs);
        }
        sampler
    }

    fn knn_config(cfg: &SgmConfig, seed: u64) -> KnnConfig {
        KnnConfig {
            k: cfg.k,
            strategy: cfg.knn_strategy,
            weight_eps: 1e-9,
            seed,
        }
    }

    fn lrd_config(cfg: &SgmConfig, seed: u64) -> LrdConfig {
        LrdConfig {
            level: cfg.lrd_level,
            er: ErSource::Approx(ApproxErOptions {
                seed,
                ..ApproxErOptions::default()
            }),
            budget_scale: 1.0,
            max_cluster_frac: cfg.max_cluster_frac,
            min_clusters: cfg.min_clusters,
        }
    }

    /// Current clustering (for diagnostics and the cluster-explorer
    /// example).
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Overhead statistics.
    pub fn stats(&self) -> SgmStats {
        self.stats
    }

    /// Selects `ceil(r · S_i)` probe members (≥ 1) from every cluster.
    /// Returns `(probe_indices, cluster_of_probe)`.
    fn select_probes(&self, rng: &mut Rng64) -> (Vec<usize>, Vec<usize>) {
        let mut probe_idx = Vec::new();
        let mut probe_cluster = Vec::new();
        for (ci, members) in self.clustering.clusters().iter().enumerate() {
            let want = ((members.len() as f64 * self.cfg.probe_ratio).ceil() as usize)
                .clamp(1, members.len());
            for p in rng.sample_indices(members.len(), want) {
                probe_idx.push(members[p] as usize);
                probe_cluster.push(ci);
            }
        }
        (probe_idx, probe_cluster)
    }

    fn cluster_means(&self, values: &[f64], probe_cluster: &[usize]) -> Vec<f64> {
        let nc = self.clustering.num_clusters();
        let mut sum = vec![0.0; nc];
        let mut cnt = vec![0usize; nc];
        for (&v, &c) in values.iter().zip(probe_cluster) {
            sum[c] += v;
            cnt[c] += 1;
        }
        sum.iter()
            .zip(&cnt)
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect()
    }

    /// ISR pass over a capped subset of the probes: builds input/output
    /// clouds, runs SPADE, and averages node scores per cluster.
    fn isr_cluster_scores(
        &self,
        probe: &Probe<'_>,
        probe_idx: &[usize],
        probe_cluster: &[usize],
        rng: &mut Rng64,
    ) -> Vec<f64> {
        let m = probe_idx.len().min(self.cfg.isr_cap).max(3);
        let chosen: Vec<usize> = if probe_idx.len() <= m {
            (0..probe_idx.len()).collect()
        } else {
            rng.sample_indices(probe_idx.len(), m)
        };
        if chosen.len() < 3 {
            return vec![0.0; self.clustering.num_clusters()];
        }
        let sel_idx: Vec<usize> = chosen.iter().map(|&i| probe_idx[i]).collect();
        let sel_cluster: Vec<usize> = chosen.iter().map(|&i| probe_cluster[i]).collect();
        let inputs = probe.inputs(&sel_idx);
        let outputs = probe.outputs(&sel_idx);
        let in_cloud = matrix_to_cloud(&inputs);
        let out_cloud = matrix_to_cloud(&outputs);
        let result = spade_scores(&in_cloud, &out_cloud, &self.cfg.spade);
        self.cluster_means(&result.node_scores, &sel_cluster)
    }

    fn rebuild_due(&self, iter: usize) -> bool {
        self.cfg.tau_g > 0 && iter > 0 && iter.is_multiple_of(self.cfg.tau_g)
    }

    /// Folds one incremental refresh report into the cumulative stats.
    fn apply_refresh_stats(&mut self, rs: &RefreshStats) {
        self.stats.points_rescored += rs.points_rescored;
        self.stats.edges_patched += rs.edges_patched;
        self.stats.last_dirty_fraction = rs.dirty_fraction();
        self.stats.last_patch_seconds = rs.knn_seconds + rs.lrd_seconds;
    }

    /// Runs a rebuild on the calling thread and applies it immediately,
    /// keeping the bookkeeping aligned with the background path.
    fn rebuild_inline(&mut self, req: &RebuildRequest) {
        let _span = trace::span(TraceLevel::Stages, "sampler", "rebuild_inline");
        let t0 = Instant::now();
        let output = self.inline_worker.run(req);
        self.clustering = output.clustering;
        if let Some(rs) = &output.refresh {
            self.apply_refresh_stats(rs);
        }
        self.stats.last_rebuild_seconds = t0.elapsed().as_secs_f64();
        self.stats.rebuilds_requested += 1;
        self.stats.rebuilds_applied += 1;
        self.stats.rebuilds_completed += 1;
    }

    /// Patches the sampler's spatial cloud to the coordinates in
    /// `points`.
    ///
    /// A move-only change updates rows in place and keeps the current
    /// clustering — in incremental mode the next τ_G rebuild detects the
    /// moved rows by coordinate comparison and routes them through the
    /// kNN delta path instead of a from-scratch build. A size change
    /// invalidates both the epoch indices and the cluster assignment, so
    /// the PGM is rebuilt inline and the epoch reset to a full-dataset
    /// shuffle keyed on the point-set epoch (deterministic across thread
    /// counts).
    fn resync_cloud(&mut self, points: &PointSet) {
        let d_sp = self.cfg.spatial_dims.min(points.dim());
        if points.len() == self.cloud.len() {
            let cloud = Arc::make_mut(&mut self.cloud);
            for i in 0..points.len() {
                cloud.set_point(i, &points.point(i)[..d_sp]);
            }
            return;
        }
        let mut flat = Vec::with_capacity(points.len() * d_sp);
        for i in 0..points.len() {
            flat.extend_from_slice(&points.point(i)[..d_sp]);
        }
        self.cloud = Arc::new(PointCloud::from_flat(d_sp, flat));
        let req = RebuildRequest {
            cloud: self.cloud.clone(),
            knn: Self::knn_config(&self.cfg, self.cfg.seed),
            lrd: Self::lrd_config(&self.cfg, self.cfg.seed),
            incremental: self.cfg.incremental.clone(),
        };
        self.rebuild_inline(&req);
        let mut rng = Rng64::new(self.cfg.seed ^ 0xAD47 ^ points.epoch());
        self.epoch = (0..points.len()).collect();
        rng.shuffle(&mut self.epoch);
        self.cursor = 0;
    }

    /// Spatial coordinates concatenated with the network's current
    /// outputs, each output column rescaled to the spatial bounding-box
    /// scale so neither group dominates the kNN metric.
    fn augmented_cloud(&self, probe: &Probe<'_>) -> PointCloud {
        let n = self.cloud.len();
        let all: Vec<usize> = (0..n).collect();
        let outputs = probe.outputs(&all);
        let d_sp = self.cloud.dim();
        let d_out = outputs.cols();
        let (mins, maxs) = self.cloud.bounds();
        let spatial_scale = mins
            .iter()
            .zip(&maxs)
            .map(|(a, b)| b - a)
            .fold(0.0f64, f64::max)
            .max(1e-12);
        // Per-output min/max for normalisation.
        let mut omin = vec![f64::MAX; d_out];
        let mut omax = vec![f64::MIN; d_out];
        for i in 0..n {
            for c in 0..d_out {
                let v = outputs.get(i, c);
                omin[c] = omin[c].min(v);
                omax[c] = omax[c].max(v);
            }
        }
        let mut flat = Vec::with_capacity(n * (d_sp + d_out));
        for i in 0..n {
            flat.extend_from_slice(self.cloud.point(i));
            for c in 0..d_out {
                let span = (omax[c] - omin[c]).max(1e-12);
                flat.push((outputs.get(i, c) - omin[c]) / span * spatial_scale);
            }
        }
        PointCloud::from_flat(d_sp + d_out, flat)
    }
}

fn matrix_to_cloud(m: &Matrix) -> PointCloud {
    PointCloud::from_flat(m.cols().max(1), m.as_slice().to_vec())
}

impl Sampler for SgmSampler {
    fn name(&self) -> &str {
        if self.cfg.use_isr {
            "sgm-s"
        } else {
            "sgm"
        }
    }

    fn fill_batch(&mut self, batch_size: usize, out: &mut Vec<usize>, rng: &mut Rng64) {
        out.clear();
        while out.len() < batch_size {
            if self.cursor >= self.epoch.len() {
                rng.shuffle(&mut self.epoch);
                self.cursor = 0;
            }
            let take = (batch_size - out.len()).min(self.epoch.len() - self.cursor);
            out.extend_from_slice(&self.epoch[self.cursor..self.cursor + take]);
            self.cursor += take;
        }
    }

    fn refresh(&mut self, iter: usize, probe: &Probe<'_>, rng: &mut Rng64) {
        // (lines 14–18) Graph rebuild scheduling.
        if self.rebuild_due(iter) {
            self.rebuild_counter += 1;
            let cloud = if self.cfg.augment_outputs {
                Arc::new(self.augmented_cloud(probe))
            } else {
                self.cloud.clone()
            };
            // Incremental mode pins the rebuild seed: the delta engine
            // caches per-block decompositions keyed on a stable config,
            // and a per-rebuild seed would invalidate every block every
            // τ_G. Classic mode keeps the historical per-rebuild mix.
            let rebuild_seed = if self.cfg.incremental.is_some() {
                self.cfg.seed
            } else {
                self.cfg.seed ^ self.rebuild_counter
            };
            let req = RebuildRequest {
                cloud,
                knn: Self::knn_config(&self.cfg, rebuild_seed),
                lrd: Self::lrd_config(&self.cfg, rebuild_seed),
                incremental: self.cfg.incremental.clone(),
            };
            match &mut self.builder {
                Some(b) => match b.request(req.clone()) {
                    Ok(true) => self.stats.rebuilds_requested += 1,
                    Ok(false) => {}
                    Err(_died) => {
                        // The worker is gone; run this rebuild inline and
                        // retire the builder so future τ_G events rebuild
                        // synchronously instead of waiting forever.
                        self.stats.worker_deaths += 1;
                        self.builder = None;
                        self.rebuild_inline(&req);
                    }
                },
                None => self.rebuild_inline(&req),
            }
        }
        if let Some(b) = &mut self.builder {
            match b.try_take() {
                Ok(Some(fresh)) => {
                    let dt = b.last_rebuild_duration();
                    // A result that raced a point-set size change was
                    // computed on a cloud snapshot of the wrong shape;
                    // applying it would desynchronise clustering and
                    // epoch. Discard it — the resync already rebuilt
                    // inline at the new size.
                    if fresh.clustering.num_nodes() == self.cloud.len() {
                        self.clustering = fresh.clustering;
                        if let Some(rs) = &fresh.refresh {
                            self.apply_refresh_stats(rs);
                        }
                        self.stats.rebuilds_applied += 1;
                    }
                    self.stats.rebuilds_completed += 1;
                    if let Some(dt) = dt {
                        self.stats.last_rebuild_seconds = dt.as_secs_f64();
                    }
                }
                Ok(None) => {}
                Err(_died) => {
                    // Keep sampling from the stale clustering; inline
                    // rebuilds take over at the next τ_G event.
                    self.stats.worker_deaths += 1;
                    self.builder = None;
                }
            }
        }
        // (lines 5–10) Score refresh every τ_e iterations.
        if !iter.is_multiple_of(self.cfg.tau_e) {
            return;
        }
        let _refresh_span = trace::span(TraceLevel::Stages, "sampler", "score_refresh");
        let t0 = Instant::now();
        if self.builder.as_ref().is_some_and(|b| b.is_pending()) {
            // This epoch is assembled from the previous clustering while
            // a rebuild is still computing (Algorithm 1's "previously
            // calculated distribution").
            self.stats.rebuilds_stale_served += 1;
            STALE_EPOCHS_TOTAL.inc();
        }
        let (probe_idx, probe_cluster) = self.select_probes(rng);
        let losses = {
            let _s = trace::span(TraceLevel::Full, "sampler", "probe_losses");
            probe_losses(probe, &probe_idx)
        };
        self.stats.probe_evals += probe_idx.len();
        let cluster_losses = self.cluster_means(&losses, &probe_cluster);
        let cluster_isr = if self.cfg.use_isr {
            let _s = trace::span(TraceLevel::Full, "sampler", "isr_scores");
            self.isr_cluster_scores(probe, &probe_idx, &probe_cluster, rng)
        } else {
            Vec::new()
        };
        let combined = combine_scores(&cluster_losses, &cluster_isr, self.cfg.isr_weight);
        if let (Some(&min), Some(&max)) = (
            combined
                .iter()
                .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)),
            combined
                .iter()
                .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)),
        ) {
            SCORE_MIN.set(min);
            SCORE_MAX.set(max);
            SCORE_MEAN.set(combined.iter().sum::<f64>() / combined.len() as f64);
        }
        let sizes = self.clustering.sizes();
        let plan = map_scores(&combined, &sizes, self.cfg.mapping, self.cfg.floor_one);
        DRAW_ENTROPY.set(normalized_entropy(&plan.counts));
        self.epoch = assemble_epoch(self.clustering.clusters(), &plan.counts, rng);
        if self.epoch.is_empty() {
            // Degenerate mapping (e.g. floor disabled, all-zero scores):
            // fall back to the full dataset.
            self.epoch = (0..probe.num_interior()).collect();
            rng.shuffle(&mut self.epoch);
        }
        self.cursor = 0;
        self.stats.refreshes += 1;
        REFRESHES_TOTAL.inc();
        self.stats.refresh_seconds += t0.elapsed().as_secs_f64();
    }

    /// Routes collocation-set mutations from an adaptive layer into the
    /// graph side: moved rows are written into the spatial cloud so the
    /// next τ_G rebuild's incremental engine sees them as a delta; size
    /// changes trigger an inline rebuild and a deterministic epoch
    /// reset.
    fn on_points_changed(&mut self, points: &PointSet, changes: &PointChanges) {
        let _ = changes;
        self.resync_cloud(points);
    }

    /// Resume-time resynchronisation: restores the spatial cloud to the
    /// checkpointed coordinates. With an unchanged point count this
    /// touches nothing but the cloud rows (the restored clustering,
    /// epoch and stats already reflect those coordinates); a size
    /// mismatch falls back to the inline-rebuild path.
    fn sync_points(&mut self, points: &PointSet) {
        if points.len() == self.cloud.len() {
            let d_sp = self.cfg.spatial_dims.min(points.dim());
            let cloud = Arc::make_mut(&mut self.cloud);
            for i in 0..points.len() {
                cloud.set_point(i, &points.point(i)[..d_sp]);
            }
        } else {
            self.resync_cloud(points);
        }
    }

    /// Serialises the clustering assignment, current epoch and overhead
    /// stats. A rebuild in flight on the background thread is *not*
    /// captured — after a restore the next `τ_G` event requests it again.
    fn save_state(&self) -> Value {
        let num = |v: f64| Value::Num(v);
        let arr_usize = |it: &[usize]| Value::Arr(it.iter().map(|&i| num(i as f64)).collect());
        let mut obj = BTreeMap::new();
        obj.insert(
            "assignment".to_string(),
            Value::Arr(
                self.clustering
                    .assignment()
                    .iter()
                    .map(|&c| num(c as f64))
                    .collect(),
            ),
        );
        obj.insert("epoch".to_string(), arr_usize(&self.epoch));
        obj.insert("cursor".to_string(), num(self.cursor as f64));
        obj.insert(
            "rebuild_counter".to_string(),
            num(self.rebuild_counter as f64),
        );
        obj.insert("refreshes".to_string(), num(self.stats.refreshes as f64));
        obj.insert(
            "rebuilds_requested".to_string(),
            num(self.stats.rebuilds_requested as f64),
        );
        obj.insert(
            "rebuilds_applied".to_string(),
            num(self.stats.rebuilds_applied as f64),
        );
        obj.insert(
            "rebuilds_completed".to_string(),
            num(self.stats.rebuilds_completed as f64),
        );
        obj.insert(
            "rebuilds_stale_served".to_string(),
            num(self.stats.rebuilds_stale_served as f64),
        );
        obj.insert(
            "last_rebuild_seconds".to_string(),
            num(self.stats.last_rebuild_seconds),
        );
        obj.insert(
            "probe_evals".to_string(),
            num(self.stats.probe_evals as f64),
        );
        obj.insert(
            "worker_deaths".to_string(),
            num(self.stats.worker_deaths as f64),
        );
        obj.insert(
            "refresh_seconds".to_string(),
            num(self.stats.refresh_seconds),
        );
        obj.insert(
            "points_rescored".to_string(),
            num(self.stats.points_rescored as f64),
        );
        obj.insert(
            "edges_patched".to_string(),
            num(self.stats.edges_patched as f64),
        );
        obj.insert(
            "last_dirty_fraction".to_string(),
            num(self.stats.last_dirty_fraction),
        );
        obj.insert(
            "last_patch_seconds".to_string(),
            num(self.stats.last_patch_seconds),
        );
        Value::Obj(obj)
    }

    fn load_state(&mut self, state: &Value) -> Result<(), String> {
        let get_usize = |key: &str| -> Result<usize, String> {
            state
                .get(key)
                .and_then(Value::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("sgm state: missing {key}"))
        };
        let get_arr = |key: &str| -> Result<Vec<usize>, String> {
            state
                .get(key)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("sgm state: missing {key}"))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .map(|i| i as usize)
                        .ok_or_else(|| format!("sgm state: non-integer in {key}"))
                })
                .collect()
        };
        let n = self.cloud.len();
        let assignment = get_arr("assignment")?;
        if assignment.len() != n {
            return Err(format!(
                "sgm state: {} assignment labels for {n} points",
                assignment.len()
            ));
        }
        let epoch = get_arr("epoch")?;
        if epoch.iter().any(|&i| i >= n) {
            return Err("sgm state: epoch index out of range".to_string());
        }
        let cursor = get_usize("cursor")?;
        if cursor > epoch.len() {
            return Err("sgm state: cursor past epoch end".to_string());
        }
        self.clustering =
            Clustering::from_assignment(assignment.iter().map(|&c| c as u32).collect());
        self.epoch = epoch;
        self.cursor = cursor;
        self.rebuild_counter = get_usize("rebuild_counter")? as u64;
        self.stats.refreshes = get_usize("refreshes")?;
        self.stats.rebuilds_requested = get_usize("rebuilds_requested")?;
        self.stats.rebuilds_applied = get_usize("rebuilds_applied")?;
        self.stats.probe_evals = get_usize("probe_evals")?;
        // Absent in checkpoints written before worker-death tracking.
        self.stats.worker_deaths = state
            .get("worker_deaths")
            .and_then(Value::as_u64)
            .unwrap_or(0) as usize;
        // Absent in checkpoints written before rebuild telemetry.
        self.stats.rebuilds_completed = state
            .get("rebuilds_completed")
            .and_then(Value::as_u64)
            .unwrap_or(0) as usize;
        self.stats.rebuilds_stale_served = state
            .get("rebuilds_stale_served")
            .and_then(Value::as_u64)
            .unwrap_or(0) as usize;
        self.stats.last_rebuild_seconds = state
            .get("last_rebuild_seconds")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        self.stats.refresh_seconds = state
            .get("refresh_seconds")
            .and_then(Value::as_f64)
            .ok_or("sgm state: missing refresh_seconds")?;
        // Absent in checkpoints written before incremental refresh.
        self.stats.points_rescored = state
            .get("points_rescored")
            .and_then(Value::as_u64)
            .unwrap_or(0) as usize;
        self.stats.edges_patched = state
            .get("edges_patched")
            .and_then(Value::as_u64)
            .unwrap_or(0) as usize;
        self.stats.last_dirty_fraction = state
            .get("last_dirty_fraction")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        self.stats.last_patch_seconds = state
            .get("last_patch_seconds")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgm_nn::activation::Activation;
    use sgm_nn::mlp::{Mlp, MlpConfig};
    use sgm_physics::geometry::{Cavity, FillStrategy};
    use sgm_physics::pde::{Pde, PoissonConfig};
    use sgm_physics::problem::{Problem, TrainSet};
    use sgm_physics::PinnModel;

    fn next_batch(s: &mut dyn Sampler, batch: usize, rng: &mut Rng64) -> Vec<usize> {
        let mut out = Vec::new();
        s.fill_batch(batch, &mut out, rng);
        out
    }

    /// Forcing that is enormous on the left half of the cavity — an
    /// untrained (≈ 0) network therefore has its loss concentrated there.
    fn lopsided_problem() -> Problem {
        Problem::new(Pde::Poisson(PoissonConfig {
            forcing: |p: &[f64]| if p[0] < 0.5 { 100.0 } else { 0.01 },
        }))
    }

    fn setup(n: usize, seed: u64) -> (Mlp, Problem, TrainSet) {
        let cav = Cavity::default();
        let mut rng = Rng64::new(seed);
        let interior = cav.sample_interior(n, FillStrategy::Halton, &mut rng);
        let data = TrainSet {
            interior,
            boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
            boundary_targets: Matrix::zeros(1, 1),
        };
        let cfg = MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 8,
            hidden_layers: 1,
            activation: Activation::Tanh,
            fourier: None,
        };
        let mut nrng = Rng64::new(seed + 1);
        (Mlp::new(&cfg, &mut nrng), lopsided_problem(), data)
    }

    fn small_cfg() -> SgmConfig {
        SgmConfig {
            k: 6,
            min_clusters: 8,
            max_cluster_frac: 0.2,
            tau_e: 10,
            tau_g: 0,
            background: false,
            ..SgmConfig::default()
        }
    }

    #[test]
    fn initial_epoch_covers_everything() {
        let (_net, _prob, data) = setup(100, 1);
        let mut s = SgmSampler::new(&data.interior, small_cfg());
        let mut rng = Rng64::new(2);
        let batch = next_batch(&mut s, 100, &mut rng);
        let uniq: std::collections::HashSet<_> = batch.iter().collect();
        assert_eq!(uniq.len(), 100, "first epoch is the shuffled dataset");
    }

    #[test]
    fn refresh_biases_towards_high_loss_region() {
        let (net, prob, data) = setup(400, 3);
        let mut s = SgmSampler::new(&data.interior, small_cfg());
        let model = PinnModel::new(&prob, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(4);
        s.refresh(0, &probe, &mut rng);
        assert_eq!(s.stats().refreshes, 1);
        // Draw a large batch and count how many samples fall on the
        // high-loss (left) half.
        let batch = next_batch(&mut s, 2000, &mut rng);
        let left = batch
            .iter()
            .filter(|&&i| data.interior.point(i)[0] < 0.5)
            .count();
        let frac = left as f64 / batch.len() as f64;
        assert!(frac > 0.6, "left-half fraction only {frac}");
    }

    #[test]
    fn floor_one_keeps_every_cluster_alive() {
        let (net, prob, data) = setup(300, 5);
        let mut cfg = small_cfg();
        cfg.floor_one = true;
        let mut s = SgmSampler::new(&data.interior, cfg);
        let model = PinnModel::new(&prob, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(6);
        s.refresh(0, &probe, &mut rng);
        // Each cluster must contribute ≥ 1 index to the epoch.
        let epoch: std::collections::HashSet<usize> = s.epoch.iter().copied().collect();
        for members in s.clustering.clusters() {
            assert!(
                members.iter().any(|&m| epoch.contains(&(m as usize))),
                "cluster starved"
            );
        }
    }

    #[test]
    fn tau_e_schedule_respected() {
        let (net, prob, data) = setup(200, 7);
        let mut s = SgmSampler::new(&data.interior, small_cfg()); // tau_e = 10
        let model = PinnModel::new(&prob, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(8);
        for iter in 0..25 {
            s.refresh(iter, &probe, &mut rng);
        }
        assert_eq!(s.stats().refreshes, 3, "refreshes at iters 0, 10, 20");
        assert!(s.stats().probe_evals > 0);
    }

    #[test]
    fn synchronous_rebuild_applies() {
        let (net, prob, data) = setup(200, 9);
        let mut cfg = small_cfg();
        cfg.tau_g = 5;
        cfg.background = false;
        let mut s = SgmSampler::new(&data.interior, cfg);
        let model = PinnModel::new(&prob, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(10);
        for iter in 0..11 {
            s.refresh(iter, &probe, &mut rng);
        }
        assert_eq!(s.stats().rebuilds_requested, 2);
        assert_eq!(s.stats().rebuilds_applied, 2);
    }

    #[test]
    fn incremental_mode_tracks_delta_stats() {
        let (net, prob, data) = setup(300, 31);
        let mut cfg = small_cfg();
        cfg.tau_g = 5;
        cfg.incremental = Some(RefreshOptions::default());
        let mut s = SgmSampler::new(&data.interior, cfg);
        // The initial full build reports every point rescored.
        assert_eq!(s.stats().points_rescored, 300);
        assert!((s.stats().last_dirty_fraction - 1.0).abs() < 1e-12);
        let model = PinnModel::new(&prob, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(32);
        for iter in 0..11 {
            s.refresh(iter, &probe, &mut rng);
        }
        // The sampler's cloud never moves, so the two τ_G rebuilds are
        // no-op deltas: nothing rescored, nothing patched.
        assert_eq!(s.stats().rebuilds_applied, 2);
        assert_eq!(s.stats().points_rescored, 300);
        assert_eq!(s.stats().edges_patched, 0);
        assert_eq!(s.stats().last_dirty_fraction, 0.0);
        assert_eq!(s.clustering().num_nodes(), 300);
    }

    #[test]
    fn background_rebuild_eventually_applies() {
        let (net, prob, data) = setup(300, 11);
        let mut cfg = small_cfg();
        cfg.tau_g = 2;
        cfg.background = true;
        let mut s = SgmSampler::new(&data.interior, cfg);
        let model = PinnModel::new(&prob, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(12);
        let mut applied = 0;
        for iter in 0..200 {
            s.refresh(iter, &probe, &mut rng);
            applied = s.stats().rebuilds_applied;
            if applied > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(applied > 0, "background rebuild never applied");
    }

    #[test]
    fn isr_variant_runs_and_scores() {
        let (net, prob, data) = setup(200, 13);
        let mut cfg = small_cfg();
        cfg.use_isr = true;
        cfg.isr_cap = 64;
        let mut s = SgmSampler::new(&data.interior, cfg);
        assert_eq!(s.name(), "sgm-s");
        let model = PinnModel::new(&prob, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(14);
        s.refresh(0, &probe, &mut rng);
        assert_eq!(s.stats().refreshes, 1);
        assert!(!s.epoch.is_empty());
    }

    #[test]
    fn batches_always_full_and_in_range() {
        let (net, prob, data) = setup(150, 15);
        let mut s = SgmSampler::new(&data.interior, small_cfg());
        let model = PinnModel::new(&prob, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(16);
        s.refresh(0, &probe, &mut rng);
        for _ in 0..20 {
            let b = next_batch(&mut s, 64, &mut rng);
            assert_eq!(b.len(), 64);
            assert!(b.iter().all(|&i| i < 150));
        }
    }

    #[test]
    fn state_roundtrip_preserves_epoch_and_stats() {
        let (net, prob, data) = setup(250, 21);
        let model = PinnModel::new(&prob, &data);
        let probe = Probe::new(&net, &model);
        let mut a = SgmSampler::new(&data.interior, small_cfg());
        let mut rng = Rng64::new(22);
        a.refresh(0, &probe, &mut rng);
        next_batch(&mut a, 64, &mut rng); // advance the cursor mid-epoch
        let saved = Value::parse(&a.save_state().to_string_compact()).unwrap();
        // Rebuild from scratch (fresh clustering/epoch) and restore.
        let mut b = SgmSampler::new(&data.interior, small_cfg());
        b.load_state(&saved).unwrap();
        assert_eq!(b.clustering.assignment(), a.clustering.assignment());
        assert_eq!(b.epoch, a.epoch);
        assert_eq!(b.cursor, a.cursor);
        assert_eq!(b.stats(), a.stats());
        let mut ra = Rng64::new(23);
        let mut rb = Rng64::new(23);
        for _ in 0..5 {
            assert_eq!(
                next_batch(&mut a, 64, &mut ra),
                next_batch(&mut b, 64, &mut rb)
            );
        }
    }

    #[test]
    fn state_rejects_mismatched_cloud() {
        let (_net, _prob, data) = setup(100, 24);
        let a = SgmSampler::new(&data.interior, small_cfg());
        let saved = a.save_state();
        let (_n2, _p2, data2) = setup(120, 25);
        let mut b = SgmSampler::new(&data2.interior, small_cfg());
        assert!(b.load_state(&saved).is_err());
    }

    #[test]
    fn parameterised_cloud_uses_spatial_projection() {
        // 3-column cloud (x, y, r_i): the PGM must be built on (x, y) only.
        let mut rng = Rng64::new(17);
        let mut flat = Vec::new();
        for _ in 0..120 {
            flat.push(rng.uniform());
            flat.push(rng.uniform());
            flat.push(rng.uniform_in(0.75, 1.1));
        }
        let cloud = PointCloud::from_flat(3, flat);
        let cfg = SgmConfig {
            spatial_dims: 2,
            background: false,
            min_clusters: 6,
            ..small_cfg()
        };
        let s = SgmSampler::new(&cloud, cfg);
        assert_eq!(s.clustering().num_nodes(), 120);
    }
}
