//! Residual-based adaptive *distribution* and *distribution+refinement*
//! sampling — the RAD and RAR-D rivals of Wu, Zhu, Deng, Zhang & Lu
//! (2023), "A comprehensive and fair comparison of two neural operators".
//!
//! Both methods act on the collocation **set** rather than the draw
//! distribution, so they implement the adapt side of the
//! `sgm_train::Sampler` split:
//!
//! * **RAD** ([`RadSampler`]) — every `τ` iterations, score a dense
//!   candidate pool with the current residuals and resample the *entire*
//!   collocation set from the pool with probability
//!   `p(x) ∝ ε(x)^k / mean(ε^k) + c` (the paper's Eq. 2). The set size
//!   stays constant; every point moves.
//! * **RAR-D** ([`RarDSampler`]) — every `τ` iterations, draw a fresh
//!   candidate batch, score it, and *append* the `m` highest-residual
//!   candidates to the set (greedy densification, the paper's
//!   Algorithm 2). The set grows monotonically up to a cap.
//!
//! Draws between adapts are uniform over the current set: the importance
//! distribution lives in the point *positions*, which is exactly what
//! distinguishes these methods from MIS-style reweighting.

use sgm_json::{obj, Value};
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_train::{PointChanges, PointSet, Probe, Sampler};

/// `ε^k` with non-finite residuals clamped to zero weight — an adapt
/// pass must survive NaN/∞ losses from a diverging network without
/// poisoning the CDF.
fn residual_power(eps: f64, k: f64) -> f64 {
    if !eps.is_finite() || eps <= 0.0 {
        return 0.0;
    }
    let w = eps.powf(k);
    if w.is_finite() {
        w
    } else {
        0.0
    }
}

/// Draws a row index from a cumulative weight vector (last entry = total).
fn draw_cdf(cdf: &[f64], rng: &mut Rng64) -> usize {
    let total = *cdf.last().expect("non-empty cdf");
    let u = rng.uniform() * total;
    match cdf.partial_cmp_search(u) {
        Ok(i) => (i + 1).min(cdf.len() - 1),
        Err(i) => i.min(cdf.len() - 1),
    }
}

/// Binary-search helper over a cumulative vector (total order assumed;
/// NaN never reaches here because weights are sanitised).
trait CdfSearch {
    fn partial_cmp_search(&self, u: f64) -> Result<usize, usize>;
}

impl CdfSearch for [f64] {
    fn partial_cmp_search(&self, u: f64) -> Result<usize, usize> {
        self.binary_search_by(|c| c.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Less))
    }
}

/// Uniform candidate coordinates inside the bounding box of the current
/// set (one row per candidate).
fn uniform_candidates(count: usize, mins: &[f64], maxs: &[f64], rng: &mut Rng64) -> Matrix {
    let dim = mins.len();
    let mut m = Matrix::zeros(count, dim);
    for i in 0..count {
        for d in 0..dim {
            m.set(i, d, rng.uniform_in(mins[d], maxs[d]));
        }
    }
    m
}

/// Configuration for [`RadSampler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadConfig {
    /// Resample period `τ` (iterations; 0 disables adaptation).
    pub tau: usize,
    /// Residual exponent `k` in `ε^k / mean(ε^k) + c` (paper default 1).
    pub power: f64,
    /// Uniform offset `c` (paper default 1): guarantees every region a
    /// floor probability, so low-residual areas are never abandoned.
    pub offset: f64,
    /// Candidate-pool size scored per resample.
    pub pool_size: usize,
}

impl Default for RadConfig {
    fn default() -> Self {
        RadConfig {
            tau: 200,
            power: 1.0,
            offset: 1.0,
            pool_size: 2048,
        }
    }
}

/// Private seed for the candidate-pool RNG: the pool must be a pure
/// function of the captured bounds so a resumed run regenerates it
/// bit-identically without touching the engine's checkpointed stream.
const POOL_SEED: u64 = 0x52AD_9E37;

/// The RAD sampler: full-set resampling from a residual-weighted pool.
#[derive(Debug, Clone)]
pub struct RadSampler {
    cfg: RadConfig,
    n: usize,
    /// Domain box captured at the first mutating adapt (before any point
    /// moves) and checkpointed — the pool is derived from it.
    bounds: Option<(Vec<f64>, Vec<f64>)>,
    /// Fixed candidate pool, lazily drawn inside `bounds` with a private
    /// seeded RNG (the domain never changes, the residual field does).
    pool: Option<Matrix>,
    probe_evals: usize,
    resamples: usize,
}

impl RadSampler {
    /// A RAD sampler over an initial set of `n` collocation points.
    pub fn new(n: usize, cfg: RadConfig) -> Self {
        assert!(n > 0, "empty collocation set");
        RadSampler {
            cfg,
            n,
            bounds: None,
            pool: None,
            probe_evals: 0,
            resamples: 0,
        }
    }

    /// Loss evaluations consumed by adapt passes so far.
    pub fn probe_evals(&self) -> usize {
        self.probe_evals
    }

    /// Completed full-set resamples.
    pub fn resamples(&self) -> usize {
        self.resamples
    }
}

impl Sampler for RadSampler {
    fn name(&self) -> &str {
        "rad"
    }

    fn fill_batch(&mut self, batch_size: usize, out: &mut Vec<usize>, rng: &mut Rng64) {
        out.clear();
        out.extend((0..batch_size).map(|_| rng.below(self.n)));
    }

    fn adapts_points(&self) -> bool {
        true
    }

    fn adapt(&mut self, points: &mut PointSet, iter: usize, probe: &Probe<'_>, rng: &mut Rng64) {
        if self.cfg.tau == 0 || iter == 0 || !iter.is_multiple_of(self.cfg.tau) {
            return;
        }
        if self.bounds.is_none() {
            self.bounds = Some(points.cloud().bounds());
        }
        if self.pool.is_none() {
            let (mins, maxs) = self.bounds.as_ref().expect("bounds captured");
            let mut pool_rng = Rng64::new(POOL_SEED ^ self.cfg.pool_size as u64);
            self.pool = Some(uniform_candidates(
                self.cfg.pool_size,
                mins,
                maxs,
                &mut pool_rng,
            ));
        }
        let pool = self.pool.as_ref().expect("pool just built");
        let losses = probe.losses_at(pool);
        self.probe_evals += pool.rows();
        let powered: Vec<f64> = losses
            .iter()
            .map(|&e| residual_power(e, self.cfg.power))
            .collect();
        let mean = powered.iter().sum::<f64>() / powered.len() as f64;
        let offset = self.cfg.offset.max(0.0);
        let mut cdf = Vec::with_capacity(powered.len());
        let mut acc = 0.0;
        for &w in &powered {
            // Eq. 2: p ∝ ε^k / mean(ε^k) + c. A zero mean (flat-zero
            // residual field) degenerates to the uniform offset alone.
            acc += if mean > 0.0 {
                w / mean + offset
            } else {
                offset.max(1.0)
            };
            cdf.push(acc);
        }
        for i in 0..points.len() {
            let src = draw_cdf(&cdf, rng);
            points.set_point(i, pool.row(src));
        }
        self.resamples += 1;
    }

    fn on_points_changed(&mut self, points: &PointSet, _changes: &PointChanges) {
        self.n = points.len();
    }

    fn sync_points(&mut self, points: &PointSet) {
        self.n = points.len();
    }

    fn save_state(&self) -> Value {
        let bounds = match &self.bounds {
            Some((mins, maxs)) => obj([
                ("mins", sgm_json::lossless_num_arr(mins)),
                ("maxs", sgm_json::lossless_num_arr(maxs)),
            ]),
            None => Value::Null,
        };
        obj([
            ("n", Value::Num(self.n as f64)),
            ("probe_evals", Value::Num(self.probe_evals as f64)),
            ("resamples", Value::Num(self.resamples as f64)),
            ("bounds", bounds),
        ])
    }

    fn load_state(&mut self, state: &Value) -> Result<(), String> {
        let req = |key: &str| {
            state
                .get(key)
                .and_then(Value::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("rad state: missing {key}"))
        };
        let n = req("n")?;
        if n == 0 {
            return Err("rad state: empty point set".to_string());
        }
        let bounds = match state.get("bounds") {
            None | Some(Value::Null) => None,
            Some(b) => {
                let mins = b
                    .req_lossless_f64_arr("mins")
                    .map_err(|e| format!("rad state: {e}"))?;
                let maxs = b
                    .req_lossless_f64_arr("maxs")
                    .map_err(|e| format!("rad state: {e}"))?;
                if mins.len() != maxs.len() || mins.is_empty() {
                    return Err("rad state: mismatched bounds".to_string());
                }
                Some((mins, maxs))
            }
        };
        self.n = n;
        self.probe_evals = req("probe_evals")?;
        self.resamples = req("resamples")?;
        self.bounds = bounds;
        // The pool is a pure function of the restored bounds (private
        // seeded RNG), so dropping it here regenerates it bit-exactly.
        self.pool = None;
        Ok(())
    }
}

/// Configuration for [`RarDSampler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RarDConfig {
    /// Densify period `τ` (iterations; 0 disables adaptation).
    pub tau: usize,
    /// Residual exponent `k` for ranking candidates.
    pub power: f64,
    /// Fresh candidates scored per adapt.
    pub candidates: usize,
    /// Points appended per adapt (the `m` of Algorithm 2).
    pub add_per_adapt: usize,
    /// Hard cap on the set size (adapts become no-ops at the cap).
    pub max_points: usize,
}

impl Default for RarDConfig {
    fn default() -> Self {
        RarDConfig {
            tau: 200,
            power: 2.0,
            candidates: 512,
            add_per_adapt: 32,
            max_points: usize::MAX,
        }
    }
}

/// The RAR-D sampler: greedy residual-ranked densification.
#[derive(Debug, Clone)]
pub struct RarDSampler {
    cfg: RarDConfig,
    n: usize,
    probe_evals: usize,
    /// Points appended over the sampler's lifetime.
    added: usize,
}

impl RarDSampler {
    /// A RAR-D sampler over an initial set of `n` collocation points.
    pub fn new(n: usize, cfg: RarDConfig) -> Self {
        assert!(n > 0, "empty collocation set");
        RarDSampler {
            cfg,
            n,
            probe_evals: 0,
            added: 0,
        }
    }

    /// Loss evaluations consumed by adapt passes so far.
    pub fn probe_evals(&self) -> usize {
        self.probe_evals
    }

    /// Points appended over the sampler's lifetime.
    pub fn points_added(&self) -> usize {
        self.added
    }
}

impl Sampler for RarDSampler {
    fn name(&self) -> &str {
        "rar_d"
    }

    fn fill_batch(&mut self, batch_size: usize, out: &mut Vec<usize>, rng: &mut Rng64) {
        out.clear();
        out.extend((0..batch_size).map(|_| rng.below(self.n)));
    }

    fn adapts_points(&self) -> bool {
        true
    }

    fn adapt(&mut self, points: &mut PointSet, iter: usize, probe: &Probe<'_>, rng: &mut Rng64) {
        if self.cfg.tau == 0 || iter == 0 || !iter.is_multiple_of(self.cfg.tau) {
            return;
        }
        let room = self.cfg.max_points.saturating_sub(points.len());
        let add = self.cfg.add_per_adapt.min(room);
        if add == 0 {
            return;
        }
        let (mins, maxs) = points.cloud().bounds();
        let cands = uniform_candidates(self.cfg.candidates, &mins, &maxs, rng);
        let losses = probe.losses_at(&cands);
        self.probe_evals += cands.rows();
        let mut order: Vec<usize> = (0..cands.rows()).collect();
        // Rank by residual power, index as the deterministic tie-break.
        order.sort_by(|&a, &b| {
            let (wa, wb) = (
                residual_power(losses[a], self.cfg.power),
                residual_power(losses[b], self.cfg.power),
            );
            wb.partial_cmp(&wa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for &c in order.iter().take(add) {
            points.push(cands.row(c));
        }
        self.added += add;
    }

    fn on_points_changed(&mut self, points: &PointSet, _changes: &PointChanges) {
        self.n = points.len();
    }

    fn sync_points(&mut self, points: &PointSet) {
        self.n = points.len();
    }

    fn save_state(&self) -> Value {
        obj([
            ("n", Value::Num(self.n as f64)),
            ("probe_evals", Value::Num(self.probe_evals as f64)),
            ("added", Value::Num(self.added as f64)),
        ])
    }

    fn load_state(&mut self, state: &Value) -> Result<(), String> {
        let req = |key: &str| {
            state
                .get(key)
                .and_then(Value::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("rar_d state: missing {key}"))
        };
        let n = req("n")?;
        if n == 0 {
            return Err("rar_d state: empty point set".to_string());
        }
        self.n = n;
        self.probe_evals = req("probe_evals")?;
        self.added = req("added")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgm_graph::points::PointCloud;
    use sgm_nn::activation::Activation;
    use sgm_nn::mlp::{Mlp, MlpConfig};
    use sgm_physics::geometry::{Cavity, FillStrategy};
    use sgm_physics::pde::{Pde, PoissonConfig};
    use sgm_physics::problem::{Problem, TrainSet};
    use sgm_physics::PinnModel;

    fn setup(n: usize, seed: u64) -> (Mlp, Problem, TrainSet) {
        let problem = Problem::new(Pde::Poisson(PoissonConfig {
            forcing: |p: &[f64]| if p[0] < 0.5 { 100.0 } else { 0.01 },
        }));
        let cav = Cavity::default();
        let mut rng = Rng64::new(seed);
        let interior = cav.sample_interior(n, FillStrategy::Halton, &mut rng);
        let data = TrainSet {
            interior,
            boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
            boundary_targets: sgm_linalg::dense::Matrix::zeros(1, 1),
        };
        let cfg = MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 8,
            hidden_layers: 1,
            activation: Activation::Tanh,
            fourier: None,
        };
        let mut nrng = Rng64::new(seed + 1);
        (Mlp::new(&cfg, &mut nrng), problem, data)
    }

    fn left_fraction(points: &PointSet) -> f64 {
        let left = (0..points.len())
            .filter(|&i| points.point(i)[0] < 0.5)
            .count();
        left as f64 / points.len() as f64
    }

    #[test]
    fn rad_resample_concentrates_on_high_loss_region() {
        let (net, prob, data) = setup(400, 1);
        let model = PinnModel::new(&prob, &data);
        let mut s = RadSampler::new(
            400,
            RadConfig {
                tau: 5,
                offset: 0.2,
                pool_size: 1024,
                ..RadConfig::default()
            },
        );
        let mut points = PointSet::new(data.interior.clone());
        let mut rng = Rng64::new(2);
        let probe = Probe::new(&net, &model);
        s.adapt(&mut points, 5, &probe, &mut rng);
        let mut changes = PointChanges::default();
        assert!(points.drain_changes(&mut changes));
        assert_eq!(changes.moved.len(), 400, "RAD moves every point");
        assert_eq!(points.len(), 400, "RAD preserves the set size");
        assert!(
            left_fraction(&points) > 0.6,
            "left-half fraction only {}",
            left_fraction(&points)
        );
        assert_eq!(s.resamples(), 1);
        assert!(s.probe_evals() >= 1024);
    }

    #[test]
    fn rad_skips_non_tau_iterations() {
        let (net, prob, data) = setup(100, 3);
        let model = PinnModel::new(&prob, &data);
        let mut s = RadSampler::new(
            100,
            RadConfig {
                tau: 10,
                ..RadConfig::default()
            },
        );
        let mut points = PointSet::new(data.interior.clone());
        let mut rng = Rng64::new(4);
        let probe = Probe::new(&net, &model);
        for iter in [0, 1, 9, 11, 15] {
            s.adapt(&mut points, iter, &probe, &mut rng);
        }
        let mut changes = PointChanges::default();
        assert!(!points.drain_changes(&mut changes), "no τ boundary crossed");
        assert_eq!(s.resamples(), 0);
    }

    #[test]
    fn rad_survives_non_finite_losses() {
        // ε^k weighting with NaN/∞ entries must fall back cleanly.
        assert_eq!(residual_power(f64::NAN, 1.0), 0.0);
        assert_eq!(residual_power(f64::INFINITY, 1.0), 0.0);
        assert_eq!(residual_power(1e308, 4.0), 0.0, "overflowing power");
        assert_eq!(residual_power(-1.0, 1.0), 0.0);
        assert!(residual_power(2.0, 2.0) == 4.0);
    }

    #[test]
    fn rad_state_roundtrip() {
        let (net, prob, data) = setup(120, 5);
        let model = PinnModel::new(&prob, &data);
        let mut a = RadSampler::new(
            120,
            RadConfig {
                tau: 5,
                ..RadConfig::default()
            },
        );
        let mut points = PointSet::new(data.interior.clone());
        let mut rng = Rng64::new(6);
        let probe = Probe::new(&net, &model);
        a.adapt(&mut points, 5, &probe, &mut rng);
        let saved = Value::parse(&a.save_state().to_string_compact()).unwrap();
        let mut b = RadSampler::new(
            120,
            RadConfig {
                tau: 5,
                ..RadConfig::default()
            },
        );
        b.load_state(&saved).unwrap();
        assert_eq!(b.probe_evals(), a.probe_evals());
        assert_eq!(b.resamples(), a.resamples());
        let mut ra = Rng64::new(7);
        let mut rb = Rng64::new(7);
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        a.fill_batch(64, &mut ba, &mut ra);
        b.fill_batch(64, &mut bb, &mut rb);
        assert_eq!(ba, bb);
        assert!(b.load_state(&Value::Num(3.0)).is_err());
    }

    #[test]
    fn rar_d_appends_high_residual_candidates() {
        let (net, prob, data) = setup(300, 8);
        let model = PinnModel::new(&prob, &data);
        let mut s = RarDSampler::new(
            300,
            RarDConfig {
                tau: 5,
                candidates: 400,
                add_per_adapt: 40,
                ..RarDConfig::default()
            },
        );
        let mut points = PointSet::new(data.interior.clone());
        let mut rng = Rng64::new(9);
        let probe = Probe::new(&net, &model);
        s.adapt(&mut points, 5, &probe, &mut rng);
        s.adapt(&mut points, 10, &probe, &mut rng);
        let mut changes = PointChanges::default();
        assert!(points.drain_changes(&mut changes));
        assert_eq!(changes.added, 80);
        assert!(changes.moved.is_empty(), "RAR-D never moves points");
        assert_eq!(points.len(), 380);
        // The appended tail should be predominantly in the high-loss half.
        let added_left = (300..380).filter(|&i| points.point(i)[0] < 0.5).count();
        assert!(
            added_left >= 72,
            "only {added_left}/80 appended points in the high-loss half"
        );
        assert_eq!(s.points_added(), 80);
    }

    #[test]
    fn rar_d_respects_point_cap() {
        let (net, prob, data) = setup(100, 10);
        let model = PinnModel::new(&prob, &data);
        let mut s = RarDSampler::new(
            100,
            RarDConfig {
                tau: 1,
                add_per_adapt: 30,
                max_points: 140,
                ..RarDConfig::default()
            },
        );
        let mut points = PointSet::new(data.interior.clone());
        let mut rng = Rng64::new(11);
        let probe = Probe::new(&net, &model);
        for iter in 1..=5 {
            s.adapt(&mut points, iter, &probe, &mut rng);
        }
        assert_eq!(points.len(), 140, "cap respected");
        assert_eq!(s.points_added(), 40);
    }

    #[test]
    fn rar_d_state_roundtrip_and_sync() {
        let (net, prob, data) = setup(150, 12);
        let model = PinnModel::new(&prob, &data);
        let mut a = RarDSampler::new(
            150,
            RarDConfig {
                tau: 5,
                add_per_adapt: 10,
                ..RarDConfig::default()
            },
        );
        let mut points = PointSet::new(data.interior.clone());
        let mut rng = Rng64::new(13);
        let probe = Probe::new(&net, &model);
        a.adapt(&mut points, 5, &probe, &mut rng);
        let mut changes = PointChanges::default();
        points.drain_changes(&mut changes);
        a.on_points_changed(&points, &changes);
        assert_eq!(a.n, 160, "draw range follows the grown set");
        let saved = Value::parse(&a.save_state().to_string_compact()).unwrap();
        let mut b = RarDSampler::new(150, RarDConfig::default());
        b.load_state(&saved).unwrap();
        b.sync_points(&points);
        assert_eq!(b.n, a.n);
        assert_eq!(b.probe_evals(), a.probe_evals());
        assert_eq!(b.points_added(), a.points_added());
    }
}
