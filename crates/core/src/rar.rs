//! Residual-based adaptive refinement (RAR) — the other prior-art
//! baseline the paper discusses (§1, DeepXDE's method, ref [16]).
//!
//! RAR trains on a growing *active set*: it starts from a seed subset of
//! the collocation cloud and periodically evaluates residuals on a random
//! candidate pool, promoting the worst offenders into the active set.
//! Compared to SGM-PINN it (a) pays loss evaluations on candidates every
//! refresh, (b) never *removes* points, so the active set only grows, and
//! (c) has no notion of cluster-level correlation — the weaknesses §1
//! cites ("high computational complexity and overhead … and can lead to
//! poor retention of the solution on low-residual parts of the domain").

use sgm_json::Value;
use sgm_linalg::rng::Rng64;
use sgm_train::{Probe, Sampler};
use std::collections::BTreeMap;

/// Configuration for [`RarSampler`].
#[derive(Debug, Clone, PartialEq)]
pub struct RarConfig {
    /// Initial active-set size (fraction of N).
    pub initial_fraction: f64,
    /// Refresh period in iterations.
    pub tau: usize,
    /// Candidates scored per refresh.
    pub candidates: usize,
    /// Worst candidates promoted per refresh.
    pub add_per_refresh: usize,
}

impl Default for RarConfig {
    fn default() -> Self {
        RarConfig {
            initial_fraction: 0.1,
            tau: 300,
            candidates: 1000,
            add_per_refresh: 50,
        }
    }
}

/// The RAR baseline sampler (implements [`Sampler`]).
#[derive(Debug, Clone)]
pub struct RarSampler {
    cfg: RarConfig,
    n: usize,
    active: Vec<usize>,
    in_active: Vec<bool>,
    probe_evals: usize,
}

impl RarSampler {
    /// Creates the sampler over `n` interior points with a random seed
    /// subset.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, cfg: RarConfig, rng: &mut Rng64) -> Self {
        assert!(n > 0, "empty dataset");
        let k = ((n as f64 * cfg.initial_fraction).ceil() as usize).clamp(1, n);
        let active = rng.sample_indices(n, k);
        let mut in_active = vec![false; n];
        for &i in &active {
            in_active[i] = true;
        }
        RarSampler {
            cfg,
            n,
            active,
            in_active,
            probe_evals: 0,
        }
    }

    /// Current active-set size.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Loss evaluations consumed by refreshes so far.
    pub fn probe_evals(&self) -> usize {
        self.probe_evals
    }
}

impl Sampler for RarSampler {
    fn name(&self) -> &str {
        "rar"
    }

    fn fill_batch(&mut self, batch_size: usize, out: &mut Vec<usize>, rng: &mut Rng64) {
        out.clear();
        out.extend((0..batch_size).map(|_| self.active[rng.below(self.active.len())]));
    }

    fn refresh(&mut self, iter: usize, probe: &Probe<'_>, rng: &mut Rng64) {
        if iter == 0 || !iter.is_multiple_of(self.cfg.tau) || self.active.len() == self.n {
            return;
        }
        // Score a random candidate pool drawn from the *inactive* points.
        let inactive: Vec<usize> = (0..self.n).filter(|&i| !self.in_active[i]).collect();
        if inactive.is_empty() {
            return;
        }
        let m = self.cfg.candidates.min(inactive.len());
        let picks = rng.sample_indices(inactive.len(), m);
        let cands: Vec<usize> = picks.into_iter().map(|p| inactive[p]).collect();
        let losses = probe.sample_losses(&cands);
        self.probe_evals += cands.len();
        // Promote the worst `add_per_refresh`. Non-finite losses rank
        // lowest — they carry no usable residual signal.
        let sane = |l: f64| if l.is_finite() { l } else { 0.0 };
        let mut order: Vec<usize> = (0..cands.len()).collect();
        order.sort_by(|&a, &b| sane(losses[b]).total_cmp(&sane(losses[a])));
        for &ci in order.iter().take(self.cfg.add_per_refresh) {
            let idx = cands[ci];
            if !self.in_active[idx] {
                self.in_active[idx] = true;
                self.active.push(idx);
            }
        }
    }

    fn save_state(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert(
            "active".to_string(),
            Value::Arr(self.active.iter().map(|&i| Value::Num(i as f64)).collect()),
        );
        obj.insert(
            "probe_evals".to_string(),
            Value::Num(self.probe_evals as f64),
        );
        Value::Obj(obj)
    }

    fn load_state(&mut self, state: &Value) -> Result<(), String> {
        let arr = state
            .get("active")
            .and_then(Value::as_arr)
            .ok_or("rar state: missing active")?;
        let active: Vec<usize> = arr
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|i| i as usize)
                    .ok_or("rar state: non-integer index")
            })
            .collect::<Result<_, _>>()?;
        if active.is_empty() || active.iter().any(|&i| i >= self.n) {
            return Err("rar state: active set empty or out of range".to_string());
        }
        let mut in_active = vec![false; self.n];
        for &i in &active {
            in_active[i] = true;
        }
        self.probe_evals = state
            .get("probe_evals")
            .and_then(Value::as_u64)
            .ok_or("rar state: missing probe_evals")? as usize;
        self.active = active;
        self.in_active = in_active;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgm_graph::points::PointCloud;
    use sgm_linalg::dense::Matrix;
    use sgm_nn::activation::Activation;
    use sgm_nn::mlp::{Mlp, MlpConfig};
    use sgm_physics::geometry::{Cavity, FillStrategy};
    use sgm_physics::pde::{Pde, PoissonConfig};
    use sgm_physics::problem::{Problem, TrainSet};
    use sgm_physics::PinnModel;

    fn setup(n: usize) -> (Mlp, Problem, TrainSet) {
        let problem = Problem::new(Pde::Poisson(PoissonConfig {
            forcing: |p: &[f64]| if p[0] < 0.5 { 100.0 } else { 0.01 },
        }));
        let mut rng = Rng64::new(5);
        let interior = Cavity::default().sample_interior(n, FillStrategy::Halton, &mut rng);
        let data = TrainSet {
            interior,
            boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
            boundary_targets: Matrix::zeros(1, 1),
        };
        let net = Mlp::new(
            &MlpConfig {
                input_dim: 2,
                output_dim: 1,
                hidden_width: 6,
                hidden_layers: 1,
                activation: Activation::Tanh,
                fourier: None,
            },
            &mut Rng64::new(6),
        );
        (net, problem, data)
    }

    fn next_batch(s: &mut dyn Sampler, batch: usize, rng: &mut Rng64) -> Vec<usize> {
        let mut out = Vec::new();
        s.fill_batch(batch, &mut out, rng);
        out
    }

    #[test]
    fn starts_at_initial_fraction() {
        let mut rng = Rng64::new(1);
        let s = RarSampler::new(1000, RarConfig::default(), &mut rng);
        assert_eq!(s.active_len(), 100);
    }

    #[test]
    fn active_set_grows_monotonically() {
        let (net, prob, data) = setup(600);
        let model = PinnModel::new(&prob, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(2);
        let mut s = RarSampler::new(
            600,
            RarConfig {
                tau: 10,
                candidates: 100,
                add_per_refresh: 20,
                ..RarConfig::default()
            },
            &mut rng,
        );
        let mut last = s.active_len();
        for iter in 1..=50 {
            s.refresh(iter, &probe, &mut rng);
            assert!(s.active_len() >= last);
            last = s.active_len();
        }
        assert!(last > 60, "active set did not grow: {last}");
        assert!(s.probe_evals() > 0);
    }

    #[test]
    fn promotes_high_loss_region() {
        // Forcing is huge on the left half; promoted points should be
        // predominantly there.
        let (net, prob, data) = setup(800);
        let model = PinnModel::new(&prob, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(3);
        let mut s = RarSampler::new(
            800,
            RarConfig {
                initial_fraction: 0.05,
                tau: 10,
                candidates: 400,
                add_per_refresh: 40,
            },
            &mut rng,
        );
        let before = s.active.clone();
        for iter in 1..=40 {
            s.refresh(iter, &probe, &mut rng);
        }
        let added: Vec<usize> = s.active[before.len()..].to_vec();
        assert!(!added.is_empty());
        let left = added
            .iter()
            .filter(|&&i| data.interior.point(i)[0] < 0.5)
            .count();
        let frac = left as f64 / added.len() as f64;
        assert!(frac > 0.9, "only {frac} of promoted points on the left");
    }

    #[test]
    fn batches_come_from_active_set() {
        let mut rng = Rng64::new(4);
        let mut s = RarSampler::new(500, RarConfig::default(), &mut rng);
        let active: std::collections::HashSet<usize> = s.active.iter().copied().collect();
        for i in next_batch(&mut s, 200, &mut rng) {
            assert!(active.contains(&i));
        }
    }

    #[test]
    fn state_roundtrip_preserves_active_set() {
        let (net, prob, data) = setup(300);
        let model = PinnModel::new(&prob, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(11);
        let mut a = RarSampler::new(
            300,
            RarConfig {
                tau: 5,
                candidates: 80,
                add_per_refresh: 20,
                ..RarConfig::default()
            },
            &mut rng,
        );
        for iter in 1..=15 {
            a.refresh(iter, &probe, &mut rng);
        }
        let saved = Value::parse(&a.save_state().to_string_compact()).unwrap();
        // Fresh sampler seeded differently — state restore must override it.
        let mut b = RarSampler::new(300, RarConfig::default(), &mut Rng64::new(99));
        b.load_state(&saved).unwrap();
        assert_eq!(b.active, a.active);
        assert_eq!(b.in_active, a.in_active);
        assert_eq!(b.probe_evals(), a.probe_evals());
        let mut ra = Rng64::new(12);
        let mut rb = Rng64::new(12);
        assert_eq!(
            next_batch(&mut a, 64, &mut ra),
            next_batch(&mut b, 64, &mut rb)
        );
    }

    #[test]
    fn saturates_at_full_dataset() {
        let (net, prob, data) = setup(120);
        let model = PinnModel::new(&prob, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(7);
        let mut s = RarSampler::new(
            120,
            RarConfig {
                initial_fraction: 0.5,
                tau: 1,
                candidates: 200,
                add_per_refresh: 50,
            },
            &mut rng,
        );
        for iter in 1..=10 {
            s.refresh(iter, &probe, &mut rng);
        }
        assert_eq!(s.active_len(), 120);
        // No duplicates.
        let set: std::collections::HashSet<usize> = s.active.iter().copied().collect();
        assert_eq!(set.len(), 120);
    }
}
