//! # sgm-json
//!
//! A minimal JSON value model, recursive-descent parser and writer used
//! for checkpoint and benchmark-report serialization. Std only.
//!
//! Numbers are `f64` throughout. Writing uses Rust's shortest-roundtrip
//! `Display` for `f64` and parsing uses `str::parse::<f64>` (correctly
//! rounded), so a write→parse cycle restores every finite `f64`
//! **bit-exactly** — the property the `sgm-nn` checkpoint tests rely on.
//! Non-finite numbers serialize as `null` (JSON has no NaN/Inf).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Object keys are kept sorted (BTreeMap) so output is canonical.
    Obj(BTreeMap<String, Value>),
}

/// Parse or access error with a short human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
    /// Byte offset in the input where the error was detected (0 for
    /// access errors).
    pub offset: usize,
}

impl JsonError {
    fn new(msg: impl Into<String>, offset: usize) -> Self {
        JsonError {
            msg: msg.into(),
            offset,
        }
    }

    /// Builds an access error (e.g. "missing field") not tied to input text.
    pub fn access(msg: impl Into<String>) -> Self {
        JsonError::new(msg, 0)
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(JsonError::new("trailing characters", p.pos));
        }
        Ok(v)
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, Some(2), 0);
        out
    }

    // -- typed accessors -------------------------------------------------

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }

    // -- required-field helpers (for struct decoding) --------------------

    pub fn req(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::access(format!("missing field `{key}`")))
    }

    pub fn req_f64(&self, key: &str) -> Result<f64, JsonError> {
        self.req(key)?
            .as_f64()
            .ok_or_else(|| JsonError::access(format!("field `{key}` is not a number")))
    }

    pub fn req_usize(&self, key: &str) -> Result<usize, JsonError> {
        self.req(key)?.as_u64().map(|v| v as usize).ok_or_else(|| {
            JsonError::access(format!("field `{key}` is not a non-negative integer"))
        })
    }

    pub fn req_str(&self, key: &str) -> Result<&str, JsonError> {
        self.req(key)?
            .as_str()
            .ok_or_else(|| JsonError::access(format!("field `{key}` is not a string")))
    }

    pub fn req_bool(&self, key: &str) -> Result<bool, JsonError> {
        self.req(key)?
            .as_bool()
            .ok_or_else(|| JsonError::access(format!("field `{key}` is not a boolean")))
    }

    // -- optional-field helpers (for request/response schemas) -----------
    //
    // Missing keys and explicit `null` both decode to `None`; a present
    // value of the wrong type is an error, not `None`, so schema typos
    // fail loudly instead of silently picking defaults.

    pub fn opt_f64(&self, key: &str) -> Result<Option<f64>, JsonError> {
        match self.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| JsonError::access(format!("field `{key}` is not a number"))),
        }
    }

    pub fn opt_usize(&self, key: &str) -> Result<Option<usize>, JsonError> {
        match self.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v.as_u64().map(|x| Some(x as usize)).ok_or_else(|| {
                JsonError::access(format!("field `{key}` is not a non-negative integer"))
            }),
        }
    }

    pub fn opt_str(&self, key: &str) -> Result<Option<&str>, JsonError> {
        match self.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| JsonError::access(format!("field `{key}` is not a string"))),
        }
    }

    pub fn opt_bool(&self, key: &str) -> Result<Option<bool>, JsonError> {
        match self.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_bool()
                .map(Some)
                .ok_or_else(|| JsonError::access(format!("field `{key}` is not a boolean"))),
        }
    }

    pub fn req_f64_arr(&self, key: &str) -> Result<Vec<f64>, JsonError> {
        let arr = self
            .req(key)?
            .as_arr()
            .ok_or_else(|| JsonError::access(format!("field `{key}` is not an array")))?;
        arr.iter()
            .enumerate()
            .map(|(i, v)| {
                v.as_f64()
                    .ok_or_else(|| JsonError::access(format!("`{key}[{i}]` is not a number")))
            })
            .collect()
    }

    /// Like [`Value::as_f64`] but also decodes the `"f64:<16 hex digits>"`
    /// string form produced by [`lossless_num`] for non-finite values, so
    /// NaN payloads and infinity signs survive a write→parse cycle
    /// bit-exactly.
    pub fn as_lossless_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Str(s) => {
                let hex = s.strip_prefix("f64:")?;
                if hex.len() != 16 {
                    return None;
                }
                u64::from_str_radix(hex, 16).ok().map(f64::from_bits)
            }
            _ => None,
        }
    }

    /// Required-field accessor for arrays written by [`lossless_num_arr`];
    /// plain JSON numbers are also accepted, so finite-only arrays decode
    /// identically to [`Value::req_f64_arr`].
    pub fn req_lossless_f64_arr(&self, key: &str) -> Result<Vec<f64>, JsonError> {
        let arr = self
            .req(key)?
            .as_arr()
            .ok_or_else(|| JsonError::access(format!("field `{key}` is not an array")))?;
        arr.iter()
            .enumerate()
            .map(|(i, v)| {
                v.as_lossless_f64().ok_or_else(|| {
                    JsonError::access(format!(
                        "`{key}[{i}]` is neither a number nor an `f64:` hex string"
                    ))
                })
            })
            .collect()
    }

    /// Searches the tree for a non-finite [`Value::Num`] — a value that
    /// would silently serialize as `null` — and returns the path of the
    /// first one found (e.g. `"epoch[3]"` or `"stats.loss"`), depth
    /// first. `None` means the tree serializes losslessly.
    pub fn find_non_finite(&self) -> Option<String> {
        fn walk(v: &Value, path: &str) -> Option<String> {
            match v {
                Value::Num(x) if !x.is_finite() => Some(if path.is_empty() {
                    "<root>".to_string()
                } else {
                    path.to_string()
                }),
                Value::Arr(a) => a
                    .iter()
                    .enumerate()
                    .find_map(|(i, item)| walk(item, &format!("{path}[{i}]"))),
                Value::Obj(m) => m.iter().find_map(|(k, item)| {
                    let p = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    walk(item, &p)
                }),
                _ => None,
            }
        }
        walk(self, "")
    }
}

/// Convenience builder for objects: `obj([("a", Value::Num(1.0))])`.
pub fn obj<I: IntoIterator<Item = (&'static str, Value)>>(fields: I) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Convenience builder for `f64` arrays.
pub fn num_arr(xs: &[f64]) -> Value {
    Value::Arr(xs.iter().map(|&x| Value::Num(x)).collect())
}

/// A single `f64` encoded so that *every* bit pattern survives a
/// write→parse cycle: finite values stay plain JSON numbers (shortest
/// roundtrip), non-finite values become the string `"f64:<16 hex>"`
/// holding the raw bits. Decode with [`Value::as_lossless_f64`].
pub fn lossless_num(x: f64) -> Value {
    if x.is_finite() {
        Value::Num(x)
    } else {
        Value::Str(format!("f64:{:016x}", x.to_bits()))
    }
}

/// Builder for `f64` arrays using the [`lossless_num`] encoding; decode
/// with [`Value::req_lossless_f64_arr`].
pub fn lossless_num_arr(xs: &[f64]) -> Value {
    Value::Arr(xs.iter().map(|&x| lossless_num(x)).collect())
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(x) => write_num(*x, out),
        Value::Str(s) => write_str(s, out),
        Value::Arr(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(x: f64, out: &mut String) {
    use fmt::Write;
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's Display for f64 is the shortest string that round-trips,
    // but it prints integers without a decimal point or exponent — which
    // is still valid JSON, so emit it directly.
    let _ = write!(out, "{x}");
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(
                format!("expected `{}`", b as char),
                self.pos,
            ))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(JsonError::new("unexpected character", self.pos)),
            None => Err(JsonError::new("unexpected end of input", self.pos)),
        }
    }

    fn literal(&mut self, text: &[u8], v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(JsonError::new("invalid literal", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number bytes", start))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| JsonError::new("invalid number", start))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(JsonError::new("lone surrogate", self.pos));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(JsonError::new("lone surrogate", self.pos));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(JsonError::new("bad low surrogate", self.pos));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                                    .ok_or_else(|| JsonError::new("bad surrogate pair", self.pos))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| JsonError::new("bad code point", self.pos))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(JsonError::new("bad escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char (input is a &str so boundaries
                    // are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::new("invalid utf8", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        // Called with self.pos at 'u'; consumes 'u' + 4 hex digits and
        // leaves pos just past the last digit.
        self.pos += 1;
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| JsonError::new("bad \\u escape", self.pos))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(JsonError::new("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(JsonError::new("expected `,` or `}`", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let v = obj([
            ("a", Value::Num(1.5)),
            ("b", Value::Str("hi \"there\"\n".into())),
            ("c", Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("d", obj([("nested", Value::Num(-0.0))])),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            let back = Value::parse(&text).unwrap();
            assert_eq!(back, v, "text: {text}");
        }
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        let mut xs = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            std::f64::consts::PI,
            1e-308,
            2.2250738585072014e-308, // smallest normal
            5e-324,                  // smallest subnormal
            1.7976931348623157e308,  // f64::MAX
            0.1,
            1.0 / 3.0,
            -123456789.12345679,
            1e20,
            3.0000000000000004,
        ];
        // A deterministic pseudo-random sweep for good measure.
        let mut s = 0x9e3779b97f4a7c15u64;
        for _ in 0..2000 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = f64::from_bits(s);
            if x.is_finite() {
                xs.push(x);
            }
        }
        for &x in &xs {
            let text = Value::Num(x).to_string_compact();
            let back = Value::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(
                back.to_bits(),
                x.to_bits(),
                "x={x:e} text={text} back={back:e}"
            );
        }
    }

    #[test]
    fn parses_standard_syntax() {
        let v =
            Value::parse(r#" { "k": [1, -2.5, 3e2, 0.5e-1], "s": "aAb", "t": true, "n": null } "#)
                .unwrap();
        assert_eq!(v.req_f64_arr("k").unwrap(), vec![1.0, -2.5, 300.0, 0.05]);
        assert_eq!(v.req_str("s").unwrap(), "aAb");
        assert_eq!(v.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n"), Some(&Value::Null));
    }

    #[test]
    fn unicode_escapes() {
        // \u escapes, including a surrogate pair for 😀 (U+1F600).
        assert_eq!(
            Value::parse("\"\\u0041\\u00e9x\\ud83d\\ude00\"").unwrap(),
            Value::Str("Aéx😀".into())
        );
        // Raw UTF-8 passes through unescaped.
        assert_eq!(
            Value::parse("\"héllo\"").unwrap(),
            Value::Str("héllo".into())
        );
        assert!(Value::parse(r#""\ud83d""#).is_err()); // lone high surrogate
        assert!(Value::parse(r#""\uZZZZ""#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn accessors_and_errors() {
        let v = Value::parse(r#"{"n": 3, "s": "x"}"#).unwrap();
        assert_eq!(v.req_usize("n").unwrap(), 3);
        assert!(v.req_usize("s").is_err());
        assert!(v.req_f64("missing").is_err());
        let e = v.req("missing").unwrap_err();
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Value::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn lossless_num_roundtrips_every_bit_pattern() {
        let specials = [
            f64::NAN,
            -f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload
            0.0,
            -0.0,
            1.5,
            5e-324,
        ];
        for &x in &specials {
            let text = obj([("v", lossless_num(x))]).to_string_compact();
            let back = Value::parse(&text).unwrap();
            let y = back.get("v").unwrap().as_lossless_f64().unwrap();
            assert_eq!(y.to_bits(), x.to_bits(), "x={x:?} text={text}");
        }
        // Arrays too, including mixed finite/non-finite.
        let xs = [1.0, f64::NAN, -0.0, f64::NEG_INFINITY];
        let text = obj([("a", lossless_num_arr(&xs))]).to_string_compact();
        let back = Value::parse(&text).unwrap();
        let ys = back.req_lossless_f64_arr("a").unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // The lossless reader still accepts plain finite arrays.
        let plain = obj([("a", num_arr(&[1.0, 2.0]))]);
        assert_eq!(plain.req_lossless_f64_arr("a").unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn lossless_decode_rejects_malformed_strings() {
        assert_eq!(Value::Str("f64:123".into()).as_lossless_f64(), None);
        assert_eq!(
            Value::Str("f64:zzzzzzzzzzzzzzzz".into()).as_lossless_f64(),
            None
        );
        assert_eq!(Value::Str("not-a-float".into()).as_lossless_f64(), None);
        assert_eq!(Value::Null.as_lossless_f64(), None);
        let v = obj([("a", Value::Arr(vec![Value::Num(1.0), Value::Null]))]);
        let e = v.req_lossless_f64_arr("a").unwrap_err();
        assert!(e.to_string().contains("a[1]"), "{e}");
    }

    #[test]
    fn find_non_finite_reports_path() {
        let clean = obj([
            ("a", num_arr(&[1.0, 2.0])),
            ("b", obj([("c", Value::Num(0.5))])),
        ]);
        assert_eq!(clean.find_non_finite(), None);
        let dirty = obj([("a", num_arr(&[1.0, f64::NAN])), ("b", Value::Num(3.0))]);
        assert_eq!(dirty.find_non_finite().as_deref(), Some("a[1]"));
        let nested = obj([("outer", obj([("inner", num_arr(&[f64::INFINITY]))]))]);
        assert_eq!(nested.find_non_finite().as_deref(), Some("outer.inner[0]"));
        assert_eq!(
            Value::Num(f64::NAN).find_non_finite().as_deref(),
            Some("<root>")
        );
    }

    #[test]
    fn f64_arr_errors_name_the_element() {
        let v = obj([(
            "xs",
            Value::Arr(vec![Value::Num(1.0), Value::Str("x".into())]),
        )]);
        let e = v.req_f64_arr("xs").unwrap_err();
        assert!(e.to_string().contains("xs[1]"), "{e}");
    }

    #[test]
    fn optional_field_helpers_distinguish_missing_from_mistyped() {
        let v = obj([
            ("n", Value::Num(3.0)),
            ("s", Value::Str("hi".into())),
            ("b", Value::Bool(true)),
            ("z", Value::Null),
        ]);
        assert_eq!(v.opt_f64("n").unwrap(), Some(3.0));
        assert_eq!(v.opt_usize("n").unwrap(), Some(3));
        assert_eq!(v.opt_str("s").unwrap(), Some("hi"));
        assert_eq!(v.opt_bool("b").unwrap(), Some(true));
        assert!(v.req_bool("b").unwrap());
        // Missing and null both read as None...
        assert_eq!(v.opt_f64("missing").unwrap(), None);
        assert_eq!(v.opt_str("z").unwrap(), None);
        // ...but a present value of the wrong type is an error.
        assert!(v.opt_f64("s").is_err());
        assert!(v.opt_usize("s").is_err());
        assert!(v.opt_str("n").is_err());
        assert!(v.opt_bool("n").is_err());
        assert!(v.req_bool("n").is_err());
        assert!(v.req_bool("missing").is_err());
        // Fractional and negative numbers are not usize.
        let w = obj([("x", Value::Num(1.5)), ("y", Value::Num(-2.0))]);
        assert!(w.opt_usize("x").is_err());
        assert!(w.opt_usize("y").is_err());
    }
}
