//! # sgm-stability
//!
//! The spectral stability metric of paper step **S3**: the Inverse
//! Stability Rating (ISR), a black-box robustness score for an ML model
//! over a dataset, following SPADE (Cheng et al., ICML'21).
//!
//! Given a probe set of samples with input features `X` and model outputs
//! `Y = F(X)`, two kNN graphs `G_X`, `G_Y` are built over the same node
//! set. The **distance-mapping distortion** `γ^F(p,q) = d_Y(p,q) / d_X(p,q)`
//! measures how much the map stretches locally; its supremum is bounded by
//! the dominant generalized eigenvalue of the Laplacian pencil (Lemma 2):
//!
//! ```text
//! ISR^F = λ_max(L_Y⁺ L_X) ≥ K* ≥ γ^F_max
//! ```
//!
//! Edge and node scores come from the top-`r` eigenpairs (Lemma 3 / Eq. 11):
//! `ISR^F(p,q) = ‖V_rᵀ e_pq‖²` with `V_r = [v_1 √λ_1, …, v_r √λ_r]`, and
//! `ISR^F(p)` is the mean edge score over `p`'s input-graph neighbours.
//! High node scores flag regions where the output manifold changes fastest
//! with the *inputs* — exactly the signal plain loss-based importance
//! sampling misses on parameterised problems (paper §2.2, §4.2).
//!
//! The probe sets SGM-PINN scores are small (`r%` of each cluster), so the
//! pencil is solved densely: Cholesky-reduce `(L_X, L_Y + εI)` to a standard
//! symmetric problem and run Jacobi eigendecomposition. This is exact and
//! `O(n³)` in the *probe* count, not the dataset size.
//!
//! # Example
//!
//! ```
//! use sgm_graph::points::PointCloud;
//! use sgm_stability::{spade_scores, SpadeConfig};
//!
//! // A map that stretches the right half of the line.
//! let n = 40;
//! let xs: Vec<f64> = (0..n).map(|i| i as f64 / n as f64 - 0.5).collect();
//! let ys: Vec<f64> = xs.iter().map(|&x| if x > 0.0 { 8.0 * x } else { x }).collect();
//! let inp = PointCloud::from_flat(1, xs);
//! let out = PointCloud::from_flat(1, ys);
//! let result = spade_scores(&inp, &out, &SpadeConfig::default());
//! assert!(result.isr_max >= 1.0);
//! ```

use sgm_graph::graph::Graph;
use sgm_graph::knn::{build_knn_graph, KnnConfig, KnnStrategy};
use sgm_graph::laplacian::regularized_laplacian;
use sgm_graph::points::PointCloud;
use sgm_linalg::dense::Matrix;

/// Configuration for [`spade_scores`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpadeConfig {
    /// kNN size for both the input and output graphs.
    pub k: usize,
    /// Number of dominant eigenpairs used for the embedding `V_r`.
    pub num_pairs: usize,
    /// Tikhonov regularisation added to both Laplacians before the pencil
    /// reduction.
    pub reg_eps: f64,
    /// Weight floor for kNN edges.
    pub weight_eps: f64,
}

impl Default for SpadeConfig {
    fn default() -> Self {
        SpadeConfig {
            k: 6,
            num_pairs: 4,
            reg_eps: 1e-6,
            weight_eps: 1e-9,
        }
    }
}

/// Output of [`spade_scores`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpadeResult {
    /// Dominant generalized eigenvalue `λ_max(L_Y⁺ L_X)` — the global ISR,
    /// an upper bound on the best Lipschitz constant of the map.
    pub isr_max: f64,
    /// Per-node ISR scores (Eq. 11): mean edge score over input-graph
    /// neighbours. Larger = less stable region.
    pub node_scores: Vec<f64>,
    /// The generalized eigenvalues used (descending).
    pub eigenvalues: Vec<f64>,
}

/// Computes ISR scores for a probe set.
///
/// `input` holds the probe samples' input features; `output` the model
/// outputs (or per-sample loss vectors) for the same samples, in the same
/// order.
///
/// # Panics
/// Panics if the clouds differ in length or have fewer than 3 points (no
/// meaningful pencil).
pub fn spade_scores(input: &PointCloud, output: &PointCloud, cfg: &SpadeConfig) -> SpadeResult {
    assert_eq!(input.len(), output.len(), "probe sets must align");
    let n = input.len();
    assert!(n >= 3, "need at least 3 probe points");
    let k = cfg.k.min(n - 1).max(1);
    let knn_cfg = KnnConfig {
        k,
        strategy: KnnStrategy::Brute,
        weight_eps: cfg.weight_eps,
        seed: 0x5BADE,
    };
    let gx = build_knn_graph(input, &knn_cfg);
    let gy = build_knn_graph(output, &knn_cfg);
    spade_scores_from_graphs(&gx, &gy, cfg)
}

/// ISR scores from pre-built input/output graphs over the same node set.
///
/// # Panics
/// Panics if the graphs have different node counts or fewer than 3 nodes.
pub fn spade_scores_from_graphs(gx: &Graph, gy: &Graph, cfg: &SpadeConfig) -> SpadeResult {
    let n = gx.num_nodes();
    assert_eq!(n, gy.num_nodes(), "graph node counts differ");
    assert!(n >= 3, "need at least 3 nodes");
    let lx = regularized_laplacian(gx, cfg.reg_eps).to_dense();
    let ly = regularized_laplacian(gy, cfg.reg_eps).to_dense();

    // Generalized symmetric problem L_X v = λ L_Y v via Cholesky reduction:
    // L_Y = C Cᵀ  ⇒  (C⁻¹ L_X C⁻ᵀ) u = λ u,  v = C⁻ᵀ u.
    let c = ly
        .cholesky()
        .expect("regularised Laplacian is positive definite");
    let mut a = Matrix::zeros(n, n);
    for col in 0..n {
        let mut e = vec![0.0; n];
        e[col] = 1.0;
        let cinv_t = c.back_substitute_t(&e);
        let lx_c = lx.mul_vec(&cinv_t);
        let a_col = c.forward_substitute(&lx_c);
        for (row, &v) in a_col.iter().enumerate() {
            a.set(row, col, v);
        }
    }
    // Symmetrise against round-off.
    for i in 0..n {
        for j in i + 1..n {
            let m = 0.5 * (a.get(i, j) + a.get(j, i));
            a.set(i, j, m);
            a.set(j, i, m);
        }
    }
    let (vals, vecs) = a.sym_eig();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&p, &q| vals[q].partial_cmp(&vals[p]).unwrap());
    let r = cfg.num_pairs.min(n);
    let top: Vec<usize> = order[..r].to_vec();
    let eigenvalues: Vec<f64> = top.iter().map(|&i| vals[i]).collect();
    let isr_max = eigenvalues.first().copied().unwrap_or(0.0);

    // Transform eigenvectors back: v = C⁻ᵀ u, then scale by √λ.
    let mut vr: Vec<Vec<f64>> = Vec::with_capacity(r);
    for (&ti, &lam) in top.iter().zip(&eigenvalues) {
        let u: Vec<f64> = (0..n).map(|row| vecs.get(row, ti)).collect();
        let mut v = c.back_substitute_t(&u);
        let s = lam.max(0.0).sqrt();
        for x in &mut v {
            *x *= s;
        }
        vr.push(v);
    }

    // Edge score ‖V_rᵀ e_pq‖² = Σ_k (v_k(p) − v_k(q))²; node score = mean
    // over input-graph neighbours (Eq. 11).
    let node_scores: Vec<f64> = (0..n)
        .map(|p| {
            let mut sum = 0.0;
            let mut cnt = 0usize;
            for (q, _) in gx.neighbors(p) {
                let s: f64 = vr
                    .iter()
                    .map(|v| {
                        let d = v[p] - v[q];
                        d * d
                    })
                    .sum();
                sum += s;
                cnt += 1;
            }
            if cnt == 0 {
                0.0
            } else {
                sum / cnt as f64
            }
        })
        .collect();

    SpadeResult {
        isr_max,
        node_scores,
        eigenvalues,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_cloud(f: impl Fn(f64) -> f64, n: usize) -> (PointCloud, PointCloud) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        (PointCloud::from_flat(1, xs), PointCloud::from_flat(1, ys))
    }

    #[test]
    fn identity_map_is_stable() {
        let (inp, out) = line_cloud(|x| x, 30);
        let r = spade_scores(&inp, &out, &SpadeConfig::default());
        assert!((r.isr_max - 1.0).abs() < 0.2, "isr {}", r.isr_max);
    }

    #[test]
    fn uniform_scaling_scales_lambda() {
        // y = 5x: output distances ×5, kNN weights 1/d ⇒ L_Y = L_X/5,
        // so λ_max(L_Y⁺ L_X) ≈ 5.
        let (inp, out) = line_cloud(|x| 5.0 * x, 30);
        let r = spade_scores(&inp, &out, &SpadeConfig::default());
        assert!(r.isr_max > 3.0 && r.isr_max < 8.0, "isr {}", r.isr_max);
    }

    #[test]
    fn stretched_region_scores_higher() {
        // Stretch x > 0.5 by 10×; nodes there should receive higher ISR.
        let (inp, out) = line_cloud(|x| if x > 0.5 { 10.0 * x - 4.5 } else { x }, 60);
        let r = spade_scores(&inp, &out, &SpadeConfig::default());
        let n = r.node_scores.len();
        let left: f64 = r.node_scores[..n / 2 - 2].iter().sum::<f64>() / (n / 2 - 2) as f64;
        let right: f64 = r.node_scores[n / 2 + 2..].iter().sum::<f64>() / (n / 2 - 2) as f64;
        assert!(
            right > 2.0 * left,
            "right {right} should dominate left {left}"
        );
    }

    #[test]
    fn isr_dominates_distortion() {
        // Lemma 2: ISR ≥ γ_max (here the local stretch factor is 10).
        let (inp, out) = line_cloud(|x| if x > 0.5 { 10.0 * x - 4.5 } else { x }, 60);
        let r = spade_scores(&inp, &out, &SpadeConfig::default());
        // (tiny Tikhonov regularisation can shave a fraction of a percent
        // off the exact bound, hence the 1e-2 slack)
        assert!(r.isr_max >= 10.0 - 1e-2, "isr {} < γ_max", r.isr_max);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let (inp, out) = line_cloud(|x| x * x + 0.1 * x, 40);
        let r = spade_scores(&inp, &out, &SpadeConfig::default());
        for w in r.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn node_scores_nonnegative_and_finite() {
        let (inp, out) = line_cloud(|x| (6.0 * x).sin(), 50);
        let r = spade_scores(&inp, &out, &SpadeConfig::default());
        assert_eq!(r.node_scores.len(), 50);
        for &s in &r.node_scores {
            assert!(s.is_finite() && s >= 0.0);
        }
    }

    #[test]
    fn works_on_multidimensional_outputs() {
        let n = 40;
        let xs: Vec<f64> = (0..n)
            .flat_map(|i| {
                let t = i as f64 / n as f64;
                [t, 1.0 - t]
            })
            .collect();
        let ys: Vec<f64> = (0..n)
            .flat_map(|i| {
                let t = i as f64 / n as f64;
                [t.sin(), t.cos(), t * t]
            })
            .collect();
        let inp = PointCloud::from_flat(2, xs);
        let out = PointCloud::from_flat(3, ys);
        let r = spade_scores(&inp, &out, &SpadeConfig::default());
        assert!(r.isr_max.is_finite());
        assert!(r.isr_max > 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let a = PointCloud::from_flat(1, vec![0.0, 1.0, 2.0]);
        let b = PointCloud::from_flat(1, vec![0.0, 1.0]);
        let _ = spade_scores(&a, &b, &SpadeConfig::default());
    }

    #[test]
    fn small_probe_sets_clamp_k() {
        let a = PointCloud::from_flat(1, vec![0.0, 1.0, 2.0, 3.0]);
        let b = PointCloud::from_flat(1, vec![0.0, 2.0, 4.0, 6.0]);
        let cfg = SpadeConfig {
            k: 50, // larger than the probe set
            ..SpadeConfig::default()
        };
        let r = spade_scores(&a, &b, &cfg);
        assert!(r.isr_max.is_finite());
    }
}
