//! Concurrent-shard aggregation contract: metric records issued from
//! `sgm-par` pool workers at thread counts {1, 2, 8} must aggregate to
//! *exact* totals on scrape. Shard writes are relaxed atomics, so the
//! property under test is that no increment is lost or double-counted
//! regardless of how worker ordinals map onto the fixed shard array
//! (8 workers exercise every shard; more workers than shards would
//! alias, which `thread_ordinal & (SHARDS-1)` makes safe by design).

use sgm_obs::{metrics, Counter, Gauge, Histogram};

static C: Counter = Counter::new("obs_test_concurrent_counter");
static H: Histogram = Histogram::new("obs_test_concurrent_hist");
static G: Gauge = Gauge::new("obs_test_concurrent_gauge");

#[test]
fn concurrent_records_aggregate_exactly() {
    const PER_TASK: u64 = 20_000;
    let mut expected = 0u64;
    for &threads in &[1usize, 2, 8] {
        let pool = sgm_par::pool_with(threads);
        // 2 tasks per worker so the queue forces hand-offs even at t=1.
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..threads * 2)
            .map(|_| {
                Box::new(|| {
                    for i in 0..PER_TASK {
                        C.inc();
                        G.add(1.0);
                        H.record(i % 97);
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.run(tasks);
        expected += threads as u64 * 2 * PER_TASK;
        assert_eq!(C.value(), expected, "counter lost adds at t={threads}");
        assert_eq!(G.value(), expected as f64, "gauge drifted at t={threads}");
        let snap = H.snapshot();
        assert_eq!(snap.count, expected, "histogram count at t={threads}");
        assert_eq!(snap.min, Some(0));
        assert_eq!(snap.max, Some(96));
        // Sum is exact too: every task records the same 0..PER_TASK
        // sequence, so the aggregate is a closed-form multiple.
        let per_task_sum: u64 = (0..PER_TASK).map(|i| i % 97).sum();
        assert_eq!(snap.sum, (expected / PER_TASK) * per_task_sum);
    }

    // The scrape path sees all three metrics exactly once each.
    let names: Vec<String> = metrics::snapshot()
        .iter()
        .map(|m| m.name().to_string())
        .filter(|n| n.starts_with("obs_test_concurrent_"))
        .collect();
    assert_eq!(
        names.len(),
        3,
        "duplicate or missing registrations: {names:?}"
    );
}
