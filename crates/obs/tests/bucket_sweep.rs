//! Property sweep over the log-linear histogram bucketing
//! (`bucket_index` / `bucket_lower`), via `sgm-testkit`'s shrinking
//! sweep runner: for values across all 64 bit magnitudes the index must
//! stay in range, invert through `bucket_lower`, grow monotonically,
//! and bound quantization error at 25 % (4 sub-buckets per octave).

use sgm_obs::metrics::{bucket_index, bucket_lower, BUCKETS};
use sgm_testkit::Sweep;

#[test]
fn bucket_functions_satisfy_their_contract() {
    Sweep::new(0x56d_0b5, 4000).run(
        |rng| {
            // Uniform over magnitudes, not values: shift a raw draw so
            // small buckets (the linear 0..4 range) get real coverage.
            let shift = rng.below(64) as u32;
            rng.next_u64() >> shift
        },
        |&v| {
            let mut cands = Vec::new();
            if v > 0 {
                cands.push(v / 2);
                cands.push(v - 1);
            }
            cands
        },
        |&v| {
            let idx = bucket_index(v);
            if idx >= BUCKETS {
                return Err(format!("index {idx} out of range for {v}"));
            }
            let lo = bucket_lower(idx);
            if lo > v {
                return Err(format!("lower({idx}) = {lo} > {v}"));
            }
            if idx + 1 < BUCKETS {
                let hi = bucket_lower(idx + 1);
                // The topmost bucket is inclusive of u64::MAX (its
                // "next lower bound" saturates), so the half-open
                // check only applies below it.
                if hi != u64::MAX && v >= hi {
                    return Err(format!("{v} >= next lower {hi} (bucket {idx})"));
                }
                // Relative quantization: width <= lo/4 beyond the
                // linear head (lo < 4 buckets have width 1).
                let width = hi - lo;
                if hi != u64::MAX && lo >= 4 && width * 4 > lo {
                    return Err(format!("bucket {idx} width {width} > 25% of {lo}"));
                }
            }
            // Monotone in v: the next representable value never maps to
            // a smaller bucket.
            if v < u64::MAX && bucket_index(v + 1) < idx {
                return Err(format!("index not monotone at {v}"));
            }
            Ok(())
        },
    );
}
