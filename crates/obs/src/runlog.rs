//! Structured run telemetry: one JSONL file per training run.
//!
//! A run log collects run metadata and per-record convergence points
//! during training, then writes a single JSONL file whose lines are,
//! in order:
//!
//! 1. one `{"type":"meta", ...}` line (run name + free-form metadata),
//! 2. one `{"type":"metric", ...}` line per registered metric (the
//!    objects from [`crate::metrics::json_snapshot`]),
//! 3. one `{"type":"record", ...}` line per convergence record,
//! 4. one `{"type":"span", ...}` line per collected trace span.
//!
//! The schema is validated by `sgm-testkit`'s telemetry checker and
//! consumed by the `run_report` bin in `sgm-bench`. File writing
//! happens strictly after training, so the run itself stays on the
//! zero-allocation steady-state path.

use crate::{metrics, trace};
use sgm_json::{obj, Value};
use std::io::Write;

/// One convergence record (mirrors the training engine's `Record`).
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Iteration index the record was taken at.
    pub iteration: usize,
    /// Train-clock seconds at that iteration.
    pub seconds: f64,
    /// Training loss.
    pub train_loss: f64,
    /// Validation errors (one per validation set, may be empty).
    pub val_errors: Vec<f64>,
}

impl RunRecord {
    fn to_value(&self) -> Value {
        obj([
            ("type", Value::Str("record".into())),
            ("iteration", Value::Num(self.iteration as f64)),
            ("seconds", Value::Num(self.seconds)),
            ("train_loss", Value::Num(self.train_loss)),
            (
                "val_errors",
                Value::Arr(self.val_errors.iter().map(|&e| Value::Num(e)).collect()),
            ),
        ])
    }
}

/// Accumulates one run's telemetry and writes it out as JSONL.
#[derive(Debug, Default)]
pub struct RunLog {
    run: String,
    meta: Vec<(String, Value)>,
    records: Vec<RunRecord>,
}

impl RunLog {
    /// Creates an empty log for a named run.
    pub fn new(run: &str) -> RunLog {
        RunLog {
            run: run.to_string(),
            meta: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Attaches a free-form metadata field to the meta line.
    pub fn meta(&mut self, key: &str, value: Value) -> &mut Self {
        self.meta.push((key.to_string(), value));
        self
    }

    /// Appends one convergence record.
    pub fn push_record(&mut self, r: RunRecord) {
        self.records.push(r);
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records have been collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    fn meta_value(&self) -> Value {
        let mut fields = vec![
            ("type".to_string(), Value::Str("meta".into())),
            ("run".to_string(), Value::Str(self.run.clone())),
        ];
        fields.extend(self.meta.iter().cloned());
        Value::Obj(fields.into_iter().collect())
    }

    /// Renders the full JSONL document (meta, metrics, records, spans)
    /// from the current metrics registry and the given spans.
    pub fn render_jsonl(&self, spans: &[trace::TraceEvent]) -> String {
        let mut out = String::new();
        out.push_str(&self.meta_value().to_string_compact());
        out.push('\n');
        if let Value::Arr(ms) = metrics::json_snapshot() {
            for m in ms {
                out.push_str(&m.to_string_compact());
                out.push('\n');
            }
        }
        for r in &self.records {
            out.push_str(&r.to_value().to_string_compact());
            out.push('\n');
        }
        for ev in spans {
            out.push_str(&trace::span_value(ev).to_string_compact());
            out.push('\n');
        }
        out
    }

    /// Writes [`RunLog::render_jsonl`] to `path` (creating parent
    /// directories as needed).
    pub fn write_jsonl(&self, path: &str, spans: &[trace::TraceEvent]) -> std::io::Result<()> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.render_jsonl(spans).as_bytes())
    }

    /// End-of-run convenience honoring the telemetry env vars:
    ///
    /// * `SGM_RUN_LOG=<path>` — drain collected spans and write the
    ///   JSONL telemetry there.
    /// * `SGM_CHROME_TRACE=<path>` — also write a Chrome
    ///   `trace_event` export of the same spans.
    ///
    /// Returns the JSONL path when one was written. With neither var
    /// set this is a no-op (spans are left in the collector).
    pub fn finish_from_env(&self) -> std::io::Result<Option<String>> {
        let jsonl = std::env::var("SGM_RUN_LOG").ok().filter(|s| !s.is_empty());
        let chrome = std::env::var("SGM_CHROME_TRACE")
            .ok()
            .filter(|s| !s.is_empty());
        if jsonl.is_none() && chrome.is_none() {
            return Ok(None);
        }
        let spans = trace::drain();
        if let Some(path) = &chrome {
            trace::write_chrome_trace(path, &spans)?;
        }
        if let Some(path) = &jsonl {
            self.write_jsonl(path, &spans)?;
            return Ok(Some(path.clone()));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_all_parse_and_are_typed() {
        let mut log = RunLog::new("unit");
        log.meta("method", Value::Str("sgm".into()));
        log.push_record(RunRecord {
            iteration: 10,
            seconds: 0.5,
            train_loss: 1e-3,
            val_errors: vec![0.1, 0.2],
        });
        let spans = vec![trace::TraceEvent {
            name: "stage_refresh",
            cat: "engine",
            tid: 0,
            id: 7,
            parent: 0,
            start_ns: 100,
            dur_ns: 50,
        }];
        let text = log.render_jsonl(&spans);
        let mut types = Vec::new();
        for line in text.lines() {
            let v = Value::parse(line).expect("line parses");
            types.push(v.req_str("type").expect("typed").to_string());
        }
        assert_eq!(types.first().map(String::as_str), Some("meta"));
        assert!(types.iter().any(|t| t == "record"));
        assert_eq!(types.last().map(String::as_str), Some("span"));
        let meta = Value::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(meta.req_str("run").unwrap(), "unit");
        assert_eq!(meta.req_str("method").unwrap(), "sgm");
    }
}
