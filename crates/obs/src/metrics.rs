//! Lock-free metrics registry: counters, gauges and log-linear-bucket
//! histograms.
//!
//! # Design
//!
//! Every metric is a `static` with a `const` constructor, so declaring
//! one costs nothing at startup and recording into one is a handful of
//! relaxed atomic operations — no locks, no allocation, no branches on
//! a registry lookup. Counters and histograms are **sharded**: each
//! metric owns a small fixed array of cache-line-padded slots and a
//! recording thread picks its slot from a per-thread ordinal, so
//! concurrent recorders on different threads rarely touch the same
//! cache line. Shards are summed only at *scrape* time, which is why
//! the hot-path contract of the training engine (zero steady-state
//! allocations, bit-identical numerics) is untouched: metrics never
//! feed back into computation, and recording never allocates.
//!
//! Metrics self-register into the process-wide registry on first
//! record (one relaxed load per record once registered; a single
//! mutex-guarded push the first time). [`snapshot`] returns every
//! registered metric sorted by name; [`prometheus_text`] and
//! [`json_snapshot`] render the standard expositions.
//!
//! # Histogram buckets
//!
//! Histograms store `u64` observations (the workspace convention is
//! nanoseconds) in log-linear buckets: 4 sub-buckets per power of two,
//! i.e. a relative quantization error ≤ 25 %. Bucket boundaries are
//! pure functions of the value ([`bucket_index`] / [`bucket_lower`]),
//! property-swept by the testkit suite.

use sgm_json::{obj, Value};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Shards per counter/histogram. Power of two; recording threads map
/// onto shards by ordinal, so up to this many threads record with zero
/// cache-line sharing.
pub const SHARDS: usize = 8;

static NEXT_THREAD_ORDINAL: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_ORDINAL: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// A small dense per-thread ordinal (0, 1, 2, …) assigned on first use.
/// Shared with the tracer so trace `tid`s match shard indices.
pub fn thread_ordinal() -> usize {
    THREAD_ORDINAL.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
}

#[inline]
fn shard_index() -> usize {
    thread_ordinal() & (SHARDS - 1)
}

/// One cache line worth of counter state.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());

fn register(m: MetricRef) {
    REGISTRY.lock().expect("metrics registry poisoned").push(m);
}

/// A monotonic counter (sharded; aggregated on scrape).
pub struct Counter {
    name: &'static str,
    registered: AtomicBool,
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Const constructor for `static` declarations.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            registered: AtomicBool::new(false),
            shards: [const { PaddedU64(AtomicU64::new(0)) }; SHARDS],
        }
    }

    /// Metric name (Prometheus-style snake case by convention).
    pub fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    fn ensure_registered(&'static self) {
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::AcqRel)
        {
            register(MetricRef::Counter(self));
        }
    }

    /// Adds `v`. Lock- and allocation-free after the first call.
    #[inline]
    pub fn add(&'static self, v: u64) {
        self.ensure_registered();
        self.shards[shard_index()].0.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Current value (sum over shards).
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("name", &self.name)
            .field("value", &self.value())
            .finish()
    }
}

/// A last-write-wins `f64` gauge with an atomic add (CAS loop — gauges
/// sit off the hot path, on events like pool entry/exit or refreshes).
pub struct Gauge {
    name: &'static str,
    registered: AtomicBool,
    bits: AtomicU64,
}

impl Gauge {
    /// Const constructor for `static` declarations (initial value 0.0).
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            registered: AtomicBool::new(false),
            bits: AtomicU64::new(0), // 0u64 == 0.0f64 bits
        }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    fn ensure_registered(&'static self) {
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::AcqRel)
        {
            register(MetricRef::Gauge(self));
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&'static self, v: f64) {
        self.ensure_registered();
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `dv` atomically (compare-and-swap loop).
    #[inline]
    pub fn add(&'static self, dv: f64) {
        self.ensure_registered();
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + dv).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge")
            .field("name", &self.name)
            .field("value", &self.value())
            .finish()
    }
}

/// Sub-bucket bits per power of two (4 sub-buckets → ≤25 % width).
const SUB_BITS: u32 = 2;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total buckets. `(63 - SUB_BITS + 1) * SUB + SUB = 252` covers every
/// `u64`; rounded up to a power of two.
pub const BUCKETS: usize = 256;

/// Bucket index of `v` (log-linear: exact below 4, then 4 sub-buckets
/// per power of two).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // v ∈ [2^exp, 2^(exp+1))
    let sub = ((v >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    ((exp - SUB_BITS) as usize + 1) * SUB + sub
}

/// Smallest value that lands in bucket `idx` (inverse of
/// [`bucket_index`]; the exclusive upper bound of a bucket is the next
/// bucket's lower bound). Indices past the last reachable bucket (251 —
/// `bucket_index(u64::MAX)`) saturate to `u64::MAX`, so "next bucket's
/// lower bound" is well-defined for every reachable index.
#[inline]
pub fn bucket_lower(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let exp = (idx / SUB - 1) as u32 + SUB_BITS;
    if exp >= 64 {
        return u64::MAX;
    }
    let sub = (idx % SUB) as u64;
    (1u64 << exp) + (sub << (exp - SUB_BITS))
}

#[repr(align(64))]
struct HistShard {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistShard {
    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A log-linear-bucket histogram of `u64` observations (sharded;
/// aggregated on scrape). The workspace convention is nanoseconds.
pub struct Histogram {
    name: &'static str,
    registered: AtomicBool,
    shards: [HistShard; SHARDS],
}

impl Histogram {
    /// Const constructor for `static` declarations.
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            registered: AtomicBool::new(false),
            shards: [const {
                HistShard {
                    counts: [const { AtomicU64::new(0) }; BUCKETS],
                    sum: AtomicU64::new(0),
                    min: AtomicU64::new(u64::MAX),
                    max: AtomicU64::new(0),
                }
            }; SHARDS],
        }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    fn ensure_registered(&'static self) {
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::AcqRel)
        {
            register(MetricRef::Histogram(self));
        }
    }

    /// Records one observation: four relaxed atomic RMWs, no locks, no
    /// allocation after the first call.
    #[inline]
    pub fn record(&'static self, v: u64) {
        self.ensure_registered();
        let s = &self.shards[shard_index()];
        s.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.min.fetch_min(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] as nanoseconds (saturating).
    #[inline]
    pub fn record_duration(&'static self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Aggregates all shards into a consistent-enough snapshot (relaxed
    /// reads; exact once recorders are quiescent).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for s in &self.shards {
            for (b, c) in buckets.iter_mut().zip(&s.counts) {
                *b += c.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(s.sum.load(Ordering::Relaxed));
            min = min.min(s.min.load(Ordering::Relaxed));
            max = max.max(s.max.load(Ordering::Relaxed));
        }
        let count: u64 = buckets.iter().sum();
        HistogramSnapshot {
            name: self.name,
            count,
            sum,
            min: if count > 0 { Some(min) } else { None },
            max: if count > 0 { Some(max) } else { None },
            buckets: buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (bucket_lower(i), c))
                .collect(),
        }
    }

    fn reset(&self) {
        for s in &self.shards {
            s.reset();
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("name", &self.name)
            .field("count", &s.count)
            .field("mean", &s.mean())
            .finish()
    }
}

/// Aggregated view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Total observations.
    pub count: u64,
    /// Sum of observations (wrapping on overflow).
    pub sum: u64,
    /// Smallest observation, if any.
    pub min: Option<u64>,
    /// Largest observation, if any.
    pub max: Option<u64>,
    /// `(bucket_lower_bound, count)` for every non-empty bucket, in
    /// ascending bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One registered metric's scraped state.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// A counter's name and value.
    Counter {
        /// Metric name.
        name: &'static str,
        /// Current sum over shards.
        value: u64,
    },
    /// A gauge's name and value.
    Gauge {
        /// Metric name.
        name: &'static str,
        /// Current value.
        value: f64,
    },
    /// A histogram's aggregated snapshot.
    Histogram(HistogramSnapshot),
}

impl MetricSnapshot {
    /// The metric's name.
    pub fn name(&self) -> &'static str {
        match self {
            MetricSnapshot::Counter { name, .. } | MetricSnapshot::Gauge { name, .. } => name,
            MetricSnapshot::Histogram(h) => h.name,
        }
    }
}

/// Scrapes every registered metric, sorted by name (deterministic
/// exposition order regardless of registration order).
pub fn snapshot() -> Vec<MetricSnapshot> {
    let reg = REGISTRY.lock().expect("metrics registry poisoned");
    let mut out: Vec<MetricSnapshot> = reg
        .iter()
        .map(|m| match m {
            MetricRef::Counter(c) => MetricSnapshot::Counter {
                name: c.name,
                value: c.value(),
            },
            MetricRef::Gauge(g) => MetricSnapshot::Gauge {
                name: g.name,
                value: g.value(),
            },
            MetricRef::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
        })
        .collect();
    out.sort_by_key(|m| m.name());
    out
}

/// Zeroes every registered metric (per-run isolation in harnesses that
/// train several methods in one process). Concurrent recorders see the
/// reset as a torn-but-monotone restart; call it between runs, not
/// during one.
pub fn reset() {
    let reg = REGISTRY.lock().expect("metrics registry poisoned");
    for m in reg.iter() {
        match m {
            MetricRef::Counter(c) => c.reset(),
            MetricRef::Gauge(g) => g.reset(),
            MetricRef::Histogram(h) => h.reset(),
        }
    }
}

/// Prometheus text exposition of every registered metric.
pub fn prometheus_text() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for m in snapshot() {
        match m {
            MetricSnapshot::Counter { name, value } => {
                let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
            }
            MetricSnapshot::Gauge { name, value } => {
                let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
            }
            MetricSnapshot::Histogram(h) => {
                let name = h.name;
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cum = 0u64;
                for &(lower, count) in &h.buckets {
                    cum += count;
                    // `le` is the bucket's inclusive upper bound: the
                    // next bucket's lower bound minus one.
                    let le = bucket_lower(bucket_index(lower) + 1).saturating_sub(1);
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
            }
        }
    }
    out
}

fn histogram_value(h: &HistogramSnapshot) -> Value {
    obj([
        ("type", Value::Str("metric".into())),
        ("kind", Value::Str("histogram".into())),
        ("name", Value::Str(h.name.into())),
        ("count", Value::Num(h.count as f64)),
        ("sum", Value::Num(h.sum as f64)),
        ("min", Value::Num(h.min.unwrap_or(0) as f64)),
        ("max", Value::Num(h.max.unwrap_or(0) as f64)),
        ("mean", Value::Num(h.mean())),
        (
            "buckets",
            Value::Arr(
                h.buckets
                    .iter()
                    .map(|&(lo, c)| Value::Arr(vec![Value::Num(lo as f64), Value::Num(c as f64)]))
                    .collect(),
            ),
        ),
    ])
}

/// JSON exposition: an array of `{"type":"metric",...}` objects (the
/// same objects the run-telemetry JSONL emits one per line).
pub fn json_snapshot() -> Value {
    Value::Arr(
        snapshot()
            .iter()
            .map(|m| match m {
                MetricSnapshot::Counter { name, value } => obj([
                    ("type", Value::Str("metric".into())),
                    ("kind", Value::Str("counter".into())),
                    ("name", Value::Str((*name).into())),
                    ("value", Value::Num(*value as f64)),
                ]),
                MetricSnapshot::Gauge { name, value } => obj([
                    ("type", Value::Str("metric".into())),
                    ("kind", Value::Str("gauge".into())),
                    ("name", Value::Str((*name).into())),
                    ("value", Value::Num(*value)),
                ]),
                MetricSnapshot::Histogram(h) => histogram_value(h),
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_inverts() {
        let mut probes: Vec<u64> = Vec::new();
        for exp in 0..63u32 {
            for off in [0u64, 1, 2, 3] {
                probes.push((1u64 << exp).saturating_add(off << exp.saturating_sub(3)));
            }
        }
        probes.sort_unstable();
        let mut prev = 0usize;
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx >= prev, "bucket order broke at {v}");
            prev = idx;
            assert!(bucket_lower(idx) <= v, "lower({idx}) > {v}");
            if idx + 1 < BUCKETS {
                assert!(v < bucket_lower(idx + 1), "{v} past bucket {idx}");
            }
        }
        for v in 0..64u64 {
            let idx = bucket_index(v);
            assert_eq!(bucket_index(bucket_lower(idx)), idx);
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn counter_and_gauge_basics() {
        static C: Counter = Counter::new("test_counter_basics");
        static G: Gauge = Gauge::new("test_gauge_basics");
        C.inc();
        C.add(41);
        assert_eq!(C.value(), 42);
        G.set(1.5);
        G.add(-0.5);
        assert_eq!(G.value(), 1.0);
        let snap = snapshot();
        assert!(snap.iter().any(|m| m.name() == "test_counter_basics"));
        assert!(snap.iter().any(|m| m.name() == "test_gauge_basics"));
    }

    #[test]
    fn histogram_snapshot_aggregates() {
        static H: Histogram = Histogram::new("test_hist_agg");
        for v in [0u64, 1, 3, 4, 5, 100, 1_000_000] {
            H.record(v);
        }
        let s = H.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1_000_113);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(1_000_000));
        assert!((s.mean() - 1_000_113.0 / 7.0).abs() < 1e-9);
        let total: u64 = s.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 7);
        // Buckets sorted by lower bound.
        assert!(s.buckets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn prometheus_text_renders_all_kinds() {
        static C: Counter = Counter::new("test_prom_counter");
        static H: Histogram = Histogram::new("test_prom_hist");
        C.add(3);
        H.record(7);
        let text = prometheus_text();
        assert!(text.contains("# TYPE test_prom_counter counter"));
        assert!(text.contains("test_prom_hist_count 1"));
        assert!(text.contains("test_prom_hist_bucket{le=\"+Inf\"} 1"));
    }
}
