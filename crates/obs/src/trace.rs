//! Span-based tracer with an env-gated runtime switch.
//!
//! # Levels
//!
//! `SGM_TRACE` selects one of three levels, cached in a process-global
//! atomic after the first read:
//!
//! * `off` (default) — every [`span`] call is a single relaxed atomic
//!   load returning an inert guard; no clock reads, no locks, no
//!   allocation. This is what the `obs_overhead` bench pins within
//!   noise of the uninstrumented baseline.
//! * `stages` — coarse spans only: engine stages, sampler refresh /
//!   rebuild, graph builds.
//! * `full` — adds sampler internals, per-task pool worker spans, and
//!   everything else tagged [`TraceLevel::Full`].
//!
//! # Parenting
//!
//! Finished spans go to a process-global collector and carry a parent
//! span id. Parenting is implicit within a thread (a thread-local
//! "current span" cell maintained by the [`Span`] guard) and explicit
//! across threads: capture [`current_context`] on the requesting side,
//! ship it through your channel, and open the remote span with
//! [`span_with_parent`]. The Chrome export draws flow arrows for
//! cross-thread edges so rebuild work lines up under the refresh that
//! requested it.
//!
//! Timestamps are nanoseconds from a process-global epoch
//! ([`Instant`]-based, so they are monotonic but not wall-clock), and
//! thread ids are the same dense ordinals the metrics shards use.

use crate::metrics::thread_ordinal;
use sgm_json::{obj, Value};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Verbosity at which a span becomes active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceLevel {
    /// Tracing disabled.
    Off = 0,
    /// Coarse spans: engine stages, sampler refresh/rebuild.
    Stages = 1,
    /// Everything, including per-task pool worker spans.
    Full = 2,
}

impl TraceLevel {
    fn from_env(s: &str) -> TraceLevel {
        match s.trim().to_ascii_lowercase().as_str() {
            "stages" | "1" => TraceLevel::Stages,
            "full" | "2" => TraceLevel::Full,
            _ => TraceLevel::Off,
        }
    }
}

const LEVEL_UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// The active trace level (reads `SGM_TRACE` once, then one relaxed
/// atomic load per call).
#[inline]
pub fn level() -> TraceLevel {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != LEVEL_UNSET {
        // Values only ever come from `TraceLevel as u8` stores.
        return match v {
            1 => TraceLevel::Stages,
            2 => TraceLevel::Full,
            _ => TraceLevel::Off,
        };
    }
    init_level()
}

#[cold]
fn init_level() -> TraceLevel {
    let lv = std::env::var("SGM_TRACE")
        .map(|s| TraceLevel::from_env(&s))
        .unwrap_or(TraceLevel::Off);
    LEVEL.store(lv as u8, Ordering::Relaxed);
    lv
}

/// Overrides the trace level at runtime (tests, harnesses that trace
/// one run out of several).
pub fn set_level(lv: TraceLevel) {
    LEVEL.store(lv as u8, Ordering::Relaxed);
}

/// Whether a span tagged `lv` would currently record.
#[inline]
pub fn enabled(lv: TraceLevel) -> bool {
    lv != TraceLevel::Off && level() >= lv
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost active span id on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// A finished span, as stored in the collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (static so recording never allocates).
    pub name: &'static str,
    /// Category (crate/subsystem: `"engine"`, `"sampler"`, `"graph"`, `"par"`).
    pub cat: &'static str,
    /// Dense thread ordinal the span ran on.
    pub tid: u64,
    /// Unique span id (process-global, never 0).
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

static COLLECTOR: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

/// A handle to a (possibly remote) span, safe to send across threads
/// and cheap to copy. [`SpanContext::none`] parents to the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    id: u64,
}

impl SpanContext {
    /// A context with no span (children become roots).
    pub const fn none() -> SpanContext {
        SpanContext { id: 0 }
    }

    /// Whether this context refers to an actual span.
    pub fn is_some(&self) -> bool {
        self.id != 0
    }
}

/// The innermost active span on this thread, for shipping to another
/// thread as an explicit parent.
pub fn current_context() -> SpanContext {
    SpanContext {
        id: CURRENT.with(|c| c.get()),
    }
}

/// RAII guard: records a [`TraceEvent`] on drop (or nothing, when the
/// span's level is not enabled).
pub struct Span {
    /// `None` when disabled — the entire guard is inert.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    name: &'static str,
    cat: &'static str,
    id: u64,
    parent: u64,
    prev_current: u64,
    start_ns: u64,
}

impl Span {
    /// Context of this span for explicit cross-thread parenting
    /// ([`SpanContext::none`] when the span is disabled).
    pub fn context(&self) -> SpanContext {
        SpanContext {
            id: self.live.as_ref().map_or(0, |l| l.id),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(l) = self.live.take() {
            let dur_ns = now_ns().saturating_sub(l.start_ns);
            CURRENT.with(|c| c.set(l.prev_current));
            let ev = TraceEvent {
                name: l.name,
                cat: l.cat,
                tid: thread_ordinal() as u64,
                id: l.id,
                parent: l.parent,
                start_ns: l.start_ns,
                dur_ns,
            };
            if let Ok(mut col) = COLLECTOR.lock() {
                col.push(ev);
            }
        }
    }
}

fn open(lv: TraceLevel, cat: &'static str, name: &'static str, parent: u64) -> Span {
    if !enabled(lv) {
        return Span { live: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let prev_current = CURRENT.with(|c| c.replace(id));
    Span {
        live: Some(LiveSpan {
            name,
            cat,
            id,
            parent,
            prev_current,
            start_ns: now_ns(),
        }),
    }
}

/// Opens a span parented to this thread's innermost active span.
#[inline]
pub fn span(lv: TraceLevel, cat: &'static str, name: &'static str) -> Span {
    if !enabled(lv) {
        return Span { live: None };
    }
    let parent = CURRENT.with(|c| c.get());
    open(lv, cat, name, parent)
}

/// Opens a span with an explicit parent (cross-thread parenting: the
/// requesting side captures [`current_context`], ships it over a
/// channel, the worker opens its span with it).
#[inline]
pub fn span_with_parent(
    lv: TraceLevel,
    cat: &'static str,
    name: &'static str,
    parent: SpanContext,
) -> Span {
    if !enabled(lv) {
        return Span { live: None };
    }
    open(lv, cat, name, parent.id)
}

/// Copies all collected spans (collection keeps accumulating).
pub fn snapshot() -> Vec<TraceEvent> {
    COLLECTOR.lock().expect("trace collector poisoned").clone()
}

/// Takes all collected spans, leaving the collector empty (per-run
/// isolation in multi-run processes).
pub fn drain() -> Vec<TraceEvent> {
    std::mem::take(&mut *COLLECTOR.lock().expect("trace collector poisoned"))
}

/// JSON object for one span, shared by the JSONL run log and tests.
pub fn span_value(ev: &TraceEvent) -> Value {
    obj([
        ("type", Value::Str("span".into())),
        ("name", Value::Str(ev.name.into())),
        ("cat", Value::Str(ev.cat.into())),
        ("tid", Value::Num(ev.tid as f64)),
        ("id", Value::Num(ev.id as f64)),
        ("parent", Value::Num(ev.parent as f64)),
        ("start_ns", Value::Num(ev.start_ns as f64)),
        ("dur_ns", Value::Num(ev.dur_ns as f64)),
    ])
}

/// Renders spans as a Chrome `trace_event` JSON document (load in
/// `chrome://tracing` or Perfetto). Spans become `"X"` complete
/// events; cross-thread parent edges become `"s"`/`"f"` flow pairs.
pub fn chrome_trace_json(events: &[TraceEvent]) -> Value {
    let mut out: Vec<Value> = Vec::with_capacity(events.len());
    // tid of every span id, to detect cross-thread parent edges.
    let mut tid_of: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut start_of: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for ev in events {
        tid_of.insert(ev.id, ev.tid);
        start_of.insert(ev.id, ev.start_ns);
    }
    for ev in events {
        let ts_us = ev.start_ns as f64 / 1_000.0;
        out.push(obj([
            ("name", Value::Str(ev.name.into())),
            ("cat", Value::Str(ev.cat.into())),
            ("ph", Value::Str("X".into())),
            ("pid", Value::Num(1.0)),
            ("tid", Value::Num(ev.tid as f64)),
            ("ts", Value::Num(ts_us)),
            ("dur", Value::Num(ev.dur_ns as f64 / 1_000.0)),
        ]));
        if ev.parent != 0 {
            if let Some(&ptid) = tid_of.get(&ev.parent) {
                if ptid != ev.tid {
                    // Flow arrow from the parent's timeline to ours.
                    let pstart = start_of.get(&ev.parent).copied().unwrap_or(ev.start_ns);
                    out.push(obj([
                        ("name", Value::Str("parent".into())),
                        ("cat", Value::Str("flow".into())),
                        ("ph", Value::Str("s".into())),
                        ("pid", Value::Num(1.0)),
                        ("tid", Value::Num(ptid as f64)),
                        ("ts", Value::Num(pstart as f64 / 1_000.0)),
                        ("id", Value::Num(ev.id as f64)),
                    ]));
                    out.push(obj([
                        ("name", Value::Str("parent".into())),
                        ("cat", Value::Str("flow".into())),
                        ("ph", Value::Str("f".into())),
                        ("bp", Value::Str("e".into())),
                        ("pid", Value::Num(1.0)),
                        ("tid", Value::Num(ev.tid as f64)),
                        ("ts", Value::Num(ts_us)),
                        ("id", Value::Num(ev.id as f64)),
                    ]));
                }
            }
        }
    }
    obj([("traceEvents", Value::Arr(out))])
}

/// Writes [`chrome_trace_json`] of `events` to `path`.
pub fn write_chrome_trace(path: &str, events: &[TraceEvent]) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json(events).to_string_compact())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_parent_implicitly() {
        set_level(TraceLevel::Full);
        drain();
        {
            let outer = span(TraceLevel::Stages, "test", "outer");
            assert!(outer.context().is_some());
            {
                let _inner = span(TraceLevel::Full, "test", "inner");
            }
        }
        let evs = drain();
        set_level(TraceLevel::Off);
        assert_eq!(evs.len(), 2);
        // Inner finishes (and is pushed) first.
        let inner = evs.iter().find(|e| e.name == "inner").unwrap();
        let outer = evs.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
    }

    #[test]
    fn off_level_records_nothing() {
        set_level(TraceLevel::Off);
        drain();
        {
            let s = span(TraceLevel::Stages, "test", "ghost");
            assert!(!s.context().is_some());
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn explicit_parenting_carries_across() {
        set_level(TraceLevel::Stages);
        drain();
        let ctx;
        {
            let req = span(TraceLevel::Stages, "test", "request");
            ctx = req.context();
        }
        {
            let _worker = span_with_parent(TraceLevel::Stages, "test", "worker", ctx);
        }
        let evs = drain();
        set_level(TraceLevel::Off);
        let req = evs.iter().find(|e| e.name == "request").unwrap();
        let worker = evs.iter().find(|e| e.name == "worker").unwrap();
        assert_eq!(worker.parent, req.id);
    }

    #[test]
    fn chrome_export_is_valid_json() {
        set_level(TraceLevel::Stages);
        drain();
        {
            let _s = span(TraceLevel::Stages, "test", "chrome");
        }
        let evs = drain();
        set_level(TraceLevel::Off);
        let doc = chrome_trace_json(&evs);
        let text = doc.to_string_compact();
        let back = Value::parse(&text).expect("chrome trace parses");
        assert!(back.get("traceEvents").is_some());
    }
}
