//! Per-run metric namespacing: instantiable, label-scoped metric sets.
//!
//! The [`metrics`](crate::metrics) registry is built from `static`s with
//! `&'static str` names — perfect for process-wide instrumentation, but
//! a job server multiplexing many concurrent runs needs a metric set
//! *per run*, created and dropped at run granularity, exported under
//! the run's identity. A [`MetricScope`] is exactly that: an owned
//! registry whose metrics carry owned names and whose exposition
//! attaches a fixed label set (e.g. `{run="42",tenant="a"}`) to every
//! sample, so scraping N concurrent runs yields N disjoint label
//! spaces under shared metric names — standard Prometheus namespacing.
//!
//! Scoped metrics are handles over `Arc`ed atomics: cloning is cheap,
//! recording is a relaxed atomic op, and the scope can render a
//! consistent-enough snapshot while recorders are live (same contract
//! as the static registry). Histograms reuse the registry's log-linear
//! bucket layout ([`bucket_index`] / [`bucket_lower`]), so scoped and
//! static histograms quantize identically.

use crate::metrics::{bucket_index, bucket_lower, BUCKETS};
use sgm_json::{obj, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A counter handle scoped to one [`MetricScope`].
#[derive(Debug, Clone)]
pub struct ScopedCounter(Arc<AtomicU64>);

impl ScopedCounter {
    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle scoped to one [`MetricScope`] (last-write-wins `f64`).
#[derive(Debug, Clone)]
pub struct ScopedGauge(Arc<AtomicU64>);

impl ScopedGauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistState {
    counts: Box<[AtomicU64; BUCKETS]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A histogram handle scoped to one [`MetricScope`] (log-linear `u64`
/// buckets; the workspace convention is nanoseconds).
#[derive(Debug, Clone)]
pub struct ScopedHistogram(Arc<HistState>);

impl ScopedHistogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let s = &self.0;
        s.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.min.fetch_min(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] as nanoseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }
}

enum Entry {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistState>),
}

/// An instantiable metric registry with a fixed label set — one per
/// run/tenant/job, created and dropped at run granularity. See the
/// module docs.
pub struct MetricScope {
    labels: Vec<(String, String)>,
    entries: Mutex<Vec<(String, Entry)>>,
}

impl std::fmt::Debug for MetricScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricScope")
            .field("labels", &self.labels)
            .finish_non_exhaustive()
    }
}

impl MetricScope {
    /// A scope whose exposition attaches `labels` to every sample.
    pub fn new(labels: impl IntoIterator<Item = (String, String)>) -> Self {
        MetricScope {
            labels: labels.into_iter().collect(),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// The scope's label set.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// Gets or creates the counter `name` in this scope.
    ///
    /// # Panics
    /// Panics if `name` already names a metric of a different kind.
    pub fn counter(&self, name: &str) -> ScopedCounter {
        let mut entries = self.entries.lock().expect("scope poisoned");
        if let Some((_, e)) = entries.iter().find(|(n, _)| n == name) {
            match e {
                Entry::Counter(a) => return ScopedCounter(Arc::clone(a)),
                _ => panic!("metric {name:?} already exists with a different kind"),
            }
        }
        let a = Arc::new(AtomicU64::new(0));
        entries.push((name.to_string(), Entry::Counter(Arc::clone(&a))));
        ScopedCounter(a)
    }

    /// Gets or creates the gauge `name` in this scope.
    ///
    /// # Panics
    /// Panics if `name` already names a metric of a different kind.
    pub fn gauge(&self, name: &str) -> ScopedGauge {
        let mut entries = self.entries.lock().expect("scope poisoned");
        if let Some((_, e)) = entries.iter().find(|(n, _)| n == name) {
            match e {
                Entry::Gauge(a) => return ScopedGauge(Arc::clone(a)),
                _ => panic!("metric {name:?} already exists with a different kind"),
            }
        }
        let a = Arc::new(AtomicU64::new(0));
        entries.push((name.to_string(), Entry::Gauge(Arc::clone(&a))));
        ScopedGauge(a)
    }

    /// Gets or creates the histogram `name` in this scope.
    ///
    /// # Panics
    /// Panics if `name` already names a metric of a different kind.
    pub fn histogram(&self, name: &str) -> ScopedHistogram {
        let mut entries = self.entries.lock().expect("scope poisoned");
        if let Some((_, e)) = entries.iter().find(|(n, _)| n == name) {
            match e {
                Entry::Histogram(a) => return ScopedHistogram(Arc::clone(a)),
                _ => panic!("metric {name:?} already exists with a different kind"),
            }
        }
        let a = Arc::new(HistState {
            counts: Box::new([const { AtomicU64::new(0) }; BUCKETS]),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        });
        entries.push((name.to_string(), Entry::Histogram(Arc::clone(&a))));
        ScopedHistogram(a)
    }

    fn label_suffix(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let body: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Prometheus text exposition of this scope's metrics, each sample
    /// carrying the scope's labels. Metrics are rendered sorted by name
    /// (deterministic, like the static registry).
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write;
        let ls = self.label_suffix();
        let entries = self.entries.lock().expect("scope poisoned");
        let mut sorted: Vec<&(String, Entry)> = entries.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        for (name, e) in sorted {
            match e {
                Entry::Counter(a) => {
                    let _ = writeln!(out, "{name}{ls} {}", a.load(Ordering::Relaxed));
                }
                Entry::Gauge(a) => {
                    let _ = writeln!(
                        out,
                        "{name}{ls} {}",
                        f64::from_bits(a.load(Ordering::Relaxed))
                    );
                }
                Entry::Histogram(h) => {
                    let mut cum = 0u64;
                    let mut total = 0u64;
                    for (i, c) in h.counts.iter().enumerate() {
                        let c = c.load(Ordering::Relaxed);
                        total += c;
                        if c == 0 {
                            continue;
                        }
                        cum += c;
                        let le = bucket_lower(i + 1).saturating_sub(1);
                        let lelabel = histogram_labels(&self.labels, le);
                        let _ = writeln!(out, "{name}_bucket{lelabel} {cum}");
                    }
                    let inf = histogram_labels_inf(&self.labels);
                    let _ = writeln!(out, "{name}_bucket{inf} {total}");
                    let _ = writeln!(out, "{name}_sum{ls} {}", h.sum.load(Ordering::Relaxed));
                    let _ = writeln!(out, "{name}_count{ls} {total}");
                }
            }
        }
        out
    }

    /// JSON exposition: `{"labels": {...}, "metrics": [...]}` with the
    /// same per-metric objects the static registry's JSONL emits.
    pub fn json_value(&self) -> Value {
        let labels = Value::Obj(
            self.labels
                .iter()
                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                .collect(),
        );
        let entries = self.entries.lock().expect("scope poisoned");
        let mut sorted: Vec<&(String, Entry)> = entries.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        let metrics = sorted
            .iter()
            .map(|(name, e)| match e {
                Entry::Counter(a) => obj([
                    ("kind", Value::Str("counter".into())),
                    ("name", Value::Str(name.clone())),
                    ("value", Value::Num(a.load(Ordering::Relaxed) as f64)),
                ]),
                Entry::Gauge(a) => obj([
                    ("kind", Value::Str("gauge".into())),
                    ("name", Value::Str(name.clone())),
                    (
                        "value",
                        Value::Num(f64::from_bits(a.load(Ordering::Relaxed))),
                    ),
                ]),
                Entry::Histogram(h) => {
                    let count: u64 = h.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
                    let sum = h.sum.load(Ordering::Relaxed);
                    obj([
                        ("kind", Value::Str("histogram".into())),
                        ("name", Value::Str(name.clone())),
                        ("count", Value::Num(count as f64)),
                        ("sum", Value::Num(sum as f64)),
                        (
                            "mean",
                            Value::Num(if count == 0 {
                                0.0
                            } else {
                                sum as f64 / count as f64
                            }),
                        ),
                    ])
                }
            })
            .collect();
        obj([("labels", labels), ("metrics", Value::Arr(metrics))])
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn histogram_labels(labels: &[(String, String)], le: u64) -> String {
    let mut body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    body.push(format!("le=\"{le}\""));
    format!("{{{}}}", body.join(","))
}

fn histogram_labels_inf(labels: &[(String, String)]) -> String {
    let mut body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    body.push("le=\"+Inf\"".to_string());
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope() -> MetricScope {
        MetricScope::new([
            ("run".to_string(), "7".to_string()),
            ("tenant".to_string(), "alice".to_string()),
        ])
    }

    #[test]
    fn scoped_counter_gauge_histogram_basics() {
        let s = scope();
        let c = s.counter("jobs_total");
        c.inc();
        c.add(2);
        assert_eq!(c.value(), 3);
        // Same name → same underlying atomic.
        assert_eq!(s.counter("jobs_total").value(), 3);
        let g = s.gauge("loss");
        g.set(0.25);
        assert_eq!(g.value(), 0.25);
        let h = s.histogram("slice_ns");
        h.record(100);
        h.record(300);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 400);
        assert_eq!(h.mean(), 200.0);
    }

    #[test]
    fn prometheus_text_carries_labels() {
        let s = scope();
        s.counter("jobs_total").add(5);
        s.gauge("loss").set(1.5);
        s.histogram("slice_ns").record(7);
        let text = s.prometheus_text();
        assert!(
            text.contains("jobs_total{run=\"7\",tenant=\"alice\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("loss{run=\"7\",tenant=\"alice\"} 1.5"),
            "{text}"
        );
        assert!(
            text.contains("slice_ns_bucket{run=\"7\",tenant=\"alice\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("slice_ns_count{run=\"7\",tenant=\"alice\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn two_scopes_are_disjoint() {
        let a = MetricScope::new([("run".to_string(), "1".to_string())]);
        let b = MetricScope::new([("run".to_string(), "2".to_string())]);
        a.counter("x").add(10);
        b.counter("x").add(20);
        assert_eq!(a.counter("x").value(), 10);
        assert_eq!(b.counter("x").value(), 20);
    }

    #[test]
    fn label_values_are_escaped() {
        let s = MetricScope::new([("t".to_string(), "a\"b\\c".to_string())]);
        s.counter("n").inc();
        let text = s.prometheus_text();
        assert!(text.contains("n{t=\"a\\\"b\\\\c\"} 1"), "{text}");
    }

    #[test]
    fn json_value_renders_all_kinds() {
        let s = scope();
        s.counter("c").add(1);
        s.gauge("g").set(2.0);
        s.histogram("h").record(3);
        let v = s.json_value();
        assert_eq!(v.get("labels").unwrap().req_str("run").unwrap(), "7");
        let metrics = v.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(metrics.len(), 3);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let s = scope();
        s.counter("m");
        s.gauge("m");
    }
}
