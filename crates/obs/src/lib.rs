//! `sgm-obs` — zero-overhead observability for the SGM-PINN stack.
//!
//! Four pieces, all std-only and allocation-free on the hot path:
//!
//! * [`metrics`] — a lock-free registry of counters, gauges and
//!   log-linear-bucket histograms. Metrics are `const`-constructible
//!   statics with per-thread shards aggregated only at scrape time,
//!   so recording is a few relaxed atomics and never allocates after
//!   first registration — the training engine's zero-allocation
//!   steady-state contract survives with instrumentation enabled.
//! * [`trace`] — a span tracer gated by `SGM_TRACE={off,stages,full}`.
//!   `off` (the default) costs one relaxed atomic load per span site.
//!   Spans parent implicitly within a thread and explicitly across
//!   threads via [`trace::SpanContext`], and export both as JSONL and
//!   as a Chrome `trace_event` document.
//! * [`runlog`] — per-run JSONL telemetry (meta + metrics + records +
//!   spans), written strictly after training, honoring `SGM_RUN_LOG`
//!   and `SGM_CHROME_TRACE`.
//! * [`scope`] — instantiable, label-scoped metric sets for services
//!   multiplexing many concurrent runs in one process (the job
//!   server's per-run namespacing), exported alongside the static
//!   registry with standard Prometheus labels.
//!
//! Observability never feeds back into computation: enabling any of
//! it leaves numerics bit-identical (the determinism contracts of the
//! parallel and SIMD layers are unaffected).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod runlog;
pub mod scope;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram};
pub use runlog::{RunLog, RunRecord};
pub use scope::{MetricScope, ScopedCounter, ScopedGauge, ScopedHistogram};
pub use trace::{span, span_with_parent, Span, SpanContext, TraceLevel};
