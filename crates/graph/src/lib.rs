//! # sgm-graph
//!
//! Graph machinery for the SGM-PINN probabilistic graphical model (PGM):
//!
//! * [`points`] — flat, cache-friendly point clouds (`N × M` features).
//! * [`knn`] — k-nearest-neighbour graph builders: exact brute force, a
//!   uniform-grid accelerator for low-dimensional clouds, and a from-scratch
//!   **HNSW** (hierarchical navigable small world, Malkov & Yashunin) index —
//!   the algorithm the paper uses for S1 (`O(N log N)` construction).
//! * [`graph`] — undirected weighted graphs in edge + CSR adjacency form,
//!   union–find, BFS/components.
//! * [`laplacian`] — graph Laplacians (combinatorial and normalised) as
//!   sparse matrices.
//! * [`resistance`] — effective-resistance computation: exact dense
//!   pseudo-inverse (test oracle), per-edge CG solves (accurate), and the
//!   scalable **smoothed-random-projection estimator** (HyperEF style) used
//!   in production — linear time in the edge count.
//! * [`partition`] — grid-partitioned multi-threaded S1+S2 (paper §3.3's
//!   "speedup roughly linear with the number of available threads").
//! * [`lrd`] — the **low-resistance-diameter decomposition** (S2): partitions
//!   the PGM into clusters whose internal effective-resistance diameter is
//!   bounded, by level-wise contraction of low-ER edges (Alev et al.,
//!   ITCS'18).
//! * [`metrics`] — conductance, cut size, cluster ER-diameter checks.
//! * [`sparsify`] — Spielman–Srivastava spectral sparsification by
//!   effective-resistance sampling (thins dense PGMs before LRD).
//!
//! # Example: cluster a small cloud
//!
//! ```
//! use sgm_graph::points::PointCloud;
//! use sgm_graph::knn::{build_knn_graph, KnnConfig, KnnStrategy};
//! use sgm_graph::lrd::{decompose, LrdConfig};
//!
//! // Two well-separated blobs.
//! let mut pts = Vec::new();
//! for i in 0..20 {
//!     let t = i as f64 * 0.01;
//!     pts.extend_from_slice(&[t, t]);
//!     pts.extend_from_slice(&[10.0 + t, 10.0 - t]);
//! }
//! let cloud = PointCloud::from_flat(2, pts);
//! let g = build_knn_graph(
//!     &cloud,
//!     &KnnConfig { k: 4, strategy: KnnStrategy::Brute, ..KnnConfig::default() },
//! );
//! let clustering = decompose(&g, &LrdConfig::default());
//! assert!(clustering.num_clusters() >= 2);
//! ```

pub mod graph;
pub mod incremental;
pub mod knn;
pub mod laplacian;
pub mod lrd;
pub mod metrics;
pub mod partition;
pub mod points;
pub mod refresh;
pub mod resistance;
pub mod sparsify;

pub use graph::Graph;
pub use incremental::{IncrementalKnn, IncrementalKnnConfig, KnnDelta};
pub use lrd::Clustering;
pub use points::PointCloud;
pub use refresh::{GraphRefresher, RefreshConfig, RefreshOptions, RefreshStats};
