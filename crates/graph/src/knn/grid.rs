//! Reusable uniform-grid spatial index with flat CSR buckets.
//!
//! The original [`super::grid_knn`] rebuilds `Vec<Vec<u32>>` buckets and
//! allocates per-ring scratch on every call. This index is the
//! allocation-light replacement used by the incremental kNN engine
//! ([`crate::incremental`]): cells are stored as one CSR pair
//! (`offsets` + `items`), queries reuse a caller-held [`GridScratch`],
//! and the same `knn_into` routine serves both full builds and delta
//! re-queries — which is what makes the delta path **bit-exact** against
//! a from-scratch rebuild (identical candidate scoring, identical tie
//! handling; the grid geometry only affects which cells are *visited*,
//! never the result of an exact query).
//!
//! ## Tie handling
//!
//! Neighbour lists are the `k` smallest candidates ordered by ascending
//! `(dist², index)`. The bounded-insertion loop compares full
//! `(dist², index)` tuples, so the result is independent of candidate
//! arrival order (grid buckets visit candidates in cell order, not index
//! order). The ring-termination test is **strict** (`kth < ring·w_min`):
//! on an exact boundary tie one extra ring is scanned, so a farther-ring
//! point at exactly the k-th distance with a smaller index is never
//! missed — adversarial lattice clouds with massive distance ties stay
//! exact.

use crate::points::Coords;

/// Caller-held scratch for [`GridIndex`] queries; reuse across calls to
/// keep the steady-state query loop allocation-free.
#[derive(Debug, Default)]
pub struct GridScratch {
    cand: Vec<u32>,
    gather64: Vec<f64>,
    gather32: Vec<f32>,
    d2: Vec<f64>,
}

/// Uniform bucket grid over the bounding box of a [`Coords`] store,
/// with flat CSR cell storage. Supports spatial dimensions 1–4 (the
/// projections PINN clouds build their PGM on).
#[derive(Debug)]
pub struct GridIndex {
    dim: usize,
    per_axis: usize,
    mins: Vec<f64>,
    widths: Vec<f64>,
    min_width: f64,
    /// CSR cell starts (`num_cells + 1`).
    offsets: Vec<u32>,
    /// Point ids grouped by cell, ascending within each cell.
    items: Vec<u32>,
}

impl GridIndex {
    /// Builds the index over every point of `coords` (two counting
    /// passes, no per-cell allocation). Reuses the ~2-points-per-cell
    /// sizing of [`super::grid_knn`].
    ///
    /// # Panics
    /// Panics if `coords` is empty or `dim > 4`.
    pub fn build(coords: &Coords) -> Self {
        let (n, dim) = (coords.len(), coords.dim());
        assert!(n > 0, "empty coords");
        assert!((1..=4).contains(&dim), "GridIndex supports dim 1..=4");
        let (mins, maxs) = coords.bounds();
        let cells_target = (n as f64 / 2.0).max(1.0);
        let per_axis = cells_target.powf(1.0 / dim as f64).ceil().max(1.0) as usize;
        let mut widths = vec![0.0; dim];
        for d in 0..dim {
            let span = (maxs[d] - mins[d]).max(1e-12);
            widths[d] = span / per_axis as f64;
        }
        let min_width = widths.iter().cloned().fold(f64::MAX, f64::min);
        let num_cells = per_axis.pow(dim as u32);
        let mut idx = GridIndex {
            dim,
            per_axis,
            mins,
            widths,
            min_width,
            offsets: vec![0; num_cells + 1],
            items: vec![0; n],
        };
        // Counting pass → prefix sums → fill pass. Filling in ascending
        // point order keeps each cell's items ascending (determinism).
        for i in 0..n {
            let c = idx.cell_of(coords, i);
            idx.offsets[c + 1] += 1;
        }
        for c in 0..num_cells {
            idx.offsets[c + 1] += idx.offsets[c];
        }
        let mut cursor: Vec<u32> = idx.offsets[..num_cells].to_vec();
        for i in 0..n {
            let c = idx.cell_of(coords, i);
            idx.items[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        idx
    }

    /// Linear cell id of stored point `i`.
    #[inline]
    fn cell_of(&self, coords: &Coords, i: usize) -> usize {
        let mut idx = 0usize;
        for d in 0..self.dim {
            let c = (((coords.get(i, d) - self.mins[d]) / self.widths[d]) as usize)
                .min(self.per_axis - 1);
            idx = idx * self.per_axis + c;
        }
        idx
    }

    /// Per-axis cell coordinates of stored point `i`.
    #[inline]
    fn cell_coords(&self, coords: &Coords, i: usize) -> [isize; 4] {
        let mut home = [0isize; 4];
        for (d, h) in home.iter_mut().enumerate().take(self.dim) {
            *h = (((coords.get(i, d) - self.mins[d]) / self.widths[d]) as usize)
                .min(self.per_axis - 1) as isize;
        }
        home
    }

    /// Calls `f` with the CSR item range of every in-bounds cell at
    /// Chebyshev ring exactly `ring` around `home`. Fixed-size odometer
    /// over the `[-ring, ring]^dim` offset cube — no allocation.
    fn for_each_ring_cell(&self, home: &[isize; 4], ring: isize, f: &mut impl FnMut(&[u32])) {
        let dim = self.dim;
        let mut off = [-ring; 4];
        loop {
            let cheb = off[..dim].iter().map(|o| o.abs()).max().unwrap_or(0);
            if cheb == ring {
                let mut linear = 0usize;
                let mut ok = true;
                for d in 0..dim {
                    let c = home[d] + off[d];
                    if c < 0 || c >= self.per_axis as isize {
                        ok = false;
                        break;
                    }
                    linear = linear * self.per_axis + c as usize;
                }
                if ok {
                    let (lo, hi) = (
                        self.offsets[linear] as usize,
                        self.offsets[linear + 1] as usize,
                    );
                    if lo < hi {
                        f(&self.items[lo..hi]);
                    }
                }
            }
            // Advance the odometer (last axis fastest).
            let mut d = dim;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                if off[d] < ring {
                    off[d] += 1;
                    off[d + 1..dim].fill(-ring);
                    break;
                }
            }
        }
    }

    /// Exact k-nearest neighbours of stored point `q` (self excluded),
    /// appended to `out_idx`/`out_d2` ascending by `(dist², index)`.
    /// Returns the number of neighbours found (`min(k, n-1)`).
    pub fn knn_into(
        &self,
        coords: &Coords,
        q: usize,
        k: usize,
        scratch: &mut GridScratch,
        out_idx: &mut Vec<u32>,
        out_d2: &mut Vec<f64>,
    ) -> usize {
        out_idx.clear();
        out_d2.clear();
        if k == 0 {
            return 0;
        }
        let home = self.cell_coords(coords, q);
        let mut ring = 0isize;
        loop {
            // Gather this ring's candidates, then score them in one
            // batched kernel call.
            scratch.cand.clear();
            self.for_each_ring_cell(&home, ring, &mut |items| {
                for &j in items {
                    if j as usize != q {
                        scratch.cand.push(j);
                    }
                }
            });
            if !scratch.cand.is_empty() {
                coords.score_candidates(
                    q,
                    &scratch.cand,
                    &mut scratch.gather64,
                    &mut scratch.gather32,
                    &mut scratch.d2,
                );
                for (c, &j) in scratch.cand.iter().enumerate() {
                    let d = scratch.d2[c];
                    if out_idx.len() == k {
                        let (ld, lj) = (out_d2[k - 1], out_idx[k - 1]);
                        // Lexicographic (dist², index) comparison keeps
                        // the result arrival-order independent.
                        if d > ld || (d == ld && j > lj) {
                            continue;
                        }
                        out_idx.pop();
                        out_d2.pop();
                    }
                    let pos = out_d2
                        .iter()
                        .zip(out_idx.iter())
                        .position(|(&dd, &jj)| dd > d || (dd == d && jj > j))
                        .unwrap_or(out_idx.len());
                    out_idx.insert(pos, j);
                    out_d2.insert(pos, d);
                }
            }
            // Strict termination: a point in ring r' > ring is at least
            // (r' - 1)·w_min away, so once the k-th distance is strictly
            // below ring·w_min nothing farther can displace or tie it.
            if out_idx.len() == k {
                let safe = ring as f64 * self.min_width;
                if out_d2[k - 1] < safe * safe {
                    break;
                }
            }
            if ring > self.per_axis as isize {
                break; // entire grid scanned
            }
            ring += 1;
        }
        out_idx.len()
    }

    /// Calls `f(j, dist²)` for every stored point `j ≠ center` within
    /// squared distance `r2` of stored point `center` (inclusive
    /// boundary — callers use this for conservative dirty capture).
    pub fn for_each_within(
        &self,
        coords: &Coords,
        center: usize,
        r2: f64,
        scratch: &mut GridScratch,
        mut f: impl FnMut(u32, f64),
    ) {
        let home = self.cell_coords(coords, center);
        let radius = r2.sqrt();
        let mut ring = 0isize;
        loop {
            scratch.cand.clear();
            self.for_each_ring_cell(&home, ring, &mut |items| {
                for &j in items {
                    if j as usize != center {
                        scratch.cand.push(j);
                    }
                }
            });
            if !scratch.cand.is_empty() {
                coords.score_candidates(
                    center,
                    &scratch.cand,
                    &mut scratch.gather64,
                    &mut scratch.gather32,
                    &mut scratch.d2,
                );
                for (c, &j) in scratch.cand.iter().enumerate() {
                    if scratch.d2[c] <= r2 {
                        f(j, scratch.d2[c]);
                    }
                }
            }
            ring += 1;
            // A ring-r cell can hold points within `radius` only while
            // (r-1)·w_min ≤ radius; infinite radius scans every cell.
            if ring > self.per_axis as isize || (ring - 1) as f64 * self.min_width > radius {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::brute_knn;
    use crate::points::PointCloud;
    use sgm_linalg::rng::Rng64;

    fn knn_via_index(cloud: &PointCloud, k: usize, f32_storage: bool) -> Vec<Vec<(usize, f64)>> {
        let coords = Coords::from_cloud(cloud, f32_storage);
        let grid = GridIndex::build(&coords);
        let mut scratch = GridScratch::default();
        let (mut idx, mut d2) = (Vec::new(), Vec::new());
        (0..cloud.len())
            .map(|i| {
                grid.knn_into(&coords, i, k, &mut scratch, &mut idx, &mut d2);
                idx.iter()
                    .map(|&j| j as usize)
                    .zip(d2.iter().copied())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn matches_brute_exactly_in_f64() {
        let mut rng = Rng64::new(7);
        let cloud = PointCloud::uniform_box(400, 2, 0.0, 1.0, &mut rng);
        let exact = brute_knn(&cloud, 6);
        let got = knn_via_index(&cloud, 6, false);
        assert_eq!(got, exact);
    }

    #[test]
    fn matches_brute_exactly_in_3d() {
        let mut rng = Rng64::new(8);
        let cloud = PointCloud::uniform_box(300, 3, -2.0, 1.0, &mut rng);
        assert_eq!(knn_via_index(&cloud, 5, false), brute_knn(&cloud, 5));
    }

    #[test]
    fn lattice_ties_resolve_by_index() {
        // 8×8 integer lattice: every interior point has 4 neighbours at
        // distance 1 and 4 at √2 — massive exact ties. The exact result
        // is the k smallest by (dist², index); brute is that oracle.
        let mut data = Vec::new();
        for y in 0..8 {
            for x in 0..8 {
                data.push(x as f64);
                data.push(y as f64);
            }
        }
        let cloud = PointCloud::from_flat(2, data);
        assert_eq!(knn_via_index(&cloud, 5, false), brute_knn(&cloud, 5));
    }

    #[test]
    fn radius_query_is_exhaustive() {
        let mut rng = Rng64::new(9);
        let cloud = PointCloud::uniform_box(200, 2, 0.0, 1.0, &mut rng);
        let coords = Coords::from_cloud(&cloud, false);
        let grid = GridIndex::build(&coords);
        let mut scratch = GridScratch::default();
        let r2 = 0.02;
        for c in [0usize, 57, 199] {
            let mut got: Vec<u32> = Vec::new();
            grid.for_each_within(&coords, c, r2, &mut scratch, |j, _| got.push(j));
            got.sort_unstable();
            let want: Vec<u32> = (0..cloud.len())
                .filter(|&j| j != c && cloud.dist2(c, j) <= r2)
                .map(|j| j as u32)
                .collect();
            assert_eq!(got, want, "center {c}");
        }
    }

    #[test]
    fn f32_mode_preserves_rank_order_on_well_separated_cloud() {
        let mut rng = Rng64::new(10);
        let cloud = PointCloud::uniform_box(300, 2, 0.0, 1.0, &mut rng);
        let f64_lists = knn_via_index(&cloud, 4, false);
        let f32_lists = knn_via_index(&cloud, 4, true);
        // Random uniform clouds have no near-ties at f32 resolution:
        // the neighbour identity sequence must match exactly.
        for (a, b) in f64_lists.iter().zip(&f32_lists) {
            let ai: Vec<usize> = a.iter().map(|&(j, _)| j).collect();
            let bi: Vec<usize> = b.iter().map(|&(j, _)| j).collect();
            assert_eq!(ai, bi);
        }
    }
}
