//! Hierarchical Navigable Small World (HNSW) approximate nearest-neighbour
//! index, after Malkov & Yashunin (2018) — the paper's reference [17] and
//! the algorithm behind its `O(N log N)` kNN-graph construction (S1).
//!
//! The index is built incrementally: every point draws a geometric level;
//! greedy search descends the upper layers, then a best-first beam search
//! (`ef_construction` wide) selects neighbours at each of the point's
//! layers. Queries follow the same descent with an `ef_search` beam.

use crate::points::PointCloud;
use sgm_linalg::rng::Rng64;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Tuning parameters for [`Hnsw`].
#[derive(Debug, Clone, PartialEq)]
pub struct HnswParams {
    /// Max links per node on upper layers (the paper's `M`).
    pub m: usize,
    /// Max links on layer 0 (customarily `2M`).
    pub m0: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Beam width during queries.
    pub ef_search: usize,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            m: 12,
            m0: 24,
            ef_construction: 64,
            ef_search: 48,
        }
    }
}

/// Candidate ordered by distance (min-heap via reversed compare).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    dist: f64,
    node: u32,
}
impl Eq for Candidate {}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap; we want nearest first.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Farthest-first wrapper (natural max-heap order).
#[derive(Debug, Clone, Copy, PartialEq)]
struct FarCandidate {
    dist: f64,
    node: u32,
}
impl Eq for FarCandidate {}
impl Ord for FarCandidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or(Ordering::Equal)
    }
}
impl PartialOrd for FarCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An HNSW index over a borrowed point cloud.
#[derive(Debug)]
pub struct Hnsw<'a> {
    cloud: &'a PointCloud,
    params: HnswParams,
    /// `links[level][node]` — neighbour lists; upper levels only store
    /// nodes whose level ≥ that layer.
    links: Vec<Vec<Vec<u32>>>,
    /// Top level of each node.
    node_level: Vec<u8>,
    entry: u32,
    max_level: usize,
}

impl<'a> Hnsw<'a> {
    /// Builds an index over every point in `cloud`.
    ///
    /// # Panics
    /// Panics if the cloud is empty.
    pub fn build(cloud: &'a PointCloud, params: &HnswParams, rng: &mut Rng64) -> Self {
        assert!(!cloud.is_empty(), "empty cloud");
        let n = cloud.len();
        let ml = 1.0 / (params.m as f64).ln().max(0.5);
        let mut index = Hnsw {
            cloud,
            params: params.clone(),
            links: vec![vec![Vec::new(); n]],
            node_level: vec![0; n],
            entry: 0,
            max_level: 0,
        };
        for i in 0..n {
            let u = rng.uniform().max(1e-300);
            let level = ((-u.ln()) * ml).floor() as usize;
            index.insert(i as u32, level.min(16));
        }
        index
    }

    fn dist(&self, a: u32, q: &[f64]) -> f64 {
        self.cloud.dist2_to(a as usize, q)
    }

    fn ensure_level(&mut self, level: usize) {
        while self.links.len() <= level {
            self.links.push(vec![Vec::new(); self.cloud.len()]);
        }
    }

    /// Greedy hill-climb on one layer toward `q`, returning the local
    /// minimum reached from `start`.
    fn greedy_layer(&self, q: &[f64], start: u32, layer: usize) -> u32 {
        let mut cur = start;
        let mut cur_d = self.dist(cur, q);
        loop {
            let mut improved = false;
            for &nb in &self.links[layer][cur as usize] {
                let d = self.dist(nb, q);
                if d < cur_d {
                    cur = nb;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Beam search on one layer; returns up to `ef` nearest candidates,
    /// ascending by distance.
    fn search_layer(&self, q: &[f64], start: u32, ef: usize, layer: usize) -> Vec<(u32, f64)> {
        let mut visited = std::collections::HashSet::new();
        visited.insert(start);
        let d0 = self.dist(start, q);
        let mut frontier = BinaryHeap::from([Candidate {
            dist: d0,
            node: start,
        }]);
        let mut best: BinaryHeap<FarCandidate> = BinaryHeap::from([FarCandidate {
            dist: d0,
            node: start,
        }]);
        while let Some(c) = frontier.pop() {
            let worst = best.peek().map_or(f64::MAX, |f| f.dist);
            if c.dist > worst && best.len() >= ef {
                break;
            }
            for &nb in &self.links[layer][c.node as usize] {
                if !visited.insert(nb) {
                    continue;
                }
                let d = self.dist(nb, q);
                let worst = best.peek().map_or(f64::MAX, |f| f.dist);
                if best.len() < ef || d < worst {
                    frontier.push(Candidate { dist: d, node: nb });
                    best.push(FarCandidate { dist: d, node: nb });
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }
        let mut out: Vec<(u32, f64)> = best.into_iter().map(|f| (f.node, f.dist)).collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        out
    }

    /// Simple neighbour selection: keep the `m` closest.
    fn select_neighbors(cands: &[(u32, f64)], m: usize) -> Vec<u32> {
        cands.iter().take(m).map(|&(n, _)| n).collect()
    }

    fn insert(&mut self, node: u32, level: usize) {
        self.ensure_level(level);
        self.node_level[node as usize] = level as u8;
        if node == 0 {
            self.entry = 0;
            self.max_level = level;
            return;
        }
        let q = self.cloud.point(node as usize).to_vec();
        let mut ep = self.entry;
        // Descend from the top to level+1 greedily.
        let top = self.max_level;
        for layer in (level + 1..=top).rev() {
            ep = self.greedy_layer(&q, ep, layer);
        }
        // Insert at each layer from min(level, top) down to 0.
        for layer in (0..=level.min(top)).rev() {
            let cands = self.search_layer(&q, ep, self.params.ef_construction, layer);
            let m_max = if layer == 0 {
                self.params.m0
            } else {
                self.params.m
            };
            let selected = Self::select_neighbors(&cands, self.params.m);
            for &nb in &selected {
                self.links[layer][node as usize].push(nb);
                self.links[layer][nb as usize].push(node);
                // Shrink overfull neighbour lists, keeping the closest.
                if self.links[layer][nb as usize].len() > m_max {
                    let nb_point = self.cloud.point(nb as usize).to_vec();
                    let mut with_d: Vec<(u32, f64)> = self.links[layer][nb as usize]
                        .iter()
                        .map(|&x| (x, self.dist(x, &nb_point)))
                        .collect();
                    with_d.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                    with_d.truncate(m_max);
                    self.links[layer][nb as usize] = with_d.into_iter().map(|(x, _)| x).collect();
                }
            }
            if let Some(&(first, _)) = cands.first() {
                ep = first;
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = node;
        }
    }

    /// Approximate `k` nearest neighbours of an arbitrary query point,
    /// ascending by squared distance.
    pub fn search(&self, q: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut ep = self.entry;
        for layer in (1..=self.max_level).rev() {
            ep = self.greedy_layer(q, ep, layer);
        }
        let ef = self.params.ef_search.max(k);
        let res = self.search_layer(q, ep, ef, 0);
        res.into_iter()
            .take(k)
            .map(|(n, d)| (n as usize, d))
            .collect()
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.cloud.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.cloud.is_empty()
    }

    /// Highest occupied layer.
    pub fn max_level(&self) -> usize {
        self.max_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{brute_knn, recall};

    #[test]
    fn finds_exact_match() {
        let mut rng = Rng64::new(7);
        let cloud = PointCloud::uniform_box(200, 2, 0.0, 1.0, &mut rng);
        let mut build_rng = Rng64::new(8);
        let idx = Hnsw::build(&cloud, &HnswParams::default(), &mut build_rng);
        for i in (0..200).step_by(17) {
            let res = idx.search(cloud.point(i), 1);
            assert_eq!(res[0].0, i, "self should be nearest");
            assert_eq!(res[0].1, 0.0);
        }
    }

    #[test]
    fn recall_above_90_percent() {
        let mut rng = Rng64::new(9);
        let cloud = PointCloud::uniform_box(800, 3, -1.0, 1.0, &mut rng);
        let mut build_rng = Rng64::new(10);
        let idx = Hnsw::build(&cloud, &HnswParams::default(), &mut build_rng);
        let exact = brute_knn(&cloud, 10);
        let approx: Vec<Vec<(usize, f64)>> = (0..cloud.len())
            .map(|i| {
                idx.search(cloud.point(i), 11)
                    .into_iter()
                    .filter(|&(j, _)| j != i)
                    .take(10)
                    .collect()
            })
            .collect();
        let r = recall(&approx, &exact);
        assert!(r > 0.9, "recall {r}");
    }

    #[test]
    fn results_sorted_by_distance() {
        let mut rng = Rng64::new(11);
        let cloud = PointCloud::uniform_box(100, 2, 0.0, 1.0, &mut rng);
        let mut build_rng = Rng64::new(12);
        let idx = Hnsw::build(&cloud, &HnswParams::default(), &mut build_rng);
        let res = idx.search(&[0.5, 0.5], 10);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn single_point_index() {
        let cloud = PointCloud::from_flat(2, vec![1.0, 2.0]);
        let mut rng = Rng64::new(13);
        let idx = Hnsw::build(&cloud, &HnswParams::default(), &mut rng);
        let res = idx.search(&[0.0, 0.0], 3);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0, 0);
    }

    #[test]
    fn layered_structure_exists_for_large_sets() {
        let mut rng = Rng64::new(14);
        let cloud = PointCloud::uniform_box(2000, 2, 0.0, 1.0, &mut rng);
        let mut build_rng = Rng64::new(15);
        let idx = Hnsw::build(&cloud, &HnswParams::default(), &mut build_rng);
        assert!(idx.max_level() >= 1, "expected multiple layers");
    }
}
