//! k-nearest-neighbour graph construction (paper step **S1**).
//!
//! The PGM is a kNN graph over the collocation-point cloud: nearby points
//! are conditionally dependent, with edge weight inversely proportional to
//! distance. Three builders are provided:
//!
//! * [`KnnStrategy::Brute`] — exact `O(N²)`; the oracle for tests and fine
//!   for clouds below a few thousand points.
//! * [`KnnStrategy::Grid`] — exact for low-dimensional clouds using a
//!   uniform bucket grid; near-linear for the 2-D/3-D spatial coordinates
//!   PINN clouds actually use.
//! * [`KnnStrategy::Hnsw`] — approximate hierarchical navigable small world
//!   ([`hnsw`]), the `O(N log N)` algorithm the paper cites (Malkov &
//!   Yashunin, ref [17]).

pub mod grid;
pub mod hnsw;

use crate::graph::Graph;
use crate::points::{dist2, PointCloud};
use sgm_linalg::rng::Rng64;
use sgm_obs::{trace, Histogram, TraceLevel};

/// Wall time of each full kNN graph build (nanoseconds).
static KNN_BUILD_NS: Histogram = Histogram::new("sgm_graph_knn_build_ns");

/// Auto-mode work cutoff (≈ distance evaluations) above which per-query
/// kNN fans out to the pool. Each query row is independent, so the
/// parallel result is bit-identical to the serial scan.
const KNN_PAR_WORK: usize = 1 << 18;

/// Which kNN algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnStrategy {
    /// Exact O(N²) scan.
    Brute,
    /// Exact uniform-grid accelerated search (low dimensions).
    Grid,
    /// Approximate HNSW (O(N log N) construction).
    Hnsw,
}

/// Configuration for [`build_knn_graph`].
#[derive(Debug, Clone, PartialEq)]
pub struct KnnConfig {
    /// Neighbours per node (the paper's `k`; e.g. 30 for LDC, 7 for AR).
    pub k: usize,
    /// Algorithm choice.
    pub strategy: KnnStrategy,
    /// Edge-weight scheme: `w = 1 / (dist + eps)` (inverse distance encodes
    /// conditional dependence). `eps` guards coincident points.
    pub weight_eps: f64,
    /// RNG seed (HNSW level assignment).
    pub seed: u64,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig {
            k: 8,
            strategy: KnnStrategy::Grid,
            weight_eps: 1e-9,
            seed: 0x5EED,
        }
    }
}

/// The `k` nearest neighbours of every point: `out[i]` lists up to `k`
/// `(index, dist2)` pairs, ascending by distance, excluding `i` itself.
pub fn knn_lists(cloud: &PointCloud, cfg: &KnnConfig) -> Vec<Vec<(usize, f64)>> {
    match cfg.strategy {
        KnnStrategy::Brute => brute_knn(cloud, cfg.k),
        KnnStrategy::Grid => grid_knn(cloud, cfg.k),
        KnnStrategy::Hnsw => {
            let mut rng = Rng64::new(cfg.seed);
            let index = hnsw::Hnsw::build(cloud, &hnsw::HnswParams::default(), &mut rng);
            let n = cloud.len();
            let query = |i: usize| -> Vec<(usize, f64)> {
                index
                    .search(cloud.point(i), cfg.k + 1)
                    .into_iter()
                    .filter(|&(j, _)| j != i)
                    .take(cfg.k)
                    .collect()
            };
            // Construction is inherently sequential (each insert reads the
            // links of previous ones) but the bulk query phase is not.
            let work = n.saturating_mul((cfg.k + 1) * 512);
            match sgm_par::current().pool(work, KNN_PAR_WORK) {
                Some(pool) => pool.par_map_indexed(n, 8, query),
                None => (0..n).map(query).collect(),
            }
        }
    }
}

/// Builds the undirected kNN graph (the PGM of S1). Mutual duplicate edges
/// are merged; edge weight is `1 / (dist + eps)`.
///
/// # Panics
/// Panics if the cloud is empty or `k == 0`.
pub fn build_knn_graph(cloud: &PointCloud, cfg: &KnnConfig) -> Graph {
    assert!(!cloud.is_empty(), "empty cloud");
    assert!(cfg.k > 0, "k must be positive");
    let _span = trace::span(TraceLevel::Full, "graph", "knn_build");
    let t0 = std::time::Instant::now();
    let lists = knn_lists(cloud, cfg);
    let mut edges = Vec::with_capacity(cloud.len() * cfg.k);
    for (i, nbrs) in lists.iter().enumerate() {
        for &(j, d2) in nbrs {
            let w = 1.0 / (d2.sqrt() + cfg.weight_eps);
            edges.push((i, j, w));
        }
    }
    // from_edges merges duplicates by *summing*; halve weights of mutual
    // pairs first so merged edges keep the 1/(d+eps) scale.
    let mut seen = std::collections::HashSet::new();
    for (i, nbrs) in lists.iter().enumerate() {
        for &(j, _) in nbrs {
            let key = if i < j { (i, j) } else { (j, i) };
            seen.insert(key);
        }
    }
    let mut dedup: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    for (i, j, w) in edges {
        let key = if i < j { (i, j) } else { (j, i) };
        dedup.entry(key).or_insert(w);
    }
    let final_edges: Vec<(usize, usize, f64)> =
        dedup.into_iter().map(|((u, v), w)| (u, v, w)).collect();
    let g = Graph::from_edges(cloud.len(), &final_edges);
    KNN_BUILD_NS.record_duration(t0.elapsed());
    g
}

/// Exact O(N²) kNN. Query rows are independent, so the pooled path
/// returns exactly what the serial scan does.
pub fn brute_knn(cloud: &PointCloud, k: usize) -> Vec<Vec<(usize, f64)>> {
    let n = cloud.len();
    // Per-worker distance buffer: reused across queries so the hot loop
    // is allocation-free (one 8·n buffer per pool thread, not per query).
    thread_local! {
        static D2: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    let query = |i: usize| -> Vec<(usize, f64)> {
        D2.with(|cell| {
            let mut d2 = cell.borrow_mut();
            d2.resize(n, 0.0);
            // Batched distance kernel: the AVX2 tier scores four candidate
            // points per step (lanes hold points), which vectorises the
            // scan even for dim-2..4 clouds where per-pair SIMD has
            // nothing to do.
            sgm_linalg::simd::dist2_batch(cloud.as_slice(), cloud.dim(), cloud.point(i), &mut d2);
            // Bounded-insertion pass: keep the k nearest in ascending
            // (dist, index) order. Expected insertions are O(k·log n), so
            // the per-candidate cost is one predictable compare — the
            // distance kernel above dominates, unlike a full O(n·log n)
            // sort. Scanning j ascending means an equal-distance incumbent
            // always has the smaller index, so strict `<` reproduces the
            // old stable-sort tie behaviour exactly.
            let mut best: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
            for (j, &d) in d2.iter().enumerate() {
                if j == i || k == 0 {
                    continue;
                }
                if best.len() == k {
                    if d >= best[k - 1].1 {
                        continue;
                    }
                    best.pop();
                }
                let pos = best.partition_point(|&(jj, dd)| dd < d || (dd == d && jj < j));
                best.insert(pos, (j, d));
            }
            best
        })
    };
    let work = n.saturating_mul(n).saturating_mul(cloud.dim().max(1));
    match sgm_par::current().pool(work, KNN_PAR_WORK) {
        Some(pool) => pool.par_map_indexed(n, 8, query),
        None => (0..n).map(query).collect(),
    }
}

/// Exact kNN using a uniform bucket grid over the bounding box. Efficient
/// for spatial (2–4 dimensional) clouds with roughly uniform density.
pub fn grid_knn(cloud: &PointCloud, k: usize) -> Vec<Vec<(usize, f64)>> {
    let n = cloud.len();
    let dim = cloud.dim();
    if n <= k + 1 || dim > 4 {
        return brute_knn(cloud, k.min(n.saturating_sub(1)));
    }
    let (mins, maxs) = cloud.bounds();
    // Aim for ~2 points per cell.
    let cells_target = (n as f64 / 2.0).max(1.0);
    let per_axis = cells_target.powf(1.0 / dim as f64).ceil().max(1.0) as usize;
    let mut widths = vec![0.0; dim];
    for d in 0..dim {
        let span = (maxs[d] - mins[d]).max(1e-12);
        widths[d] = span / per_axis as f64;
    }
    let cell_of = |p: &[f64]| -> Vec<usize> {
        (0..dim)
            .map(|d| (((p[d] - mins[d]) / widths[d]) as usize).min(per_axis - 1))
            .collect()
    };
    let linear = |c: &[usize]| -> usize {
        let mut idx = 0;
        for &cd in c.iter().take(dim) {
            idx = idx * per_axis + cd;
        }
        idx
    };
    let num_cells = per_axis.pow(dim as u32);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); num_cells];
    for i in 0..n {
        buckets[linear(&cell_of(cloud.point(i)))].push(i as u32);
    }

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let home = cell_of(cloud.point(i));
        let mut ring = 0usize;
        let mut heap: Vec<(usize, f64)> = Vec::new(); // collected candidates
        loop {
            // Gather all cells at Chebyshev distance exactly `ring`.
            let mut any_cell = false;
            let mut stack = vec![(0usize, Vec::<isize>::new())];
            while let Some((d, partial)) = stack.pop() {
                if d == dim {
                    let cheb = partial.iter().map(|o| o.unsigned_abs()).max().unwrap_or(0);
                    if cheb != ring {
                        continue;
                    }
                    let mut cell = vec![0usize; dim];
                    let mut ok = true;
                    for dd in 0..dim {
                        let c = home[dd] as isize + partial[dd];
                        if c < 0 || c >= per_axis as isize {
                            ok = false;
                            break;
                        }
                        cell[dd] = c as usize;
                    }
                    if ok {
                        any_cell = true;
                        for &j in &buckets[linear(&cell)] {
                            let j = j as usize;
                            if j != i {
                                heap.push((j, cloud.dist2(i, j)));
                            }
                        }
                    }
                    continue;
                }
                for off in -(ring as isize)..=(ring as isize) {
                    let mut p = partial.clone();
                    p.push(off);
                    stack.push((d + 1, p));
                }
            }
            // Stop when we have k candidates whose distance is provably
            // within the scanned region: the scanned region covers radius
            // ring * min_width around the home cell.
            if heap.len() >= k {
                let safe_radius = ring as f64 * widths.iter().cloned().fold(f64::MAX, f64::min);
                heap.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                if heap.len() >= k && heap[k - 1].1.sqrt() <= safe_radius {
                    break;
                }
            }
            if !any_cell && ring > per_axis {
                break;
            }
            ring += 1;
        }
        heap.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        heap.dedup_by_key(|e| e.0);
        heap.truncate(k);
        out.push(heap);
    }
    out
}

/// Recall of an approximate kNN result against the exact one: the fraction
/// of true neighbours found, averaged over query points.
///
/// # Panics
/// Panics if the two lists have different lengths.
pub fn recall(approx: &[Vec<(usize, f64)>], exact: &[Vec<(usize, f64)>]) -> f64 {
    assert_eq!(approx.len(), exact.len(), "result length mismatch");
    if approx.is_empty() {
        return 1.0;
    }
    let mut total = 0.0;
    for (a, e) in approx.iter().zip(exact) {
        if e.is_empty() {
            total += 1.0;
            continue;
        }
        let truth: std::collections::HashSet<usize> = e.iter().map(|&(j, _)| j).collect();
        let hit = a.iter().filter(|&&(j, _)| truth.contains(&j)).count();
        total += hit as f64 / truth.len() as f64;
    }
    total / approx.len() as f64
}

/// Convenience: exact squared distance between two raw points.
pub fn point_dist2(a: &[f64], b: &[f64]) -> f64 {
    dist2(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_cloud(n: usize) -> PointCloud {
        let mut data = Vec::with_capacity(n * 2);
        for i in 0..n {
            let t = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            data.push(t.cos());
            data.push(t.sin());
        }
        PointCloud::from_flat(2, data)
    }

    #[test]
    fn brute_on_ring_finds_adjacent() {
        let c = ring_cloud(16);
        let lists = brute_knn(&c, 2);
        for (i, nbrs) in lists.iter().enumerate() {
            let expect: std::collections::HashSet<usize> =
                [(i + 1) % 16, (i + 15) % 16].into_iter().collect();
            let got: std::collections::HashSet<usize> = nbrs.iter().map(|&(j, _)| j).collect();
            assert_eq!(got, expect, "node {i}");
        }
    }

    #[test]
    fn grid_matches_brute() {
        let mut rng = Rng64::new(42);
        let c = PointCloud::uniform_box(300, 2, 0.0, 1.0, &mut rng);
        let exact = brute_knn(&c, 5);
        let grid = grid_knn(&c, 5);
        let r = recall(&grid, &exact);
        assert!(r > 0.999, "grid recall {r}");
    }

    #[test]
    fn grid_matches_brute_3d() {
        let mut rng = Rng64::new(43);
        let c = PointCloud::uniform_box(200, 3, -1.0, 1.0, &mut rng);
        let exact = brute_knn(&c, 4);
        let grid = grid_knn(&c, 4);
        assert!(recall(&grid, &exact) > 0.999);
    }

    #[test]
    fn hnsw_recall_reasonable() {
        let mut rng = Rng64::new(44);
        let c = PointCloud::uniform_box(500, 2, 0.0, 1.0, &mut rng);
        let exact = brute_knn(&c, 8);
        let approx = knn_lists(
            &c,
            &KnnConfig {
                k: 8,
                strategy: KnnStrategy::Hnsw,
                ..KnnConfig::default()
            },
        );
        let r = recall(&approx, &exact);
        assert!(r > 0.9, "hnsw recall {r}");
    }

    #[test]
    fn knn_graph_is_connected_for_dense_cloud() {
        let mut rng = Rng64::new(45);
        let c = PointCloud::uniform_box(400, 2, 0.0, 1.0, &mut rng);
        let g = build_knn_graph(
            &c,
            &KnnConfig {
                k: 8,
                strategy: KnnStrategy::Grid,
                ..KnnConfig::default()
            },
        );
        assert_eq!(g.num_nodes(), 400);
        assert!(g.is_connected());
    }

    #[test]
    fn knn_graph_weights_are_inverse_distance() {
        let c = PointCloud::from_flat(1, vec![0.0, 1.0, 3.0]);
        let g = build_knn_graph(
            &c,
            &KnnConfig {
                k: 1,
                strategy: KnnStrategy::Brute,
                weight_eps: 0.0,
                ..KnnConfig::default()
            },
        );
        // Nearest of 0 is 1 (d=1, w=1); nearest of 2 is 1 (d=2, w=0.5).
        let mut weights: Vec<f64> = g.edges().map(|(_, _, w)| w).collect();
        weights.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((weights[0] - 0.5).abs() < 1e-12);
        assert!((weights[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recall_of_exact_is_one() {
        let c = ring_cloud(10);
        let e = brute_knn(&c, 3);
        assert_eq!(recall(&e, &e), 1.0);
    }

    #[test]
    fn tiny_clouds_fall_back() {
        let c = PointCloud::from_flat(2, vec![0.0, 0.0, 1.0, 1.0]);
        let lists = grid_knn(&c, 5);
        assert_eq!(lists[0].len(), 1);
    }
}
