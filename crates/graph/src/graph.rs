//! Undirected weighted graphs in edge-list + CSR adjacency form, plus
//! union–find and traversal utilities.
//!
//! The PGM built in S1 is stored here: nodes are collocation points, edges
//! carry similarity weights (inverse distance). The LRD decomposition (S2)
//! consumes both the edge list (sorted by effective resistance) and the
//! adjacency structure.

/// An undirected weighted graph.
///
/// Edges are stored once (`u < v` canonical order); the CSR adjacency
/// stores each edge twice for O(deg) neighbour iteration.
///
/// # Example
///
/// ```
/// use sgm_graph::graph::Graph;
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.weighted_degree(1), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    n: usize,
    /// Canonical edge list: `(u, v, w)` with `u < v`.
    edges: Vec<(u32, u32, f64)>,
    /// CSR offsets into `adj`.
    offsets: Vec<usize>,
    /// `(neighbour, edge index)` pairs.
    adj: Vec<(u32, u32)>,
}

impl Graph {
    /// Builds from an edge list. Self-loops are dropped; duplicate edges
    /// (in either orientation) are merged by summing weights.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n` or a weight is non-finite/negative.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut canon: Vec<(u32, u32, f64)> = Vec::with_capacity(edges.len());
        for &(u, v, w) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            assert!(w.is_finite() && w >= 0.0, "weight must be finite & >= 0");
            if u == v {
                continue;
            }
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            canon.push((a as u32, b as u32, w));
        }
        canon.sort_unstable_by_key(|&(a, b, _)| (a, b));
        // Merge duplicates.
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(canon.len());
        for e in canon {
            match merged.last_mut() {
                Some(last) if last.0 == e.0 && last.1 == e.1 => last.2 += e.2,
                _ => merged.push(e),
            }
        }
        // Build CSR adjacency.
        let mut counts = vec![0usize; n + 1];
        for &(u, v, _) in &merged {
            counts[u as usize + 1] += 1;
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut adj = vec![(0u32, 0u32); merged.len() * 2];
        let mut cursor = counts.clone();
        for (ei, &(u, v, _)) in merged.iter().enumerate() {
            adj[cursor[u as usize]] = (v, ei as u32);
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = (u, ei as u32);
            cursor[v as usize] += 1;
        }
        Graph {
            n,
            edges: merged,
            offsets: counts,
            adj,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edge `ei` as `(u, v, w)`.
    pub fn edge(&self, ei: usize) -> (usize, usize, f64) {
        let (u, v, w) = self.edges[ei];
        (u as usize, v as usize, w)
    }

    /// Iterator over all edges `(u, v, w)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.edges
            .iter()
            .map(|&(u, v, w)| (u as usize, v as usize, w))
    }

    /// Iterator over `(neighbour, edge_index)` of node `u`.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj[self.offsets[u]..self.offsets[u + 1]]
            .iter()
            .map(|&(v, e)| (v as usize, e as usize))
    }

    /// Unweighted degree.
    pub fn degree(&self, u: usize) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Sum of incident edge weights.
    pub fn weighted_degree(&self, u: usize) -> f64 {
        self.neighbors(u).map(|(_, e)| self.edges[e].2).sum()
    }

    /// Average unweighted degree (0 for an empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.n as f64
        }
    }

    /// Total edge weight.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.2).sum()
    }

    /// Connected components: `(labels, count)`. Labels are compact in
    /// `[0, count)`.
    pub fn components(&self) -> (Vec<u32>, usize) {
        let mut label = vec![u32::MAX; self.n];
        let mut count = 0u32;
        let mut stack = Vec::new();
        for s in 0..self.n {
            if label[s] != u32::MAX {
                continue;
            }
            label[s] = count;
            stack.push(s);
            while let Some(u) = stack.pop() {
                for (v, _) in self.neighbors(u) {
                    if label[v] == u32::MAX {
                        label[v] = count;
                        stack.push(v);
                    }
                }
            }
            count += 1;
        }
        (label, count as usize)
    }

    /// Whether the graph is connected (an empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        self.n <= 1 || self.components().1 == 1
    }

    /// BFS hop distances from `src` (`usize::MAX` for unreachable).
    pub fn bfs_distances(&self, src: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        dist[src] = 0;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            for (v, _) in self.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// The subgraph induced on `nodes`, with nodes re-indexed in the order
    /// given. Returns the subgraph and the mapping `new -> old`.
    ///
    /// # Panics
    /// Panics if `nodes` contains duplicates or out-of-range indices.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> (Graph, Vec<usize>) {
        let mut new_of = vec![usize::MAX; self.n];
        for (ni, &o) in nodes.iter().enumerate() {
            assert!(o < self.n, "node out of range");
            assert!(new_of[o] == usize::MAX, "duplicate node in subset");
            new_of[o] = ni;
        }
        let mut edges = Vec::new();
        for &(u, v, w) in &self.edges {
            let (nu, nv) = (new_of[u as usize], new_of[v as usize]);
            if nu != usize::MAX && nv != usize::MAX {
                edges.push((nu, nv, w));
            }
        }
        (Graph::from_edges(nodes.len(), &edges), nodes.to_vec())
    }
}

/// Disjoint-set union with union by rank and path compression.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    count: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            count: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.count -= 1;
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.count
    }

    /// Compact labels in `[0, num_sets)` for every element.
    pub fn labels(&mut self) -> Vec<u32> {
        let n = self.parent.len();
        let mut map = std::collections::HashMap::new();
        let mut out = vec![0u32; n];
        for (i, o) in out.iter_mut().enumerate() {
            let r = self.find(i);
            let next = map.len() as u32;
            *o = *map.entry(r).or_insert(next);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn edge_canonicalisation_and_merge() {
        let g = Graph::from_edges(3, &[(1, 0, 1.0), (0, 1, 2.0), (2, 2, 5.0), (1, 2, 1.0)]);
        assert_eq!(g.num_edges(), 2); // self-loop dropped, duplicate merged
        assert_eq!(g.edge(0), (0, 1, 3.0));
    }

    #[test]
    fn degrees() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (1, 3, 3.0)]);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.weighted_degree(1), 6.0);
        assert_eq!(g.degree(0), 1);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn neighbors_are_bidirectional() {
        let g = Graph::from_edges(3, &[(0, 2, 1.5)]);
        let n0: Vec<usize> = g.neighbors(0).map(|(v, _)| v).collect();
        let n2: Vec<usize> = g.neighbors(2).map(|(v, _)| v).collect();
        assert_eq!(n0, vec![2]);
        assert_eq!(n2, vec![0]);
    }

    #[test]
    fn components_two_blobs() {
        let g = Graph::from_edges(5, &[(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)]);
        let (labels, count) = g.components();
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert!(!g.is_connected());
        assert!(path(4).is_connected());
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]);
        let (s, map) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_edges(), 2);
        assert_eq!(map, vec![1, 2, 3]);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.num_sets(), 3);
        let labels = uf.labels();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[4]);
    }

    #[test]
    fn union_find_transitivity() {
        let mut uf = UnionFind::new(10);
        for i in 0..9 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.connected(0, 9));
    }

    #[test]
    #[should_panic]
    fn negative_weight_panics() {
        let _ = Graph::from_edges(2, &[(0, 1, -1.0)]);
    }
}
