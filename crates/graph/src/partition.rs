//! Grid-partitioned parallel S1+S2.
//!
//! Paper §3.3: "For additional performance, we also decompose the dataset
//! into grids and perform S1 and S2 in independent sub-processes […]
//! Speedup is roughly linear with the number of available threads."
//!
//! [`parallel_decompose`] splits the cloud into spatial tiles, builds each
//! tile's kNN PGM and LRD clustering on its own thread, and stitches the
//! per-tile clusterings into one global [`Clustering`] (cluster ids are
//! tile-local, so no cluster ever spans a tile — a deliberate
//! approximation the paper accepts for the parallel path).

use crate::knn::{build_knn_graph, KnnConfig};
use crate::lrd::{decompose, Clustering, LrdConfig};
use crate::points::PointCloud;

/// Configuration for [`parallel_decompose`].
#[derive(Debug, Clone)]
pub struct GridPartitionConfig {
    /// Tiles per spatial axis (total tiles = `tiles_per_axis²` in 2-D).
    pub tiles_per_axis: usize,
    /// Worker threads (1 = sequential but still tiled).
    pub threads: usize,
    /// kNN configuration applied inside each tile.
    pub knn: KnnConfig,
    /// LRD configuration applied inside each tile.
    pub lrd: LrdConfig,
}

impl Default for GridPartitionConfig {
    fn default() -> Self {
        GridPartitionConfig {
            tiles_per_axis: 2,
            threads: 2,
            knn: KnnConfig::default(),
            lrd: LrdConfig::default(),
        }
    }
}

/// Tiled, multi-threaded kNN + LRD over a 2-D (or first-two-dims) cloud.
///
/// Deterministic for a fixed configuration regardless of thread count:
/// work is partitioned by tile, not by scheduling order.
///
/// # Panics
/// Panics if the cloud is empty or `tiles_per_axis == 0`.
pub fn parallel_decompose(cloud: &PointCloud, cfg: &GridPartitionConfig) -> Clustering {
    assert!(!cloud.is_empty(), "empty cloud");
    assert!(cfg.tiles_per_axis > 0, "tiles_per_axis must be positive");
    let n = cloud.len();
    let t = cfg.tiles_per_axis;
    let (mins, maxs) = cloud.bounds();
    let span = |d: usize| (maxs[d] - mins[d]).max(1e-12);
    // Assign points to tiles on the first two dimensions.
    let tile_of = |i: usize| -> usize {
        let p = cloud.point(i);
        let tx = (((p[0] - mins[0]) / span(0) * t as f64) as usize).min(t - 1);
        let ty = if cloud.dim() >= 2 {
            (((p[1] - mins[1]) / span(1) * t as f64) as usize).min(t - 1)
        } else {
            0
        };
        ty * t + tx
    };
    let num_tiles = t * t;
    let mut tiles: Vec<Vec<usize>> = vec![Vec::new(); num_tiles];
    for i in 0..n {
        tiles[tile_of(i)].push(i);
    }
    let tiles: Vec<Vec<usize>> = tiles.into_iter().filter(|v| !v.is_empty()).collect();

    // Per-tile clustering, threads pulling tiles from a shared index.
    let results: Vec<(Vec<usize>, Clustering)> = {
        let mut results: Vec<Option<(Vec<usize>, Clustering)>> = vec![None; tiles.len()];
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results_mutex = std::sync::Mutex::new(&mut results);
        std::thread::scope(|scope| {
            for _ in 0..cfg.threads.max(1) {
                scope.spawn(|| loop {
                    let ti = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if ti >= tiles.len() {
                        break;
                    }
                    let members = &tiles[ti];
                    let sub = cloud.subset(members);
                    let clustering = if sub.len() == 1 {
                        Clustering::from_assignment(vec![0])
                    } else {
                        let g = build_knn_graph(&sub, &cfg.knn);
                        decompose(&g, &cfg.lrd)
                    };
                    let mut guard = results_mutex.lock().expect("poisoned");
                    guard[ti] = Some((members.clone(), clustering));
                });
            }
        });
        results.into_iter().map(|r| r.expect("tile done")).collect()
    };

    // Stitch: offset each tile's labels into a global label space.
    let mut assignment = vec![0u32; n];
    let mut offset = 0u32;
    for (members, clustering) in &results {
        for (local, &global) in members.iter().enumerate() {
            assignment[global] = offset + clustering.assignment()[local];
        }
        offset += clustering.num_clusters() as u32;
    }
    Clustering::from_assignment(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnStrategy;
    use sgm_linalg::rng::Rng64;

    fn cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = Rng64::new(seed);
        PointCloud::uniform_box(n, 2, 0.0, 1.0, &mut rng)
    }

    fn cfg(tiles: usize, threads: usize) -> GridPartitionConfig {
        GridPartitionConfig {
            tiles_per_axis: tiles,
            threads,
            knn: KnnConfig {
                k: 6,
                strategy: KnnStrategy::Grid,
                ..KnnConfig::default()
            },
            lrd: LrdConfig {
                min_clusters: 4,
                ..LrdConfig::default()
            },
        }
    }

    #[test]
    fn covers_every_point_exactly_once() {
        let c = cloud(500, 1);
        let clustering = parallel_decompose(&c, &cfg(3, 4));
        assert_eq!(clustering.num_nodes(), 500);
        let total: usize = clustering.sizes().iter().sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn clusters_never_span_tiles() {
        let c = cloud(600, 2);
        let clustering = parallel_decompose(&c, &cfg(2, 3));
        // Tile of a point (must match the function's partitioning).
        let (mins, maxs) = c.bounds();
        let tile = |i: usize| -> (usize, usize) {
            let p = c.point(i);
            let tx = (((p[0] - mins[0]) / (maxs[0] - mins[0]) * 2.0) as usize).min(1);
            let ty = (((p[1] - mins[1]) / (maxs[1] - mins[1]) * 2.0) as usize).min(1);
            (tx, ty)
        };
        for cl in clustering.clusters() {
            let t0 = tile(cl[0] as usize);
            for &m in cl {
                assert_eq!(tile(m as usize), t0, "cluster spans tiles");
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let c = cloud(400, 3);
        let a = parallel_decompose(&c, &cfg(2, 1));
        let b = parallel_decompose(&c, &cfg(2, 4));
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn single_tile_matches_direct_decompose() {
        let c = cloud(300, 4);
        let tiled = parallel_decompose(&c, &cfg(1, 2));
        let g = build_knn_graph(&c, &cfg(1, 1).knn);
        let direct = decompose(&g, &cfg(1, 1).lrd);
        assert_eq!(tiled.assignment(), direct.assignment());
    }

    #[test]
    fn handles_degenerate_tiny_tiles() {
        // Points concentrated so some tiles hold 0 or 1 points.
        let c = PointCloud::from_flat(2, vec![0.01, 0.01, 0.02, 0.02, 0.03, 0.01, 0.99, 0.99]);
        let clustering = parallel_decompose(&c, &cfg(4, 2));
        assert_eq!(clustering.num_nodes(), 4);
    }
}
