//! Graph Laplacians as sparse matrices.
//!
//! The effective-resistance machinery (Definition 3.1 of the paper) and the
//! ISR pencil `L_Y⁺ L_X` both operate on combinatorial Laplacians
//! `L = D − W` of the PGM.

use crate::graph::Graph;
use sgm_linalg::sparse::Csr;

/// Combinatorial Laplacian `L = D − W` of an undirected weighted graph.
pub fn laplacian(g: &Graph) -> Csr {
    let n = g.num_nodes();
    let mut trips = Vec::with_capacity(g.num_edges() * 4);
    for (u, v, w) in g.edges() {
        trips.push((u, v, -w));
        trips.push((v, u, -w));
        trips.push((u, u, w));
        trips.push((v, v, w));
    }
    Csr::from_triplets(n, n, &trips)
}

/// Symmetric normalised Laplacian `I − D^{-1/2} W D^{-1/2}`. Isolated
/// nodes get a unit diagonal.
pub fn normalized_laplacian(g: &Graph) -> Csr {
    let n = g.num_nodes();
    let deg: Vec<f64> = (0..n).map(|u| g.weighted_degree(u)).collect();
    let inv_sqrt: Vec<f64> = deg
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let mut trips = Vec::with_capacity(g.num_edges() * 2 + n);
    for u in 0..n {
        trips.push((u, u, 1.0));
    }
    for (u, v, w) in g.edges() {
        let nw = w * inv_sqrt[u] * inv_sqrt[v];
        trips.push((u, v, -nw));
        trips.push((v, u, -nw));
    }
    Csr::from_triplets(n, n, &trips)
}

/// A Laplacian regularised by `+ eps·I`, making it positive definite so
/// plain CG applies (used when deflation is inconvenient, e.g. inside the
/// ISR pencil).
pub fn regularized_laplacian(g: &Graph, eps: f64) -> Csr {
    let n = g.num_nodes();
    let mut trips: Vec<(usize, usize, f64)> = Vec::with_capacity(g.num_edges() * 4 + n);
    for (u, v, w) in g.edges() {
        trips.push((u, v, -w));
        trips.push((v, u, -w));
        trips.push((u, u, w));
        trips.push((v, v, w));
    }
    for u in 0..n {
        trips.push((u, u, eps));
    }
    Csr::from_triplets(n, n, &trips)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let l = laplacian(&triangle());
        for r in 0..3 {
            let s: f64 = l.row_iter(r).map(|(_, v)| v).sum();
            assert!(s.abs() < 1e-14);
        }
    }

    #[test]
    fn laplacian_is_symmetric() {
        let g = Graph::from_edges(4, &[(0, 1, 2.0), (1, 2, 0.5), (2, 3, 1.5), (0, 3, 1.0)]);
        assert!(laplacian(&g).is_symmetric(1e-14));
        assert!(normalized_laplacian(&g).is_symmetric(1e-14));
    }

    #[test]
    fn laplacian_quadratic_form_is_cut() {
        // xᵀ L x = Σ_(u,v) w (x_u − x_v)²
        let g = triangle();
        let l = laplacian(&g);
        let x = [1.0, 0.0, 0.0];
        let lx = l.apply(&x);
        let quad: f64 = x.iter().zip(&lx).map(|(a, b)| a * b).sum();
        assert!((quad - 2.0).abs() < 1e-14); // two cut edges of weight 1
    }

    #[test]
    fn normalized_diag_is_one() {
        let l = normalized_laplacian(&triangle());
        for i in 0..3 {
            assert!((l.get(i, i) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn regularized_is_positive_definite() {
        let g = triangle();
        let lr = regularized_laplacian(&g, 0.1);
        // Constant vector now has positive energy.
        let x = [1.0, 1.0, 1.0];
        let lx = lr.apply(&x);
        let quad: f64 = x.iter().zip(&lx).map(|(a, b)| a * b).sum();
        assert!((quad - 0.3).abs() < 1e-12);
    }

    #[test]
    fn isolated_node_handled() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0)]);
        let l = normalized_laplacian(&g);
        assert_eq!(l.get(2, 2), 1.0);
        assert_eq!(l.get(2, 0), 0.0);
    }
}
