//! Spectral sparsification by effective-resistance sampling
//! (Spielman–Srivastava).
//!
//! The same effective-resistance machinery that drives the LRD
//! decomposition also yields spectral sparsifiers: sampling each edge with
//! probability proportional to `w_e · R_e` (its *leverage*) and
//! reweighting preserves the Laplacian quadratic form. SGM-PINN uses this
//! to thin very dense PGMs (large `k`) before clustering — fewer edges
//! means cheaper LRD at the same spectral structure.

use crate::graph::Graph;
use crate::laplacian::laplacian;
use crate::resistance::{approx_edge_resistances, ApproxErOptions};
use sgm_linalg::rng::Rng64;

/// Options for [`sparsify`].
#[derive(Debug, Clone, PartialEq)]
pub struct SparsifyOptions {
    /// Target number of sampled edges (with multiplicity; duplicates are
    /// merged, so the output typically has slightly fewer).
    pub target_edges: usize,
    /// Effective-resistance estimation options.
    pub er: ApproxErOptions,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for SparsifyOptions {
    fn default() -> Self {
        SparsifyOptions {
            target_edges: 0, // 0 = 4·n·ln(n)
            er: ApproxErOptions::default(),
            seed: 0x5BA5,
        }
    }
}

/// Spectral sparsification: samples `q` edges with probability
/// `p_e ∝ w_e · R̂_e` and reweights each picked edge by `w_e / (q p_e)`
/// (summing multiplicities), so the sampled part satisfies
/// `E[L_H] = L_G`. A BFS spanning forest is always retained at its
/// original weight (the standard practical backbone: finite sample
/// budgets can otherwise disconnect low-leverage nodes, which would break
/// downstream LRD clustering).
///
/// # Panics
/// Panics if the graph has no edges.
pub fn sparsify(g: &Graph, opts: &SparsifyOptions) -> Graph {
    assert!(g.num_edges() > 0, "no edges to sparsify");
    let n = g.num_nodes();
    let q = if opts.target_edges == 0 {
        ((4.0 * n as f64 * (n as f64).ln().max(1.0)) as usize).min(g.num_edges() * 4)
    } else {
        opts.target_edges
    };
    let er = approx_edge_resistances(g, &opts.er);
    let leverage: Vec<f64> = g
        .edges()
        .zip(&er)
        .map(|((_, _, w), &r)| (w * r).max(1e-15))
        .collect();
    let total: f64 = leverage.iter().sum();
    // Cumulative distribution for O(log m) sampling.
    let mut cdf = Vec::with_capacity(leverage.len());
    let mut acc = 0.0;
    for &l in &leverage {
        acc += l / total;
        cdf.push(acc);
    }
    let mut rng = Rng64::new(opts.seed);
    let mut weight_acc = vec![0.0f64; g.num_edges()];
    for _ in 0..q {
        let u = rng.uniform();
        let ei = match cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => (i + 1).min(cdf.len() - 1),
            Err(i) => i.min(cdf.len() - 1),
        };
        let p = leverage[ei] / total;
        let (_, _, w) = g.edge(ei);
        weight_acc[ei] += w / (q as f64 * p);
    }
    // Spanning-forest backbone: BFS over each component, marking tree
    // edges so they survive with at least their original weight.
    let mut visited = vec![false; n];
    let mut backbone = vec![false; g.num_edges()];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for (v, ei) in g.neighbors(u) {
                if !visited[v] {
                    visited[v] = true;
                    backbone[ei] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    let edges: Vec<(usize, usize, f64)> = g
        .edges()
        .enumerate()
        .filter(|(ei, _)| weight_acc[*ei] > 0.0 || backbone[*ei])
        .map(|(ei, (u, v, w))| {
            let wt = if backbone[ei] {
                weight_acc[ei].max(w)
            } else {
                weight_acc[ei]
            };
            (u, v, wt)
        })
        .collect();
    Graph::from_edges(n, &edges)
}

/// Relative deviation of the sparsifier's Laplacian quadratic form from
/// the original, maximised over a set of random test vectors:
/// `max_x |xᵀL_H x − xᵀL_G x| / xᵀL_G x`.
pub fn quadratic_form_deviation(g: &Graph, h: &Graph, probes: usize, seed: u64) -> f64 {
    let lg = laplacian(g);
    let lh = laplacian(h);
    let n = g.num_nodes();
    let mut rng = Rng64::new(seed);
    let mut worst = 0.0f64;
    for _ in 0..probes {
        let mut x: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = x.iter().sum::<f64>() / n as f64;
        for v in &mut x {
            *v -= mean;
        }
        let qg: f64 = lg.apply(&x).iter().zip(&x).map(|(a, b)| a * b).sum();
        let qh: f64 = lh.apply(&x).iter().zip(&x).map(|(a, b)| a * b).sum();
        if qg > 1e-12 {
            worst = worst.max(((qh - qg) / qg).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{build_knn_graph, KnnConfig, KnnStrategy};
    use crate::points::PointCloud;

    fn dense_graph() -> Graph {
        let mut rng = Rng64::new(11);
        let cloud = PointCloud::uniform_box(150, 2, 0.0, 1.0, &mut rng);
        build_knn_graph(
            &cloud,
            &KnnConfig {
                k: 20,
                strategy: KnnStrategy::Brute,
                ..KnnConfig::default()
            },
        )
    }

    #[test]
    fn reduces_edge_count() {
        let g = dense_graph();
        let h = sparsify(
            &g,
            &SparsifyOptions {
                target_edges: g.num_edges() / 3,
                ..SparsifyOptions::default()
            },
        );
        assert!(
            h.num_edges() < g.num_edges() / 2,
            "{} vs {}",
            h.num_edges(),
            g.num_edges()
        );
        assert_eq!(h.num_nodes(), g.num_nodes());
    }

    #[test]
    fn preserves_quadratic_form_approximately() {
        let g = dense_graph();
        let h = sparsify(
            &g,
            &SparsifyOptions {
                target_edges: g.num_edges(), // generous sample budget
                ..SparsifyOptions::default()
            },
        );
        let dev = quadratic_form_deviation(&g, &h, 20, 3);
        assert!(dev < 0.6, "quadratic form deviates by {dev}");
    }

    #[test]
    fn preserves_connectivity_with_generous_budget() {
        let g = dense_graph();
        assert!(g.is_connected());
        let h = sparsify(
            &g,
            &SparsifyOptions {
                target_edges: g.num_edges() * 2,
                ..SparsifyOptions::default()
            },
        );
        assert!(h.is_connected(), "sparsifier disconnected the graph");
    }

    #[test]
    fn total_weight_is_roughly_preserved() {
        // E[L_H] = L_G implies E[total weight] = total weight.
        let g = dense_graph();
        let h = sparsify(
            &g,
            &SparsifyOptions {
                target_edges: g.num_edges() * 2,
                ..SparsifyOptions::default()
            },
        );
        let ratio = h.total_weight() / g.total_weight();
        assert!((0.7..1.3).contains(&ratio), "weight ratio {ratio}");
    }

    #[test]
    fn deterministic_for_seed() {
        let g = dense_graph();
        let opts = SparsifyOptions {
            target_edges: 500,
            ..SparsifyOptions::default()
        };
        let h1 = sparsify(&g, &opts);
        let h2 = sparsify(&g, &opts);
        assert_eq!(h1.num_edges(), h2.num_edges());
    }
}
