//! Flat point-cloud storage.
//!
//! Collocation points are stored row-major in one contiguous buffer
//! (`N × dim`), matching the paper's `X ∈ ℝ^{N×M}` sample matrix. The kNN
//! builders, the PGM and the samplers all reference points by index into a
//! shared cloud.

use sgm_linalg::rng::Rng64;

/// An `N × dim` point cloud in one flat buffer.
///
/// # Example
///
/// ```
/// use sgm_graph::points::PointCloud;
/// let c = PointCloud::from_flat(2, vec![0.0, 0.0, 3.0, 4.0]);
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.dist2(0, 1), 25.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PointCloud {
    dim: usize,
    data: Vec<f64>,
}

impl PointCloud {
    /// Wraps a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or the buffer length is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(data.len() % dim, 0, "buffer not a multiple of dim");
        PointCloud { dim, data }
    }

    /// An empty cloud of the given dimension.
    pub fn new(dim: usize) -> Self {
        Self::from_flat(dim, Vec::new())
    }

    /// Uniform random cloud in the axis-aligned box `[lo, hi]^dim`.
    pub fn uniform_box(n: usize, dim: usize, lo: f64, hi: f64, rng: &mut Rng64) -> Self {
        let data = (0..n * dim).map(|_| rng.uniform_in(lo, hi)).collect();
        Self::from_flat(dim, data)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when the cloud holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Appends a point.
    ///
    /// # Panics
    /// Panics if `p.len() != dim`.
    pub fn push(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dim, "point dimension");
        self.data.extend_from_slice(p);
    }

    /// Overwrites point `i` with `p` (the adaptive samplers move
    /// collocation points through this).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds or `p.len() != dim`.
    #[inline]
    pub fn set_point(&mut self, i: usize, p: &[f64]) {
        assert_eq!(p.len(), self.dim, "point dimension");
        self.data[i * self.dim..(i + 1) * self.dim].copy_from_slice(p);
    }

    /// Drops all points past the first `n` (no-op when `n >= len`).
    pub fn truncate(&mut self, n: usize) {
        self.data.truncate(n.saturating_mul(self.dim));
    }

    /// The flat buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Squared Euclidean distance between stored points `i` and `j`.
    #[inline]
    pub fn dist2(&self, i: usize, j: usize) -> f64 {
        dist2(self.point(i), self.point(j))
    }

    /// Squared Euclidean distance from stored point `i` to a query `q`.
    ///
    /// # Panics
    /// Panics (debug) if `q.len() != dim`.
    #[inline]
    pub fn dist2_to(&self, i: usize, q: &[f64]) -> f64 {
        dist2(self.point(i), q)
    }

    /// Restriction of the cloud to a subset of point indices (copies).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn subset(&self, idx: &[usize]) -> PointCloud {
        let mut data = Vec::with_capacity(idx.len() * self.dim);
        for &i in idx {
            data.extend_from_slice(self.point(i));
        }
        PointCloud::from_flat(self.dim, data)
    }

    /// Restriction to the first `d` coordinates of every point (e.g. the
    /// spatial `(x, y, z)` part of a parameterised sample, as the paper
    /// builds its kNN graph on the low-dimensional spatial coordinates).
    ///
    /// # Panics
    /// Panics if `d == 0` or `d > dim`.
    pub fn project(&self, d: usize) -> PointCloud {
        assert!(d > 0 && d <= self.dim, "bad projection dim");
        let n = self.len();
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            data.extend_from_slice(&self.point(i)[..d]);
        }
        PointCloud::from_flat(d, data)
    }

    /// Bounding box `(mins, maxs)` of the cloud.
    ///
    /// # Panics
    /// Panics on an empty cloud.
    pub fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        assert!(!self.is_empty(), "bounds of empty cloud");
        let mut mins = self.point(0).to_vec();
        let mut maxs = mins.clone();
        for i in 1..self.len() {
            for (d, &v) in self.point(i).iter().enumerate() {
                mins[d] = mins[d].min(v);
                maxs[d] = maxs[d].max(v);
            }
        }
        (mins, maxs)
    }
}

/// Squared Euclidean distance between two slices.
///
/// # Panics
/// Panics (debug builds) if lengths differ.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    sgm_linalg::simd::dist2(a, b)
}

/// True when `SGM_DIST_F32=1|true|on` requests the compact f32
/// coordinate storage for incremental kNN maintenance (read per call so
/// tests can toggle it; the engines capture the value at build time).
pub fn dist_f32_from_env() -> bool {
    matches!(
        std::env::var("SGM_DIST_F32").as_deref().map(str::trim),
        Ok("1") | Ok("true") | Ok("on")
    )
}

/// Coordinate storage for the incremental kNN engine: either the native
/// f64 layout or an opt-in compact f32 layout (`SGM_DIST_F32`) that
/// halves memory traffic on the distance-dominated refresh path.
///
/// All distances are **accumulated in f64** regardless of storage
/// (`sgm_linalg::simd::dist2_batch` / `dist2_batch_f32`); only the
/// stored coordinates are rounded in f32 mode. Rounding happens exactly
/// once, at [`Coords::set`]/construction — every query then sees the
/// same rounded value, so neighbour rank-ordering is a pure function of
/// the stored cloud and stays deterministic across thread counts and
/// SIMD tiers.
#[derive(Debug, Clone, PartialEq)]
pub enum Coords {
    /// Native f64 coordinates (bit-identical to the [`PointCloud`]).
    F64 { dim: usize, data: Vec<f64> },
    /// Compact f32 coordinates, f64 distance accumulation.
    F32 { dim: usize, data: Vec<f32> },
}

impl Coords {
    /// Captures a cloud into the chosen storage (rounding once in f32
    /// mode).
    pub fn from_cloud(cloud: &PointCloud, f32_storage: bool) -> Self {
        if f32_storage {
            Coords::F32 {
                dim: cloud.dim(),
                data: cloud.as_slice().iter().map(|&v| v as f32).collect(),
            }
        } else {
            Coords::F64 {
                dim: cloud.dim(),
                data: cloud.as_slice().to_vec(),
            }
        }
    }

    /// Feature dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        match self {
            Coords::F64 { dim, .. } | Coords::F32 { dim, .. } => *dim,
        }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Coords::F64 { dim, data } => data.len() / dim,
            Coords::F32 { dim, data } => data.len() / dim,
        }
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coordinate `d` of point `i`, widened to f64 (grid-cell
    /// computation and bounds work on this view in both modes).
    #[inline]
    pub fn get(&self, i: usize, d: usize) -> f64 {
        match self {
            Coords::F64 { dim, data } => data[i * dim + d],
            Coords::F32 { dim, data } => data[i * dim + d] as f64,
        }
    }

    /// Overwrites point `i` with `p` (rounding to f32 in f32 mode).
    ///
    /// # Panics
    /// Panics if `p.len() != dim`.
    pub fn set(&mut self, i: usize, p: &[f64]) {
        match self {
            Coords::F64 { dim, data } => {
                assert_eq!(p.len(), *dim, "point dimension");
                data[i * *dim..(i + 1) * *dim].copy_from_slice(p);
            }
            Coords::F32 { dim, data } => {
                assert_eq!(p.len(), *dim, "point dimension");
                for (dst, &v) in data[i * *dim..(i + 1) * *dim].iter_mut().zip(p) {
                    *dst = v as f32;
                }
            }
        }
    }

    /// Squared distance between stored points `i` and `j` (f64
    /// accumulation in both modes). Symmetric bit-for-bit: the per-axis
    /// difference of the swapped call is the exact IEEE negation, so
    /// its square is identical.
    #[inline]
    pub fn dist2(&self, i: usize, j: usize) -> f64 {
        match self {
            Coords::F64 { dim, data } => sgm_linalg::simd::dist2(
                &data[i * dim..(i + 1) * dim],
                &data[j * dim..(j + 1) * dim],
            ),
            Coords::F32 { dim, data } => sgm_linalg::simd::dist2_f32(
                &data[i * dim..(i + 1) * dim],
                &data[j * dim..(j + 1) * dim],
            ),
        }
    }

    /// Squared displacement of stored point `i` from a proposed new
    /// position `p`, measured **in storage precision**: in f32 mode `p`
    /// is rounded first, so a move too small to change the stored f32
    /// value reports exactly `0.0` (the point genuinely did not move as
    /// far as any distance computation is concerned).
    #[inline]
    pub fn displacement2(&self, i: usize, p: &[f64]) -> f64 {
        match self {
            Coords::F64 { dim, data } => sgm_linalg::simd::dist2(&data[i * dim..(i + 1) * dim], p),
            Coords::F32 { dim, data } => {
                let stored = &data[i * dim..(i + 1) * dim];
                let mut s = 0.0f64;
                for (sv, &pv) in stored.iter().zip(p) {
                    let d = (sv - pv as f32) as f64;
                    s += d * d;
                }
                s
            }
        }
    }

    /// Scores candidate points against stored query point `q`: gathers
    /// the candidates into `gather64`/`gather32` (whichever matches the
    /// storage) and runs the batched distance kernel, leaving
    /// `out[c] = dist2(cand[c], q)`. The gather is what keeps the
    /// AVX2 batch kernel fed from scattered grid buckets.
    pub fn score_candidates(
        &self,
        q: usize,
        cand: &[u32],
        gather64: &mut Vec<f64>,
        gather32: &mut Vec<f32>,
        out: &mut Vec<f64>,
    ) {
        out.resize(cand.len(), 0.0);
        match self {
            Coords::F64 { dim, data } => {
                gather64.clear();
                gather64.reserve(cand.len() * dim);
                for &c in cand {
                    let c = c as usize;
                    gather64.extend_from_slice(&data[c * dim..(c + 1) * dim]);
                }
                sgm_linalg::simd::dist2_batch(gather64, *dim, &data[q * dim..(q + 1) * dim], out);
            }
            Coords::F32 { dim, data } => {
                gather32.clear();
                gather32.reserve(cand.len() * dim);
                for &c in cand {
                    let c = c as usize;
                    gather32.extend_from_slice(&data[c * dim..(c + 1) * dim]);
                }
                sgm_linalg::simd::dist2_batch_f32(
                    gather32,
                    *dim,
                    &data[q * dim..(q + 1) * dim],
                    out,
                );
            }
        }
    }

    /// Bounding box `(mins, maxs)` of the stored cloud (f64 view).
    ///
    /// # Panics
    /// Panics on an empty store.
    pub fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        assert!(!self.is_empty(), "bounds of empty coords");
        let (n, dim) = (self.len(), self.dim());
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for i in 0..n {
            for d in 0..dim {
                let v = self.get(i, d);
                mins[d] = mins[d].min(v);
                maxs[d] = maxs[d].max(v);
            }
        }
        (mins, maxs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_access() {
        let c = PointCloud::from_flat(3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.dim(), 3);
        assert_eq!(c.point(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn distances() {
        let c = PointCloud::from_flat(2, vec![0.0, 0.0, 3.0, 4.0]);
        assert_eq!(c.dist2(0, 1), 25.0);
        assert_eq!(c.dist2_to(0, &[1.0, 0.0]), 1.0);
    }

    #[test]
    fn push_extends() {
        let mut c = PointCloud::new(2);
        c.push(&[1.0, 2.0]);
        c.push(&[3.0, 4.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.point(1), &[3.0, 4.0]);
    }

    #[test]
    fn subset_and_project() {
        let c = PointCloud::from_flat(3, vec![1.0, 2.0, 9.0, 4.0, 5.0, 8.0, 6.0, 7.0, 7.0]);
        let s = c.subset(&[2, 0]);
        assert_eq!(s.point(0), &[6.0, 7.0, 7.0]);
        assert_eq!(s.point(1), &[1.0, 2.0, 9.0]);
        let p = c.project(2);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.point(1), &[4.0, 5.0]);
    }

    #[test]
    fn bounds_cover_all_points() {
        let c = PointCloud::from_flat(2, vec![0.0, 5.0, -3.0, 2.0, 4.0, -1.0]);
        let (mins, maxs) = c.bounds();
        assert_eq!(mins, vec![-3.0, -1.0]);
        assert_eq!(maxs, vec![4.0, 5.0]);
    }

    #[test]
    fn uniform_box_within_bounds() {
        let mut rng = Rng64::new(1);
        let c = PointCloud::uniform_box(100, 3, -2.0, 2.0, &mut rng);
        assert_eq!(c.len(), 100);
        let (mins, maxs) = c.bounds();
        for d in 0..3 {
            assert!(mins[d] >= -2.0 && maxs[d] <= 2.0);
        }
    }

    #[test]
    #[should_panic]
    fn ragged_buffer_panics() {
        let _ = PointCloud::from_flat(2, vec![1.0, 2.0, 3.0]);
    }
}
