//! Flat point-cloud storage.
//!
//! Collocation points are stored row-major in one contiguous buffer
//! (`N × dim`), matching the paper's `X ∈ ℝ^{N×M}` sample matrix. The kNN
//! builders, the PGM and the samplers all reference points by index into a
//! shared cloud.

use sgm_linalg::rng::Rng64;

/// An `N × dim` point cloud in one flat buffer.
///
/// # Example
///
/// ```
/// use sgm_graph::points::PointCloud;
/// let c = PointCloud::from_flat(2, vec![0.0, 0.0, 3.0, 4.0]);
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.dist2(0, 1), 25.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PointCloud {
    dim: usize,
    data: Vec<f64>,
}

impl PointCloud {
    /// Wraps a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or the buffer length is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(data.len() % dim, 0, "buffer not a multiple of dim");
        PointCloud { dim, data }
    }

    /// An empty cloud of the given dimension.
    pub fn new(dim: usize) -> Self {
        Self::from_flat(dim, Vec::new())
    }

    /// Uniform random cloud in the axis-aligned box `[lo, hi]^dim`.
    pub fn uniform_box(n: usize, dim: usize, lo: f64, hi: f64, rng: &mut Rng64) -> Self {
        let data = (0..n * dim).map(|_| rng.uniform_in(lo, hi)).collect();
        Self::from_flat(dim, data)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when the cloud holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Appends a point.
    ///
    /// # Panics
    /// Panics if `p.len() != dim`.
    pub fn push(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dim, "point dimension");
        self.data.extend_from_slice(p);
    }

    /// The flat buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Squared Euclidean distance between stored points `i` and `j`.
    #[inline]
    pub fn dist2(&self, i: usize, j: usize) -> f64 {
        dist2(self.point(i), self.point(j))
    }

    /// Squared Euclidean distance from stored point `i` to a query `q`.
    ///
    /// # Panics
    /// Panics (debug) if `q.len() != dim`.
    #[inline]
    pub fn dist2_to(&self, i: usize, q: &[f64]) -> f64 {
        dist2(self.point(i), q)
    }

    /// Restriction of the cloud to a subset of point indices (copies).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn subset(&self, idx: &[usize]) -> PointCloud {
        let mut data = Vec::with_capacity(idx.len() * self.dim);
        for &i in idx {
            data.extend_from_slice(self.point(i));
        }
        PointCloud::from_flat(self.dim, data)
    }

    /// Restriction to the first `d` coordinates of every point (e.g. the
    /// spatial `(x, y, z)` part of a parameterised sample, as the paper
    /// builds its kNN graph on the low-dimensional spatial coordinates).
    ///
    /// # Panics
    /// Panics if `d == 0` or `d > dim`.
    pub fn project(&self, d: usize) -> PointCloud {
        assert!(d > 0 && d <= self.dim, "bad projection dim");
        let n = self.len();
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            data.extend_from_slice(&self.point(i)[..d]);
        }
        PointCloud::from_flat(d, data)
    }

    /// Bounding box `(mins, maxs)` of the cloud.
    ///
    /// # Panics
    /// Panics on an empty cloud.
    pub fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        assert!(!self.is_empty(), "bounds of empty cloud");
        let mut mins = self.point(0).to_vec();
        let mut maxs = mins.clone();
        for i in 1..self.len() {
            for (d, &v) in self.point(i).iter().enumerate() {
                mins[d] = mins[d].min(v);
                maxs[d] = maxs[d].max(v);
            }
        }
        (mins, maxs)
    }
}

/// Squared Euclidean distance between two slices.
///
/// # Panics
/// Panics (debug builds) if lengths differ.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    sgm_linalg::simd::dist2(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_access() {
        let c = PointCloud::from_flat(3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.dim(), 3);
        assert_eq!(c.point(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn distances() {
        let c = PointCloud::from_flat(2, vec![0.0, 0.0, 3.0, 4.0]);
        assert_eq!(c.dist2(0, 1), 25.0);
        assert_eq!(c.dist2_to(0, &[1.0, 0.0]), 1.0);
    }

    #[test]
    fn push_extends() {
        let mut c = PointCloud::new(2);
        c.push(&[1.0, 2.0]);
        c.push(&[3.0, 4.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.point(1), &[3.0, 4.0]);
    }

    #[test]
    fn subset_and_project() {
        let c = PointCloud::from_flat(3, vec![1.0, 2.0, 9.0, 4.0, 5.0, 8.0, 6.0, 7.0, 7.0]);
        let s = c.subset(&[2, 0]);
        assert_eq!(s.point(0), &[6.0, 7.0, 7.0]);
        assert_eq!(s.point(1), &[1.0, 2.0, 9.0]);
        let p = c.project(2);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.point(1), &[4.0, 5.0]);
    }

    #[test]
    fn bounds_cover_all_points() {
        let c = PointCloud::from_flat(2, vec![0.0, 5.0, -3.0, 2.0, 4.0, -1.0]);
        let (mins, maxs) = c.bounds();
        assert_eq!(mins, vec![-3.0, -1.0]);
        assert_eq!(maxs, vec![4.0, 5.0]);
    }

    #[test]
    fn uniform_box_within_bounds() {
        let mut rng = Rng64::new(1);
        let c = PointCloud::uniform_box(100, 3, -2.0, 2.0, &mut rng);
        assert_eq!(c.len(), 100);
        let (mins, maxs) = c.bounds();
        for d in 0..3 {
            assert!(mins[d] >= -2.0 && maxs[d] <= 2.0);
        }
    }

    #[test]
    #[should_panic]
    fn ragged_buffer_panics() {
        let _ = PointCloud::from_flat(2, vec![1.0, 2.0, 3.0]);
    }
}
