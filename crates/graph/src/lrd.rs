//! Low-resistance-diameter (LRD) decomposition — paper step **S2**.
//!
//! Partitions the PGM into node clusters whose internal effective-resistance
//! diameter is bounded, following the constructive scheme of Alev et al.
//! (ITCS'18) with scalable ER estimates (HyperEF-style; see
//! [`crate::resistance`]).
//!
//! The implementation is level-based, mirroring the paper's hyper-parameter
//! `𝕃` ("LRD level", 10 for LDC, 6 for the annular ring): each level sorts
//! the surviving inter-cluster edges by estimated effective resistance and
//! contracts from the low-resistance end, maintaining a per-cluster
//! ER-diameter upper bound `diam(A ∪ B) ≤ diam(A) + diam(B) + R(e)` and
//! refusing merges that would exceed the level budget. Higher levels relax
//! the budget geometrically, so cluster count decays roughly as `N / 2^𝕃`
//! until the diameter bound binds.

use crate::graph::{Graph, UnionFind};
use crate::resistance::{approx_edge_resistances, ApproxErOptions};
use sgm_obs::{trace, Histogram, TraceLevel};

/// Wall time of each LRD decomposition, ER estimation included
/// (nanoseconds).
static LRD_DECOMPOSE_NS: Histogram = Histogram::new("sgm_graph_lrd_decompose_ns");

/// How edge effective resistances are obtained for the decomposition.
#[derive(Debug, Clone, PartialEq)]
pub enum ErSource {
    /// Exact dense pseudo-inverse (small graphs / tests).
    Exact,
    /// Scalable smoothed-random-projection estimate.
    Approx(ApproxErOptions),
    /// Caller-provided per-edge resistances (must match `g.num_edges()`).
    Provided(Vec<f64>),
}

/// Configuration for [`decompose`].
#[derive(Debug, Clone, PartialEq)]
pub struct LrdConfig {
    /// Number of contraction levels (the paper's `𝕃`).
    pub level: usize,
    /// Effective-resistance source.
    pub er: ErSource,
    /// Base diameter budget as a multiple of the mean edge resistance.
    /// The level-ℓ budget is `budget_scale · mean_R · 2^ℓ`.
    pub budget_scale: f64,
    /// Hard cap on cluster size as a fraction of `n` (guards against one
    /// giant cluster swallowing the graph). 1.0 disables the cap.
    pub max_cluster_frac: f64,
    /// Optional lower bound on the number of clusters; contraction stops
    /// once reached.
    pub min_clusters: usize,
}

impl Default for LrdConfig {
    fn default() -> Self {
        LrdConfig {
            level: 6,
            er: ErSource::Approx(ApproxErOptions::default()),
            budget_scale: 1.0,
            max_cluster_frac: 0.05,
            min_clusters: 16,
        }
    }
}

/// The result of an LRD decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    assignment: Vec<u32>,
    clusters: Vec<Vec<u32>>,
    /// Upper bound on each cluster's internal ER diameter, as tracked
    /// during contraction (same units as the ER estimates used).
    diam_bound: Vec<f64>,
    /// The final level budget that merges were checked against.
    final_budget: f64,
}

impl Clustering {
    /// Builds a clustering directly from an assignment vector (used by
    /// tests and by samplers that need ad-hoc groupings).
    ///
    /// # Panics
    /// Panics if labels are not compact in `[0, max+1)`.
    pub fn from_assignment(assignment: Vec<u32>) -> Self {
        let k = assignment
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1);
        let mut clusters = vec![Vec::new(); k];
        for (i, &c) in assignment.iter().enumerate() {
            clusters[c as usize].push(i as u32);
        }
        assert!(
            clusters.iter().all(|c| !c.is_empty()),
            "labels must be compact"
        );
        Clustering {
            assignment,
            clusters,
            diam_bound: vec![f64::NAN; k],
            final_budget: f64::NAN,
        }
    }

    /// Cluster label of each node.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Members of cluster `c`.
    pub fn cluster(&self, c: usize) -> &[u32] {
        &self.clusters[c]
    }

    /// All clusters.
    pub fn clusters(&self) -> &[Vec<u32>] {
        &self.clusters
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// Tracked ER-diameter upper bound for cluster `c` (NaN when built via
    /// [`Clustering::from_assignment`]).
    pub fn diameter_bound(&self, c: usize) -> f64 {
        self.diam_bound[c]
    }

    /// The budget merges were checked against at the final level.
    pub fn final_budget(&self) -> f64 {
        self.final_budget
    }

    /// Cluster sizes.
    pub fn sizes(&self) -> Vec<usize> {
        self.clusters.iter().map(|c| c.len()).collect()
    }
}

/// Runs the LRD decomposition on `g`.
///
/// # Panics
/// Panics if the graph is empty, or a `Provided` ER vector has the wrong
/// length.
pub fn decompose(g: &Graph, cfg: &LrdConfig) -> Clustering {
    let n = g.num_nodes();
    assert!(n > 0, "empty graph");
    if g.num_edges() == 0 {
        return Clustering::from_assignment((0..n as u32).collect());
    }
    let _span = trace::span(TraceLevel::Full, "graph", "lrd_decompose");
    let t0 = std::time::Instant::now();
    let er: Vec<f64> = match &cfg.er {
        ErSource::Exact => crate::resistance::exact_edge_resistances(g),
        ErSource::Approx(opts) => approx_edge_resistances(g, opts),
        ErSource::Provided(v) => {
            assert_eq!(v.len(), g.num_edges(), "provided ER length");
            v.clone()
        }
    };
    let mean_r = er.iter().sum::<f64>() / er.len() as f64;
    let max_cluster = ((n as f64 * cfg.max_cluster_frac).ceil() as usize).max(2);

    let mut uf = UnionFind::new(n);
    let mut diam = vec![0.0f64; n]; // indexed by current root
    let mut size = vec![1usize; n];

    // Edges sorted ascending by estimated resistance, once.
    let mut order: Vec<usize> = (0..g.num_edges()).collect();
    order.sort_by(|&a, &b| er[a].partial_cmp(&er[b]).unwrap());

    let mut budget = cfg.budget_scale * mean_r;
    for _level in 0..cfg.level.max(1) {
        if uf.num_sets() <= cfg.min_clusters {
            break;
        }
        for &ei in &order {
            if uf.num_sets() <= cfg.min_clusters {
                break;
            }
            let (u, v, _) = g.edge(ei);
            let (ru, rv) = (uf.find(u), uf.find(v));
            if ru == rv {
                continue;
            }
            let merged_diam = diam[ru] + diam[rv] + er[ei];
            if merged_diam > budget {
                continue;
            }
            if size[ru] + size[rv] > max_cluster {
                continue;
            }
            uf.union(ru, rv);
            let root = uf.find(ru);
            diam[root] = merged_diam;
            size[root] = size[ru] + size[rv];
        }
        budget *= 2.0;
    }
    budget /= 2.0; // the last budget actually used

    let assignment = uf.labels();
    let k = assignment.iter().copied().max().unwrap() as usize + 1;
    let mut clusters = vec![Vec::new(); k];
    let mut diam_bound = vec![0.0; k];
    for (i, &c) in assignment.iter().enumerate() {
        clusters[c as usize].push(i as u32);
    }
    for i in 0..n {
        let root = uf.find(i);
        diam_bound[assignment[i] as usize] = diam[root];
    }
    LRD_DECOMPOSE_NS.record_duration(t0.elapsed());
    Clustering {
        assignment,
        clusters,
        diam_bound,
        final_budget: budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{build_knn_graph, KnnConfig, KnnStrategy};
    use crate::points::PointCloud;
    use crate::resistance::exact_pair_resistance;
    use sgm_linalg::rng::Rng64;

    fn two_blob_cloud() -> PointCloud {
        let mut data = Vec::new();
        let mut rng = Rng64::new(21);
        for _ in 0..30 {
            data.push(rng.uniform());
            data.push(rng.uniform());
        }
        for _ in 0..30 {
            data.push(100.0 + rng.uniform());
            data.push(100.0 + rng.uniform());
        }
        PointCloud::from_flat(2, data)
    }

    fn blob_graph() -> Graph {
        build_knn_graph(
            &two_blob_cloud(),
            &KnnConfig {
                k: 5,
                strategy: KnnStrategy::Brute,
                ..KnnConfig::default()
            },
        )
    }

    #[test]
    fn every_node_assigned_exactly_once() {
        let g = blob_graph();
        let c = decompose(&g, &LrdConfig::default());
        assert_eq!(c.num_nodes(), 60);
        let total: usize = c.sizes().iter().sum();
        assert_eq!(total, 60);
        for (i, &lbl) in c.assignment().iter().enumerate() {
            assert!(c.cluster(lbl as usize).contains(&(i as u32)));
        }
    }

    #[test]
    fn clusters_never_span_blobs() {
        let g = blob_graph();
        let c = decompose(
            &g,
            &LrdConfig {
                min_clusters: 2,
                max_cluster_frac: 1.0,
                level: 12,
                ..LrdConfig::default()
            },
        );
        // The two blobs are disconnected components — no cluster may mix them.
        let (comp, _) = g.components();
        for cl in c.clusters() {
            let c0 = comp[cl[0] as usize];
            assert!(cl.iter().all(|&i| comp[i as usize] == c0));
        }
    }

    #[test]
    fn higher_level_gives_fewer_clusters() {
        let g = blob_graph();
        let count = |lvl: usize| {
            decompose(
                &g,
                &LrdConfig {
                    level: lvl,
                    min_clusters: 1,
                    max_cluster_frac: 1.0,
                    er: ErSource::Exact,
                    ..LrdConfig::default()
                },
            )
            .num_clusters()
        };
        let c1 = count(1);
        let c4 = count(4);
        let c10 = count(10);
        assert!(c1 >= c4, "{c1} < {c4}");
        assert!(c4 >= c10, "{c4} < {c10}");
        assert!(c10 >= 2); // two components can never merge
    }

    #[test]
    fn exact_er_diameter_within_tracked_bound() {
        // On a small graph with exact ER inputs, the true pairwise ER inside
        // each cluster must not exceed the tracked diameter bound.
        let mut rng = Rng64::new(5);
        let cloud = PointCloud::uniform_box(40, 2, 0.0, 1.0, &mut rng);
        let g = build_knn_graph(
            &cloud,
            &KnnConfig {
                k: 4,
                strategy: KnnStrategy::Brute,
                ..KnnConfig::default()
            },
        );
        let c = decompose(
            &g,
            &LrdConfig {
                level: 3,
                er: ErSource::Exact,
                min_clusters: 4,
                ..LrdConfig::default()
            },
        );
        for (ci, cl) in c.clusters().iter().enumerate() {
            if cl.len() < 2 {
                continue;
            }
            let bound = c.diameter_bound(ci);
            for i in 0..cl.len() {
                for j in i + 1..cl.len() {
                    let r = exact_pair_resistance(&g, cl[i] as usize, cl[j] as usize);
                    assert!(
                        r <= bound + 1e-6,
                        "cluster {ci}: pair ER {r} exceeds bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn min_clusters_respected() {
        let g = blob_graph();
        let c = decompose(
            &g,
            &LrdConfig {
                level: 20,
                min_clusters: 10,
                max_cluster_frac: 1.0,
                ..LrdConfig::default()
            },
        );
        assert!(c.num_clusters() >= 10);
    }

    #[test]
    fn max_cluster_cap_respected() {
        let g = blob_graph();
        let c = decompose(
            &g,
            &LrdConfig {
                level: 20,
                min_clusters: 1,
                max_cluster_frac: 0.1, // ≤ 6 nodes each
                ..LrdConfig::default()
            },
        );
        for s in c.sizes() {
            assert!(s <= 6, "cluster size {s}");
        }
    }

    #[test]
    fn edgeless_graph_is_singletons() {
        let g = Graph::from_edges(5, &[]);
        let c = decompose(&g, &LrdConfig::default());
        assert_eq!(c.num_clusters(), 5);
    }

    #[test]
    fn provided_er_is_used() {
        // Path 0-1-2 with fake ERs forcing only edge (0,1) to contract.
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let c = decompose(
            &g,
            &LrdConfig {
                level: 1,
                er: ErSource::Provided(vec![0.01, 100.0]),
                budget_scale: 1.0,      // budget = mean ≈ 50; both could merge…
                max_cluster_frac: 0.67, // …but cap of 2 blocks the second merge
                min_clusters: 1,
            },
        );
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.assignment()[0], c.assignment()[1]);
        assert_ne!(c.assignment()[0], c.assignment()[2]);
    }

    #[test]
    fn from_assignment_roundtrip() {
        let c = Clustering::from_assignment(vec![0, 1, 0, 1, 2]);
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.cluster(0), &[0, 2]);
        assert_eq!(c.cluster(2), &[4]);
    }
}
