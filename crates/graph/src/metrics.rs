//! Cluster / partition quality metrics.
//!
//! The LRD guarantee (Alev et al.) is that bounded-ER-diameter clusters can
//! be formed by removing only a constant fraction of edges *without
//! significantly impacting graph conductance*. These metrics let the tests
//! and the ablation benches check both halves of that claim.

use crate::graph::Graph;
use crate::lrd::Clustering;

/// Total weight of edges crossing between `set` and its complement.
pub fn cut_weight(g: &Graph, in_set: &[bool]) -> f64 {
    g.edges()
        .filter(|&(u, v, _)| in_set[u] != in_set[v])
        .map(|(_, _, w)| w)
        .sum()
}

/// Weighted volume (sum of weighted degrees) of a node set.
pub fn volume(g: &Graph, in_set: &[bool]) -> f64 {
    (0..g.num_nodes())
        .filter(|&u| in_set[u])
        .map(|u| g.weighted_degree(u))
        .sum()
}

/// Conductance `φ(S) = cut(S) / min(vol(S), vol(S̄))` of a node set.
/// Returns 0 for empty or full sets.
pub fn conductance(g: &Graph, in_set: &[bool]) -> f64 {
    let cut = cut_weight(g, in_set);
    let vol_s = volume(g, in_set);
    let vol_c = volume(g, &in_set.iter().map(|b| !b).collect::<Vec<_>>());
    let denom = vol_s.min(vol_c);
    if denom <= 0.0 {
        0.0
    } else {
        cut / denom
    }
}

/// The fraction of total edge weight cut by a clustering (the "constant
/// fraction of edges removed" in the LRD theorem).
pub fn cut_fraction(g: &Graph, clustering: &Clustering) -> f64 {
    let total = g.total_weight();
    if total <= 0.0 {
        return 0.0;
    }
    let a = clustering.assignment();
    let cut: f64 = g
        .edges()
        .filter(|&(u, v, _)| a[u] != a[v])
        .map(|(_, _, w)| w)
        .sum();
    cut / total
}

/// Summary statistics of cluster sizes: `(min, median, max)`.
///
/// # Panics
/// Panics if the clustering is empty.
pub fn size_summary(clustering: &Clustering) -> (usize, usize, usize) {
    let mut sizes = clustering.sizes();
    assert!(!sizes.is_empty(), "empty clustering");
    sizes.sort_unstable();
    (
        sizes[0],
        sizes[sizes.len() / 2],
        *sizes.last().expect("nonempty"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn barbell() -> Graph {
        let mut edges = Vec::new();
        for a in 0..4usize {
            for b in a + 1..4 {
                edges.push((a, b, 1.0));
                edges.push((a + 4, b + 4, 1.0));
            }
        }
        edges.push((3, 4, 1.0));
        Graph::from_edges(8, &edges)
    }

    #[test]
    fn cut_and_volume_on_barbell() {
        let g = barbell();
        let left: Vec<bool> = (0..8).map(|i| i < 4).collect();
        assert_eq!(cut_weight(&g, &left), 1.0);
        // Left volume: 3 nodes of degree 3 + one of degree 4 = 13.
        assert_eq!(volume(&g, &left), 13.0);
    }

    #[test]
    fn conductance_of_natural_cut_is_low() {
        let g = barbell();
        let left: Vec<bool> = (0..8).map(|i| i < 4).collect();
        let phi = conductance(&g, &left);
        assert!((phi - 1.0 / 13.0).abs() < 1e-12);
        // A bad cut (single node) has much higher conductance.
        let single: Vec<bool> = (0..8).map(|i| i == 0).collect();
        assert!(conductance(&g, &single) > phi);
    }

    #[test]
    fn empty_set_conductance_zero() {
        let g = barbell();
        assert_eq!(conductance(&g, &[false; 8]), 0.0);
        assert_eq!(conductance(&g, &[true; 8]), 0.0);
    }

    #[test]
    fn cut_fraction_of_component_split_is_zero() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let c = Clustering::from_assignment(vec![0, 0, 1, 1]);
        assert_eq!(cut_fraction(&g, &c), 0.0);
        let c2 = Clustering::from_assignment(vec![0, 1, 0, 1]);
        assert_eq!(cut_fraction(&g, &c2), 1.0);
    }

    #[test]
    fn size_summary_sorted() {
        let c = Clustering::from_assignment(vec![0, 0, 0, 1, 2, 2]);
        assert_eq!(size_summary(&c), (1, 2, 3));
    }
}
