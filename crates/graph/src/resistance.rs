//! Effective-resistance computation (paper Definition 3.1).
//!
//! Three tiers, trading accuracy for scalability:
//!
//! 1. [`exact_edge_resistances`] — dense Laplacian pseudo-inverse, `O(n³)`.
//!    The oracle for everything else.
//! 2. [`cg_edge_resistance`] — one deflated-CG solve per query edge;
//!    accurate and matrix-free.
//! 3. [`approx_edge_resistances`] — the scalable estimator used in
//!    production (paper §3.3, following HyperEF): draw a few random
//!    vectors, orthogonalise against the constant vector, low-pass filter
//!    them with weighted-Jacobi smoothing of `L x = 0`, and read edge
//!    scores off the smoothed embedding:
//!    `R̂(u,v) ∝ Σ_k (x_k(u) − x_k(v))²`.
//!    The raw scores are then calibrated with **Foster's theorem**
//!    (`Σ_e w_e R_e = n − 1` on a connected graph) so their scale matches
//!    true resistances. Runtime is `O(q · t · |E|)` — linear in the edge
//!    count for fixed smoothing depth `t` and probe count `q`.

use crate::graph::Graph;
use crate::laplacian::laplacian;
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_linalg::solve::{conjugate_gradient, CgOptions};
use sgm_linalg::sparse::Csr;
use sgm_obs::{trace, Histogram, TraceLevel};

/// Auto-mode work cutoff (≈ probe-sweep edge touches) for the parallel
/// paths of [`approx_edge_resistances`].
const ER_PAR_WORK: usize = 1 << 18;

/// Exact effective resistance for every edge of `g` via the dense
/// pseudo-inverse. `O(n³)` — test-oracle use only.
///
/// # Panics
/// Panics if the graph has no nodes.
pub fn exact_edge_resistances(g: &Graph) -> Vec<f64> {
    assert!(g.num_nodes() > 0, "empty graph");
    let l = laplacian(g).to_dense();
    let pinv = l.sym_pinv(1e-9);
    g.edges()
        .map(|(u, v, _)| pair_resistance_from_pinv(&pinv, u, v))
        .collect()
}

/// Exact effective resistance between an arbitrary node pair via the dense
/// pseudo-inverse (`O(n³)`; oracle).
pub fn exact_pair_resistance(g: &Graph, u: usize, v: usize) -> f64 {
    let l = laplacian(g).to_dense();
    let pinv = l.sym_pinv(1e-9);
    pair_resistance_from_pinv(&pinv, u, v)
}

fn pair_resistance_from_pinv(pinv: &Matrix, u: usize, v: usize) -> f64 {
    pinv.get(u, u) + pinv.get(v, v) - 2.0 * pinv.get(u, v)
}

/// Effective resistance of one node pair by a deflated-CG solve of
/// `L x = e_u − e_v`; `R = (e_u − e_v)ᵀ x`.
///
/// # Panics
/// Panics if `u == v` or either index is out of range.
pub fn cg_edge_resistance(g: &Graph, u: usize, v: usize) -> f64 {
    let n = g.num_nodes();
    assert!(u < n && v < n && u != v, "bad node pair");
    let l = laplacian(g);
    let mut b = vec![0.0; n];
    b[u] = 1.0;
    b[v] = -1.0;
    let opts = CgOptions {
        deflate_constant: true,
        max_iters: 4 * n,
        tol: 1e-10,
        jacobi_diag: Some(
            l.diagonal()
                .into_iter()
                .map(|d| if d > 0.0 { d } else { 1.0 })
                .collect(),
        ),
    };
    let res = conjugate_gradient(&l, &b, &opts);
    res.solution[u] - res.solution[v]
}

/// Options for [`approx_edge_resistances`].
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxErOptions {
    /// Number of random probe vectors (embedding dimension).
    pub num_probes: usize,
    /// Weighted-Jacobi smoothing sweeps applied to each probe.
    pub smoothing_sweeps: usize,
    /// Jacobi damping factor.
    pub omega: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ApproxErOptions {
    fn default() -> Self {
        ApproxErOptions {
            num_probes: 12,
            smoothing_sweeps: 40,
            omega: 0.66,
            seed: 0xE5,
        }
    }
}

/// Scalable approximate effective resistance for every edge (HyperEF-style
/// smoothed random projections, Foster-calibrated). Linear in `|E|`.
///
/// The *ordering* of the returned scores is what LRD consumes; absolute
/// accuracy is secondary but the Foster calibration keeps the scale
/// comparable with exact resistances on connected graphs.
///
/// # Panics
/// Panics if the graph has no edges.
pub fn approx_edge_resistances(g: &Graph, opts: &ApproxErOptions) -> Vec<f64> {
    assert!(g.num_edges() > 0, "graph has no edges");
    /// Wall time of each randomized ER estimation (nanoseconds).
    static ER_PROBE_NS: Histogram = Histogram::new("sgm_graph_er_probe_ns");
    let _span = trace::span(TraceLevel::Full, "graph", "er_probe");
    let t0 = std::time::Instant::now();
    let n = g.num_nodes();
    let l = laplacian(g);
    let zeros = vec![0.0; n];
    // Each probe draws from its own RNG forked (serially) from the seed,
    // so probes are independent work items: the smoothing — the dominant
    // O(t·|E|) cost per probe — fans out to the pool and the embedding
    // is bit-identical for every thread count.
    let mut root = Rng64::new(opts.seed);
    let probe_rngs: Vec<Rng64> = (0..opts.num_probes).map(|_| root.fork()).collect();
    let probe = |p: usize| -> Vec<f64> {
        let mut rng = probe_rngs[p].clone();
        let mut x: Vec<f64> = (0..n).map(|_| rng.sign()).collect();
        remove_mean(&mut x);
        smooth(&l, &zeros, &mut x, opts.omega, opts.smoothing_sweeps);
        remove_mean(&mut x);
        x
    };
    let probe_work = opts
        .num_probes
        .saturating_mul(opts.smoothing_sweeps.max(1))
        .saturating_mul(g.num_edges().max(n));
    let embedding: Vec<Vec<f64>> = match sgm_par::current().pool(probe_work, ER_PAR_WORK) {
        Some(pool) => pool.par_map_indexed(opts.num_probes, 1, probe),
        None => (0..opts.num_probes).map(probe).collect(),
    };
    let edge_ends: Vec<(usize, usize)> = g.edges().map(|(u, v, _)| (u, v)).collect();
    let score = |ei: usize| -> f64 {
        let (u, v) = edge_ends[ei];
        embedding
            .iter()
            .map(|x| {
                let d = x[u] - x[v];
                d * d
            })
            .sum::<f64>()
    };
    let score_work = edge_ends.len().saturating_mul(opts.num_probes);
    let mut raw: Vec<f64> = match sgm_par::current().pool(score_work, ER_PAR_WORK) {
        Some(pool) => pool.par_map_indexed(edge_ends.len(), 64, score),
        None => (0..edge_ends.len()).map(score).collect(),
    };
    // Foster calibration: Σ_e w_e R_e = n − c (c = number of components).
    let (_, comps) = g.components();
    let target = (n.saturating_sub(comps)) as f64;
    let mass: f64 = g.edges().zip(raw.iter()).map(|((_, _, w), &r)| w * r).sum();
    if mass > 1e-300 && target > 0.0 {
        let scale = target / mass;
        for r in &mut raw {
            *r *= scale;
        }
    }
    ER_PROBE_NS.record_duration(t0.elapsed());
    raw
}

fn remove_mean(x: &mut [f64]) {
    let m = x.iter().sum::<f64>() / x.len() as f64;
    for v in x {
        *v -= m;
    }
}

fn smooth(l: &Csr, b: &[f64], x: &mut [f64], omega: f64, sweeps: usize) {
    sgm_linalg::solve::jacobi_smooth(l, b, x, omega, sweeps);
}

/// Spearman rank correlation between two score vectors — used to validate
/// that approximate resistances preserve the ordering of exact ones.
///
/// # Panics
/// Panics if lengths differ or are < 2.
pub fn rank_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(a.len() >= 2, "need at least two entries");
    let rank = |xs: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).unwrap());
        let mut r = vec![0.0; xs.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let ra = rank(a);
    let rb = rank(b);
    let n = a.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..a.len() {
        let xa = ra[i] - mean;
        let xb = rb[i] - mean;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    num / (da.sqrt() * db.sqrt()).max(1e-300)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1, 1.0)).collect::<Vec<_>>())
    }

    #[test]
    fn exact_path_resistances() {
        // Unit path: every edge has R = 1; ends have R = n-1.
        let g = path(5);
        let rs = exact_edge_resistances(&g);
        for r in rs {
            assert!((r - 1.0).abs() < 1e-8);
        }
        assert!((exact_pair_resistance(&g, 0, 4) - 4.0).abs() < 1e-8);
    }

    #[test]
    fn exact_triangle_resistance() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        for r in exact_edge_resistances(&g) {
            assert!((r - 2.0 / 3.0).abs() < 1e-8);
        }
    }

    #[test]
    fn weighted_parallel_edges() {
        // Two nodes joined by weight 2 (conductance 2) => R = 1/2.
        let g = Graph::from_edges(2, &[(0, 1, 2.0)]);
        let rs = exact_edge_resistances(&g);
        assert!((rs[0] - 0.5).abs() < 1e-8);
    }

    #[test]
    fn cg_matches_exact() {
        let g = Graph::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 1.0),
                (3, 4, 0.5),
                (4, 5, 1.0),
                (0, 5, 1.0),
                (1, 4, 1.5),
            ],
        );
        for (u, v, _) in g.edges() {
            let e = exact_pair_resistance(&g, u, v);
            let c = cg_edge_resistance(&g, u, v);
            assert!((e - c).abs() < 1e-6, "edge ({u},{v}): {e} vs {c}");
        }
    }

    #[test]
    fn foster_sum_holds_exactly() {
        let g = Graph::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 3.0),
                (2, 3, 1.0),
                (3, 4, 2.0),
                (4, 0, 1.0),
                (1, 3, 1.0),
            ],
        );
        let rs = exact_edge_resistances(&g);
        let sum: f64 = g.edges().zip(&rs).map(|((_, _, w), r)| w * r).sum();
        assert!((sum - 4.0).abs() < 1e-6, "Foster sum {sum}");
    }

    #[test]
    fn approx_preserves_ordering_on_barbell() {
        // Barbell: two K4 cliques joined by one bridge. The bridge must get
        // the highest resistance estimate.
        let mut edges = Vec::new();
        for a in 0..4usize {
            for b in a + 1..4 {
                edges.push((a, b, 1.0));
                edges.push((a + 4, b + 4, 1.0));
            }
        }
        edges.push((3, 4, 1.0)); // bridge
        let g = Graph::from_edges(8, &edges);
        let approx = approx_edge_resistances(&g, &ApproxErOptions::default());
        let bridge_idx = g
            .edges()
            .position(|(u, v, _)| (u, v) == (3, 4))
            .expect("bridge present");
        let max = approx.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            (approx[bridge_idx] - max).abs() < 1e-12,
            "bridge {} not max {max}",
            approx[bridge_idx]
        );
    }

    #[test]
    fn approx_rank_correlates_with_exact() {
        let mut rng = Rng64::new(3);
        let cloud = crate::points::PointCloud::uniform_box(120, 2, 0.0, 1.0, &mut rng);
        let g = crate::knn::build_knn_graph(
            &cloud,
            &crate::knn::KnnConfig {
                k: 6,
                strategy: crate::knn::KnnStrategy::Brute,
                ..Default::default()
            },
        );
        let exact = exact_edge_resistances(&g);
        let approx = approx_edge_resistances(&g, &ApproxErOptions::default());
        let rho = rank_correlation(&exact, &approx);
        assert!(rho > 0.6, "rank correlation {rho}");
    }

    #[test]
    fn approx_foster_calibration() {
        let g = path(40);
        let approx = approx_edge_resistances(&g, &ApproxErOptions::default());
        let sum: f64 = g.edges().zip(&approx).map(|((_, _, w), r)| w * r).sum();
        assert!((sum - 39.0).abs() < 1e-9, "calibrated sum {sum}");
    }

    #[test]
    fn rank_correlation_extremes() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((rank_correlation(&a, &b) - 1.0).abs() < 1e-12);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((rank_correlation(&a, &c) + 1.0).abs() < 1e-12);
    }
}
