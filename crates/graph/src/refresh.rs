//! Blocked, incrementally-refreshed S1+S2: delta kNN maintenance
//! ([`crate::incremental`]) plus a blocked LRD decomposition that
//! recomputes only dirty blocks.
//!
//! ## Blocking
//!
//! Points are assigned once, at full build, to `⌈N / block_size⌉`
//! **spatial** blocks: ids are sorted by coarse grid cell (then id) and
//! the sorted order is cut into balanced contiguous runs. Spatial
//! blocking means (a) most kNN edges are intra-block, so per-block
//! decompositions see almost the whole PGM, and (b) the physically
//! clustered dirty regions PINN refreshes produce touch few blocks.
//! Block membership is *frozen* between full builds — movers keep their
//! original block so clean-block caches stay valid.
//!
//! ## Per-block decomposition and deterministic merge
//!
//! Each dirty block runs the standard [`decompose`] on its intra-block
//! subgraph with a per-block-seeded ER estimate; clean blocks reuse
//! their cached result, which is bit-identical to recomputing because a
//! clean block's intra-block subgraph is unchanged (every member's
//! neighbour list is unchanged — that is what "clean" means). Dirty
//! blocks fan out over `sgm-par` in chunk order; the cross-block merge
//! then runs **serially** on a quotient graph whose edges are sorted by
//! `(resistance proxy, cluster u, cluster v)` — a total order, so the
//! merge is a pure function of the block results and the PR 1/4
//! bit-determinism matrix stays green for every thread count. The proxy
//! is `1/w = dist + eps`, an upper bound on the edge's effective
//! resistance, mirroring the budgeted contraction of [`decompose`] at
//! the cluster level.

use crate::graph::{Graph, UnionFind};
use crate::incremental::{IncrementalKnn, IncrementalKnnConfig};
use crate::knn::{build_knn_graph, KnnConfig};
use crate::lrd::{decompose, Clustering, ErSource, LrdConfig};
use crate::points::{Coords, PointCloud};
use sgm_obs::Histogram;

/// Wall time of the blocked LRD stage per refresh (nanoseconds).
static LRD_BLOCKED_NS: Histogram = Histogram::new("sgm_graph_lrd_blocked_ns");
/// Blocks recomputed per refresh.
static BLOCKS_RECOMPUTED: Histogram = Histogram::new("sgm_graph_refresh_blocks_recomputed");

/// Tuning knobs for the incremental path (kNN + LRD configs ride in
/// [`RefreshConfig`] unchanged).
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshOptions {
    /// Target points per LRD block.
    pub block_size: usize,
    /// Displacement below which a point keeps its stale reference
    /// position (`0.0` = exact; see [`crate::incremental`]).
    pub displacement_bound: f64,
    /// Compact f32 coordinate storage (`SGM_DIST_F32` default).
    pub f32_storage: bool,
}

impl Default for RefreshOptions {
    fn default() -> Self {
        RefreshOptions {
            block_size: 2048,
            displacement_bound: 0.0,
            f32_storage: crate::points::dist_f32_from_env(),
        }
    }
}

/// Full configuration of a [`GraphRefresher`].
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshConfig {
    /// kNN parameters (`k`, `weight_eps`; the strategy is only used by
    /// the dim > 4 fallback — the incremental path is grid-exact).
    pub knn: KnnConfig,
    /// LRD parameters. `er` must be `Exact` or `Approx` (per-block
    /// seeds are derived from the `Approx` seed); `Provided` cannot be
    /// split across blocks.
    pub lrd: LrdConfig,
    /// Incremental-path tuning.
    pub opts: RefreshOptions,
}

/// Statistics from one [`GraphRefresher::refresh`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RefreshStats {
    /// True when this refresh rebuilt S1 from scratch (first call,
    /// shape change, or the dim > 4 fallback).
    pub full_build: bool,
    /// Cloud size.
    pub points_total: usize,
    /// Points whose displacement exceeded the bound.
    pub points_moved: usize,
    /// Points re-queried against the grid.
    pub points_rescored: usize,
    /// Adjacency slots rewritten.
    pub edges_patched: usize,
    /// LRD blocks in the current blocking (0 in the fallback path).
    pub blocks_total: usize,
    /// Blocks whose local decomposition was recomputed.
    pub blocks_recomputed: usize,
    /// Wall seconds of the kNN stage (build or patch).
    pub knn_seconds: f64,
    /// Wall seconds of the LRD stage (blocked decompose + merge).
    pub lrd_seconds: f64,
}

impl RefreshStats {
    /// Dirty fraction of this refresh (`rescored / total`; 1.0 for a
    /// full build).
    pub fn dirty_fraction(&self) -> f64 {
        if self.full_build {
            1.0
        } else {
            self.points_rescored as f64 / self.points_total.max(1) as f64
        }
    }
}

/// Cached local decomposition of one block.
#[derive(Debug, Clone)]
struct BlockResult {
    /// Local cluster label per block member (member order).
    assignment: Vec<u32>,
    /// ER-diameter bound per local cluster (NaN mapped to 0.0).
    diam: Vec<f64>,
}

/// A persistent S1+S2 engine: owns the incremental kNN structure, the
/// frozen blocking and the per-block decomposition cache.
#[derive(Debug)]
pub struct GraphRefresher {
    cfg: RefreshConfig,
    knn: Option<IncrementalKnn>,
    /// Member ids per block (frozen between full builds).
    blocks: Vec<Vec<u32>>,
    /// Block id of each point.
    block_of: Vec<u32>,
    /// Position of each point inside its block's member list.
    pos_in_block: Vec<u32>,
    cache: Vec<Option<BlockResult>>,
    /// Set by [`GraphRefresher::invalidate_blocks`]: the next refresh
    /// recomputes every block regardless of dirtiness.
    force_all_blocks: bool,
}

impl GraphRefresher {
    /// A refresher with no graph state yet; the first
    /// [`GraphRefresher::refresh`] performs the full build.
    pub fn new(cfg: RefreshConfig) -> Self {
        GraphRefresher {
            cfg,
            knn: None,
            blocks: Vec::new(),
            block_of: Vec::new(),
            pos_in_block: Vec::new(),
            cache: Vec::new(),
            force_all_blocks: false,
        }
    }

    /// The configuration this refresher was built with.
    pub fn config(&self) -> &RefreshConfig {
        &self.cfg
    }

    /// Drops every cached block decomposition (test hook: a refresh
    /// after this recomputes all blocks and must reproduce the cached
    /// path bit-for-bit).
    pub fn invalidate_blocks(&mut self) {
        for c in self.cache.iter_mut() {
            *c = None;
        }
        self.force_all_blocks = true;
    }

    /// Refreshes S1+S2 against `cloud`: a delta patch when the engine
    /// is warm and the shape is unchanged, a full (re)build otherwise.
    ///
    /// # Panics
    /// Panics if the cloud is empty, or `cfg.lrd.er` is
    /// `ErSource::Provided` on the blocked (dim ≤ 4) path.
    pub fn refresh(&mut self, cloud: &PointCloud) -> (Clustering, RefreshStats) {
        assert!(!cloud.is_empty(), "empty cloud");
        if cloud.dim() > 4 {
            // The grid engine is for spatial clouds; high-dimensional
            // feature clouds take the classic batch path.
            return self.refresh_fallback(cloud);
        }
        let mut stats = RefreshStats {
            points_total: cloud.len(),
            ..RefreshStats::default()
        };

        let t_knn = std::time::Instant::now();
        let warm = self.knn.as_ref().is_some_and(|e| e.is_compatible(cloud));
        if warm {
            let delta = self.knn.as_mut().unwrap().update(cloud);
            stats.points_moved = delta.moved;
            stats.points_rescored = delta.rescored;
            stats.edges_patched = delta.edges_patched;
        } else {
            let knn_cfg = IncrementalKnnConfig {
                k: self.cfg.knn.k,
                weight_eps: self.cfg.knn.weight_eps,
                f32_storage: self.cfg.opts.f32_storage,
                displacement_bound: self.cfg.opts.displacement_bound,
            };
            let engine = IncrementalKnn::build(cloud, &knn_cfg);
            self.freeze_blocking(engine.coords());
            self.knn = Some(engine);
            stats.full_build = true;
            stats.points_rescored = cloud.len();
        }
        stats.knn_seconds = t_knn.elapsed().as_secs_f64();

        let t_lrd = std::time::Instant::now();
        let knn = self.knn.as_ref().unwrap();
        // Dirty blocks: every block holding a dirty point (all of them
        // after a full build, none after a no-op patch).
        let dirty_blocks: Vec<u32> = if stats.full_build || self.force_all_blocks {
            self.force_all_blocks = false;
            (0..self.blocks.len() as u32).collect()
        } else {
            let mut flags = vec![false; self.blocks.len()];
            for &i in knn.last_dirty() {
                flags[self.block_of[i as usize] as usize] = true;
            }
            (0..self.blocks.len() as u32)
                .filter(|&b| flags[b as usize])
                .collect()
        };
        stats.blocks_total = self.blocks.len();
        stats.blocks_recomputed = dirty_blocks.len();

        let global_cap =
            ((cloud.len() as f64 * self.cfg.lrd.max_cluster_frac).ceil() as usize).max(2);
        let compute = |&b: &u32| -> BlockResult {
            decompose_block(
                knn,
                &self.blocks[b as usize],
                &self.block_of,
                &self.pos_in_block,
                b,
                &self.cfg.lrd,
                global_cap,
            )
        };
        // Chunk-ordered fan-out over dirty blocks; results land back in
        // dirty-list order regardless of thread count.
        let work = dirty_blocks
            .len()
            .saturating_mul(self.cfg.opts.block_size * self.cfg.knn.k * 8);
        let results: Vec<BlockResult> = match sgm_par::current().pool(work, 1 << 16) {
            Some(pool) => {
                pool.par_map_indexed(dirty_blocks.len(), 1, |x| compute(&dirty_blocks[x]))
            }
            None => dirty_blocks.iter().map(compute).collect(),
        };
        for (r, &b) in results.into_iter().zip(dirty_blocks.iter()) {
            self.cache[b as usize] = Some(r);
        }

        let clustering = self.merge_blocks(cloud.len());
        stats.lrd_seconds = t_lrd.elapsed().as_secs_f64();
        LRD_BLOCKED_NS.record_duration(t_lrd.elapsed());
        BLOCKS_RECOMPUTED.record(stats.blocks_recomputed as u64);
        (clustering, stats)
    }

    /// Classic batch path for clouds the grid engine does not serve.
    fn refresh_fallback(&mut self, cloud: &PointCloud) -> (Clustering, RefreshStats) {
        let t0 = std::time::Instant::now();
        let g = build_knn_graph(cloud, &self.cfg.knn);
        let knn_seconds = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let c = decompose(&g, &self.cfg.lrd);
        let stats = RefreshStats {
            full_build: true,
            points_total: cloud.len(),
            points_rescored: cloud.len(),
            knn_seconds,
            lrd_seconds: t1.elapsed().as_secs_f64(),
            ..RefreshStats::default()
        };
        (c, stats)
    }

    /// (Re)computes the spatial blocking over the engine's reference
    /// coordinates and clears the block cache.
    fn freeze_blocking(&mut self, coords: &Coords) {
        let n = coords.len();
        let dim = coords.dim();
        let num_blocks = n.div_ceil(self.cfg.opts.block_size.max(1)).max(1);
        // Coarse grid with ~one cell per block; sorting by (cell, id)
        // groups spatial neighbourhoods into contiguous runs.
        let per_axis = (num_blocks as f64).powf(1.0 / dim as f64).ceil().max(1.0) as usize;
        let (mins, maxs) = coords.bounds();
        let widths: Vec<f64> = (0..dim)
            .map(|d| (maxs[d] - mins[d]).max(1e-12) / per_axis as f64)
            .collect();
        let cell = |i: usize| -> usize {
            let mut c = 0usize;
            for d in 0..dim {
                c = c * per_axis
                    + (((coords.get(i, d) - mins[d]) / widths[d]) as usize).min(per_axis - 1);
            }
            c
        };
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&i| (cell(i as usize), i));
        self.blocks = (0..num_blocks)
            .map(|b| order[b * n / num_blocks..(b + 1) * n / num_blocks].to_vec())
            .collect();
        self.block_of = vec![0; n];
        self.pos_in_block = vec![0; n];
        for (b, members) in self.blocks.iter().enumerate() {
            for (p, &i) in members.iter().enumerate() {
                self.block_of[i as usize] = b as u32;
                self.pos_in_block[i as usize] = p as u32;
            }
        }
        self.cache = vec![None; num_blocks];
    }

    /// Serial deterministic quotient-graph merge of the cached block
    /// decompositions along cross-block kNN edges.
    fn merge_blocks(&self, n: usize) -> Clustering {
        let knn = self.knn.as_ref().unwrap();
        // Global cluster ids: block-local labels offset by a running base.
        let mut base = vec![0u32; self.blocks.len() + 1];
        for (b, r) in self.cache.iter().enumerate() {
            let r = r.as_ref().expect("all blocks decomposed");
            base[b + 1] = base[b] + r.diam.len() as u32;
        }
        let num_clusters = base[self.blocks.len()] as usize;
        let gid: Vec<u32> = (0..n)
            .map(|i| {
                let b = self.block_of[i] as usize;
                base[b] + self.cache[b].as_ref().unwrap().assignment[self.pos_in_block[i] as usize]
            })
            .collect();

        let mut diam = vec![0.0f64; num_clusters];
        let mut size = vec![0usize; num_clusters];
        for (b, r) in self.cache.iter().enumerate() {
            let r = r.as_ref().unwrap();
            for (c, &d) in r.diam.iter().enumerate() {
                diam[(base[b] + c as u32) as usize] = d;
            }
        }
        for &g in &gid {
            size[g as usize] += 1;
        }

        // Cross-block edges as quotient edges, proxy r = dist + eps
        // (= 1/w, an ER upper bound).
        let eps = self.cfg.knn.weight_eps;
        let mut cross: Vec<(f64, u32, u32)> = Vec::new();
        for i in 0..n {
            let (idx, d2) = knn.neighbors(i);
            for (s, &j) in idx.iter().enumerate() {
                let j = j as usize;
                if self.block_of[i] == self.block_of[j] {
                    continue;
                }
                // Canonical emission: each unordered pair once.
                if j < i {
                    let (jn, _) = knn.neighbors(j);
                    if jn.contains(&(i as u32)) {
                        continue;
                    }
                }
                let (gu, gv) = (gid[i].min(gid[j]), gid[i].max(gid[j]));
                cross.push((d2[s].sqrt() + eps, gu, gv));
            }
        }

        let mut uf = UnionFind::new(num_clusters);
        if !cross.is_empty() {
            // Total order ⇒ the merge is schedule-independent.
            cross.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap()
                    .then(a.1.cmp(&b.1))
                    .then(a.2.cmp(&b.2))
            });
            let mean_r = cross.iter().map(|e| e.0).sum::<f64>() / cross.len() as f64;
            let mut budget = self.cfg.lrd.budget_scale * mean_r;
            let global_cap = ((n as f64 * self.cfg.lrd.max_cluster_frac).ceil() as usize).max(2);
            for _level in 0..self.cfg.lrd.level.max(1) {
                if uf.num_sets() <= self.cfg.lrd.min_clusters {
                    break;
                }
                for &(r, gu, gv) in &cross {
                    if uf.num_sets() <= self.cfg.lrd.min_clusters {
                        break;
                    }
                    let (ru, rv) = (uf.find(gu as usize), uf.find(gv as usize));
                    if ru == rv {
                        continue;
                    }
                    let merged_diam = diam[ru] + diam[rv] + r;
                    if merged_diam > budget || size[ru] + size[rv] > global_cap {
                        continue;
                    }
                    uf.union(ru, rv);
                    let root = uf.find(ru);
                    diam[root] = merged_diam;
                    size[root] = size[ru] + size[rv];
                }
                budget *= 2.0;
            }
        }

        // Compact labels by first occurrence in ascending node order.
        let mut label_of_root: Vec<u32> = vec![u32::MAX; num_clusters];
        let mut next = 0u32;
        let assignment: Vec<u32> = (0..n)
            .map(|i| {
                let root = uf.find(gid[i] as usize);
                if label_of_root[root] == u32::MAX {
                    label_of_root[root] = next;
                    next += 1;
                }
                label_of_root[root]
            })
            .collect();
        Clustering::from_assignment(assignment)
    }
}

/// Runs the standard LRD decomposition on one block's intra-block
/// subgraph, with a per-block-derived ER seed so block results are
/// independent of which other blocks recompute.
fn decompose_block(
    knn: &IncrementalKnn,
    members: &[u32],
    block_of: &[u32],
    pos_in_block: &[u32],
    block_id: u32,
    lrd: &LrdConfig,
    global_cap: usize,
) -> BlockResult {
    let b = block_of[members[0] as usize];
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for &i in members {
        let i = i as usize;
        let (idx, d2) = knn.neighbors(i);
        for (s, &j) in idx.iter().enumerate() {
            let j = j as usize;
            if block_of[j] != b {
                continue;
            }
            if j < i {
                let (jn, _) = knn.neighbors(j);
                if jn.contains(&(i as u32)) {
                    continue; // mutual pair: the smaller endpoint owns it
                }
            }
            edges.push((
                pos_in_block[i] as usize,
                pos_in_block[j] as usize,
                knn.weight(d2[s]),
            ));
        }
    }
    let g = Graph::from_edges(members.len(), &edges);
    let er = match &lrd.er {
        ErSource::Exact => ErSource::Exact,
        ErSource::Approx(opts) => {
            let mut o = opts.clone();
            // SplitMix-style odd-constant mix keeps per-block probe
            // streams decorrelated while staying a pure function of
            // (seed, block id).
            o.seed ^= 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(block_id as u64 + 1);
            ErSource::Approx(o)
        }
        ErSource::Provided(_) => {
            panic!("ErSource::Provided cannot be split across LRD blocks")
        }
    };
    let local_cfg = LrdConfig {
        level: lrd.level,
        er,
        budget_scale: lrd.budget_scale,
        // Enforce the *global* size cap inside the block.
        max_cluster_frac: (global_cap as f64 / members.len().max(1) as f64).min(1.0),
        min_clusters: 1,
    };
    let c = decompose(&g, &local_cfg);
    let diam: Vec<f64> = (0..c.num_clusters())
        .map(|ci| {
            let d = c.diameter_bound(ci);
            // from_assignment (edgeless block) tracks no diameter;
            // singletons genuinely have diameter 0.
            if d.is_nan() {
                0.0
            } else {
                d
            }
        })
        .collect();
    BlockResult {
        assignment: c.assignment().to_vec(),
        diam,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgm_linalg::rng::Rng64;

    fn cfg(k: usize, block_size: usize) -> RefreshConfig {
        RefreshConfig {
            knn: KnnConfig {
                k,
                ..KnnConfig::default()
            },
            lrd: LrdConfig::default(),
            opts: RefreshOptions {
                block_size,
                ..RefreshOptions::default()
            },
        }
    }

    fn cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = Rng64::new(seed);
        PointCloud::uniform_box(n, 2, 0.0, 1.0, &mut rng)
    }

    fn perturb_disc(
        c: &PointCloud,
        center: &[f64],
        radius: f64,
        amp: f64,
        seed: u64,
    ) -> PointCloud {
        let mut rng = Rng64::new(seed);
        let mut data = c.as_slice().to_vec();
        let dim = c.dim();
        for i in 0..c.len() {
            if c.dist2_to(i, center) < radius * radius {
                for d in 0..dim {
                    data[i * dim + d] += rng.uniform_in(-amp, amp);
                }
            }
        }
        PointCloud::from_flat(dim, data)
    }

    #[test]
    fn first_refresh_is_full_then_deltas_are_partial() {
        let mut r = GraphRefresher::new(cfg(6, 128));
        let c0 = cloud(1000, 11);
        let (cl0, s0) = r.refresh(&c0);
        assert!(s0.full_build);
        assert_eq!(s0.blocks_recomputed, s0.blocks_total);
        assert_eq!(cl0.num_nodes(), 1000);

        let c1 = perturb_disc(&c0, &[0.25, 0.25], 0.15, 0.01, 12);
        let (cl1, s1) = r.refresh(&c1);
        assert!(!s1.full_build);
        assert!(s1.points_moved > 0);
        assert!(
            s1.blocks_recomputed < s1.blocks_total,
            "clustered perturbation must leave clean blocks: {} of {}",
            s1.blocks_recomputed,
            s1.blocks_total
        );
        assert!(s1.dirty_fraction() < 0.8);
        assert_eq!(cl1.num_nodes(), 1000);
    }

    #[test]
    fn cached_blocks_equal_recomputing_everything() {
        let c0 = cloud(800, 13);
        let c1 = perturb_disc(&c0, &[0.7, 0.3], 0.1, 0.02, 14);
        let mut a = GraphRefresher::new(cfg(5, 100));
        let mut b = GraphRefresher::new(cfg(5, 100));
        a.refresh(&c0);
        b.refresh(&c0);
        b.invalidate_blocks();
        let (ca, sa) = a.refresh(&c1);
        let (cb, sb) = b.refresh(&c1);
        assert!(sa.blocks_recomputed < sb.blocks_recomputed);
        assert_eq!(sb.blocks_recomputed, sb.blocks_total);
        assert_eq!(ca.assignment(), cb.assignment());
    }

    #[test]
    fn noop_refresh_recomputes_no_blocks() {
        let mut r = GraphRefresher::new(cfg(5, 100));
        let c0 = cloud(500, 15);
        let (cl0, _) = r.refresh(&c0);
        let (cl1, s1) = r.refresh(&c0);
        assert_eq!(s1.points_moved, 0);
        assert_eq!(s1.blocks_recomputed, 0);
        assert_eq!(cl0.assignment(), cl1.assignment());
    }

    #[test]
    fn high_dim_clouds_take_the_fallback() {
        let mut rng = Rng64::new(16);
        let c = PointCloud::uniform_box(300, 5, 0.0, 1.0, &mut rng);
        let mut r = GraphRefresher::new(cfg(4, 100));
        let (cl, s) = r.refresh(&c);
        assert!(s.full_build);
        assert_eq!(s.blocks_total, 0);
        assert_eq!(cl.num_nodes(), 300);
    }

    #[test]
    fn blocked_clustering_respects_global_size_cap() {
        let mut r = GraphRefresher::new(RefreshConfig {
            lrd: LrdConfig {
                max_cluster_frac: 0.05,
                min_clusters: 1,
                level: 12,
                ..LrdConfig::default()
            },
            ..cfg(6, 100)
        });
        let (cl, _) = r.refresh(&cloud(600, 17));
        let cap = (600.0f64 * 0.05).ceil() as usize;
        for s in cl.sizes() {
            assert!(s <= cap.max(2), "cluster size {s} over cap {cap}");
        }
    }

    #[test]
    fn refresh_deterministic_across_thread_counts() {
        use sgm_par::{with_parallelism, Parallelism};
        let c0 = cloud(600, 18);
        let c1 = perturb_disc(&c0, &[0.5, 0.5], 0.2, 0.02, 19);
        let run = |threads: usize| {
            with_parallelism(Parallelism::Threads(threads), || {
                let mut r = GraphRefresher::new(cfg(5, 75));
                r.refresh(&c0);
                let (cl, _) = r.refresh(&c1);
                cl.assignment().to_vec()
            })
        };
        let a1 = run(1);
        assert_eq!(a1, run(2));
        assert_eq!(a1, run(8));
    }
}
