//! Incremental (delta) kNN graph maintenance.
//!
//! A `τ_G` refresh in the original pipeline rebuilds the whole kNN graph
//! even when only a sliver of the cloud moved (score-weighted resampling
//! perturbs a minority of collocation points per refresh). This module
//! keeps a persistent engine whose cost scales with the points that
//! *changed*, not with `N`:
//!
//! 1. **Moved set `M`** — points whose displacement from their stored
//!    reference position exceeds `displacement_bound` (squared compare;
//!    bound `0.0` means "any storage-visible change"). Displacement is
//!    measured against the *reference* coordinates, so sub-bound drift
//!    accumulates and eventually trips the bound — error stays bounded.
//! 2. **Dirty set `D ⊇ M`** — `M`, plus every reverse neighbour of `M`
//!    (a departing point can vacate a slot in its referrers' lists),
//!    plus every clean point `i` with `dist²(i, j_new) ≤ τ²_i` for some
//!    `j ∈ M` (an arriving point can displace i's current k-th
//!    neighbour), where `τ²_i` is i's current k-th neighbour distance.
//!    Captured with a grid radius sweep of radius `max_i τ_i` around
//!    each mover, filtered per point — inclusive comparisons keep the
//!    capture conservative under exact distance ties.
//! 3. **Patch** — only points in `D` are re-queried (parallel,
//!    chunk-ordered, pure reads), then adjacency rows, reverse lists
//!    and `τ²` are patched serially in ascending point order.
//!
//! **Exactness (bound = 0):** a clean point's list can only change if a
//! mover departed it (case 2a) or arrived within `τ_i` (case 2b) —
//! both place it in `D`. Re-queries call the *same* `GridIndex::knn_into`
//! routine a full build uses against the same stored coordinates, and
//! the distance kernel is bitwise symmetric, so the patched adjacency is
//! **bit-identical** to a from-scratch rebuild, independent of thread
//! count. With `bound > 0` (or f32 storage rounding), divergence is
//! bounded by the permitted stale displacement.
//!
//! Storage is SoA: one flat `u32` neighbour array, one flat `f64`
//! distance array, per-point counts and `τ²` — no per-point `Vec`s on
//! the steady-state path.

use crate::graph::Graph;
use crate::knn::grid::{GridIndex, GridScratch};
use crate::points::{Coords, PointCloud};
use sgm_obs::{Counter, Histogram};
use std::cell::RefCell;

/// Wall time of each delta patch (`update`), nanoseconds.
static KNN_PATCH_NS: Histogram = Histogram::new("sgm_graph_knn_patch_ns");
/// Dirty fraction of each delta patch, in percent of `N`.
static REFRESH_DIRTY_PCT: Histogram = Histogram::new("sgm_graph_refresh_dirty_pct");
/// Points re-queried across all delta patches.
static POINTS_RESCORED: Counter = Counter::new("sgm_graph_points_rescored_total");
/// Adjacency slots rewritten (added + removed) across all delta patches.
static EDGES_PATCHED: Counter = Counter::new("sgm_graph_edges_patched_total");

/// Configuration for [`IncrementalKnn`].
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalKnnConfig {
    /// Neighbours per point (the paper's `k`).
    pub k: usize,
    /// Edge-weight epsilon: `w = 1 / (dist + eps)`.
    pub weight_eps: f64,
    /// Compact f32 coordinate storage (f64 accumulation). Defaults off;
    /// `SGM_DIST_F32` flips the default in the engines that read it.
    pub f32_storage: bool,
    /// Displacement (not squared) below which a point keeps its stale
    /// reference position. `0.0` = exact mode: any storage-visible
    /// movement marks the point moved.
    pub displacement_bound: f64,
}

impl Default for IncrementalKnnConfig {
    fn default() -> Self {
        IncrementalKnnConfig {
            k: 8,
            weight_eps: 1e-9,
            f32_storage: crate::points::dist_f32_from_env(),
            displacement_bound: 0.0,
        }
    }
}

/// Statistics from one [`IncrementalKnn::update`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KnnDelta {
    /// Points whose displacement exceeded the bound.
    pub moved: usize,
    /// Points re-queried (the dirty set `D ⊇ M`).
    pub rescored: usize,
    /// Adjacency slots rewritten (neighbour additions + removals).
    pub edges_patched: usize,
}

/// Work-size threshold above which queries fan out to the pool
/// (matches `knn::KNN_PAR_WORK`'s spirit: ~distance evaluations).
const PAR_WORK: usize = 1 << 18;

thread_local! {
    static QUERY_SCRATCH: RefCell<(GridScratch, Vec<u32>, Vec<f64>)> =
        RefCell::new((GridScratch::default(), Vec::new(), Vec::new()));
}

/// A persistent, incrementally-maintained exact kNN structure.
#[derive(Debug)]
pub struct IncrementalKnn {
    cfg: IncrementalKnnConfig,
    coords: Coords,
    grid: GridIndex,
    /// Flat `n × k` neighbour ids; row `i` valid for `cnt[i]` slots.
    nbrs: Vec<u32>,
    /// Flat `n × k` squared distances, aligned with `nbrs`.
    d2s: Vec<f64>,
    /// Valid neighbours per point (`min(k, n-1)` once built).
    cnt: Vec<u32>,
    /// k-th neighbour squared distance; `+∞` when `cnt[i] < k`.
    tau2: Vec<f64>,
    /// Reverse adjacency: `rev[j]` lists every `i` with `j ∈ nbrs(i)`.
    rev: Vec<Vec<u32>>,
    /// Dirty points of the most recent `update` (ascending), for
    /// consumers that invalidate derived per-point state (blocked LRD).
    last_dirty: Vec<u32>,
    /// Scratch dirty flags, kept allocated between updates.
    dirty_flags: Vec<bool>,
}

impl IncrementalKnn {
    /// Full build over `cloud` (parallel, chunk-ordered, deterministic).
    ///
    /// # Panics
    /// Panics if the cloud is empty, `k == 0`, or `dim > 4` (project
    /// onto the spatial coordinates first, as the samplers do).
    pub fn build(cloud: &PointCloud, cfg: &IncrementalKnnConfig) -> Self {
        assert!(!cloud.is_empty(), "empty cloud");
        assert!(cfg.k > 0, "k must be positive");
        let coords = Coords::from_cloud(cloud, cfg.f32_storage);
        let grid = GridIndex::build(&coords);
        let n = coords.len();
        let k = cfg.k;
        let mut engine = IncrementalKnn {
            cfg: cfg.clone(),
            coords,
            grid,
            nbrs: vec![u32::MAX; n * k],
            d2s: vec![f64::INFINITY; n * k],
            cnt: vec![0; n],
            tau2: vec![f64::INFINITY; n],
            rev: vec![Vec::new(); n],
            last_dirty: Vec::new(),
            dirty_flags: vec![false; n],
        };
        let all: Vec<u32> = (0..n as u32).collect();
        let rows = engine.query_points(&all);
        engine.install_rows(&all, &rows);
        // Reverse adjacency from scratch (ascending i keeps rev[j]
        // ascending too — pure determinism hygiene).
        for i in 0..n {
            for s in 0..engine.cnt[i] as usize {
                let j = engine.nbrs[i * k + s] as usize;
                engine.rev[j].push(i as u32);
            }
        }
        engine
    }

    /// Patches the structure to reflect `cloud`, re-querying only dirty
    /// points. See the module docs for the dirty-set invariants.
    ///
    /// # Panics
    /// Panics if `cloud` has a different length or dimension than the
    /// build cloud (resizing is a full rebuild, by design).
    pub fn update(&mut self, cloud: &PointCloud) -> KnnDelta {
        assert_eq!(cloud.len(), self.len(), "point count changed: rebuild");
        assert_eq!(cloud.dim(), self.coords.dim(), "dimension changed: rebuild");
        let t0 = std::time::Instant::now();
        let n = self.len();
        let k = self.cfg.k;
        let bound2 = self.cfg.displacement_bound * self.cfg.displacement_bound;

        // 1. Moved set: parallel chunk-ordered displacement scan.
        let moved = self.detect_moved(cloud, bound2);
        self.last_dirty.clear();
        if moved.is_empty() {
            KNN_PATCH_NS.record_duration(t0.elapsed());
            REFRESH_DIRTY_PCT.record(0);
            return KnnDelta::default();
        }
        for &j in &moved {
            self.coords.set(j as usize, cloud.point(j as usize));
        }
        // Grid rebuild is O(N) counting-sort bandwidth — cheap next to
        // even a few hundred re-queries, and it keeps every re-query
        // exact against the *current* positions.
        self.grid = GridIndex::build(&self.coords);

        // 2. Dirty set: movers ∪ reverse neighbours ∪ τ-radius capture.
        self.dirty_flags.fill(false);
        for &j in &moved {
            self.dirty_flags[j as usize] = true;
        }
        for &j in &moved {
            for &i in &self.rev[j as usize] {
                self.dirty_flags[i as usize] = true;
            }
        }
        let tau_max2 = self.tau2.iter().cloned().fold(0.0f64, f64::max);
        let mut scratch = GridScratch::default();
        for &j in &moved {
            let flags = &mut self.dirty_flags;
            let tau2 = &self.tau2;
            self.grid
                .for_each_within(&self.coords, j as usize, tau_max2, &mut scratch, |i, d2| {
                    let i = i as usize;
                    if !flags[i] && d2 <= tau2[i] {
                        flags[i] = true;
                    }
                });
        }
        let dirty: Vec<u32> = (0..n as u32)
            .filter(|&i| self.dirty_flags[i as usize])
            .collect();

        // 3. Re-query dirty points (parallel, pure reads), then patch
        //    adjacency + reverse lists serially in ascending order.
        let rows = self.query_points(&dirty);
        let mut edges_patched = 0usize;
        let mut old_row: Vec<u32> = Vec::with_capacity(k);
        for (r, &i) in dirty.iter().enumerate() {
            let i = i as usize;
            let (new_idx, _new_d2) = rows.row(r, k);
            old_row.clear();
            old_row.extend_from_slice(&self.nbrs[i * k..i * k + self.cnt[i] as usize]);
            for &j in old_row.iter() {
                if !new_idx.contains(&j) {
                    let list = &mut self.rev[j as usize];
                    let pos = list.iter().position(|&x| x == i as u32).expect("rev entry");
                    list.swap_remove(pos);
                    edges_patched += 1;
                }
            }
            for &j in new_idx {
                if !old_row.contains(&j) {
                    self.rev[j as usize].push(i as u32);
                    edges_patched += 1;
                }
            }
        }
        self.install_rows(&dirty, &rows);

        self.last_dirty = dirty;
        let delta = KnnDelta {
            moved: moved.len(),
            rescored: self.last_dirty.len(),
            edges_patched,
        };
        KNN_PATCH_NS.record_duration(t0.elapsed());
        REFRESH_DIRTY_PCT.record((100 * delta.rescored / n.max(1)) as u64);
        POINTS_RESCORED.add(delta.rescored as u64);
        EDGES_PATCHED.add(delta.edges_patched as u64);
        delta
    }

    /// Parallel chunk-ordered scan for points whose displacement from
    /// the stored reference exceeds `bound2` (ascending result).
    fn detect_moved(&self, cloud: &PointCloud, bound2: f64) -> Vec<u32> {
        let n = self.len();
        let scan = |range: std::ops::Range<usize>| -> Vec<u32> {
            range
                .filter(|&i| self.coords.displacement2(i, cloud.point(i)) > bound2)
                .map(|i| i as u32)
                .collect()
        };
        let work = n.saturating_mul(self.coords.dim().max(1));
        match sgm_par::current().pool(work, PAR_WORK) {
            Some(pool) => {
                let chunk = sgm_par::chunk_len(n, 1024);
                let num_chunks = n.div_ceil(chunk);
                let parts = pool
                    .par_map_indexed(num_chunks, 1, |c| scan(c * chunk..((c + 1) * chunk).min(n)));
                parts.concat()
            }
            None => scan(0..n),
        }
    }

    /// Queries `points` against the current grid + coords, returning
    /// packed rows. Chunk-ordered parallel: results are identical for
    /// every thread count.
    fn query_points(&self, points: &[u32]) -> QueryRows {
        let k = self.cfg.k;
        let m = points.len();
        let query_chunk = |range: std::ops::Range<usize>| -> QueryRows {
            QUERY_SCRATCH.with(|cell| {
                let (scratch, idx, d2) = &mut *cell.borrow_mut();
                let mut rows = QueryRows::with_capacity(range.len(), k);
                for &p in &points[range] {
                    let got = self
                        .grid
                        .knn_into(&self.coords, p as usize, k, scratch, idx, d2);
                    rows.push(idx, d2, got, k);
                }
                rows
            })
        };
        let work = m.saturating_mul(self.cfg.k * 64);
        match sgm_par::current().pool(work, PAR_WORK) {
            Some(pool) => {
                let chunk = sgm_par::chunk_len(m, 8);
                let num_chunks = m.div_ceil(chunk);
                let parts = pool.par_map_indexed(num_chunks, 1, |c| {
                    query_chunk(c * chunk..((c + 1) * chunk).min(m))
                });
                QueryRows::concat(parts, k)
            }
            None => query_chunk(0..m),
        }
    }

    /// Writes query rows into the SoA arrays and refreshes `τ²`.
    fn install_rows(&mut self, points: &[u32], rows: &QueryRows) {
        let k = self.cfg.k;
        for (r, &i) in points.iter().enumerate() {
            let i = i as usize;
            let (idx, d2) = rows.row(r, k);
            let m = idx.len();
            self.nbrs[i * k..i * k + m].copy_from_slice(idx);
            self.d2s[i * k..i * k + m].copy_from_slice(d2);
            for s in m..k {
                self.nbrs[i * k + s] = u32::MAX;
                self.d2s[i * k + s] = f64::INFINITY;
            }
            self.cnt[i] = m as u32;
            self.tau2[i] = if m == k { d2[m - 1] } else { f64::INFINITY };
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.cnt.len()
    }

    /// True when the structure holds no points (never, once built).
    pub fn is_empty(&self) -> bool {
        self.cnt.is_empty()
    }

    /// Neighbours per point requested at build.
    pub fn k(&self) -> usize {
        self.cfg.k
    }

    /// The engine's configuration.
    pub fn config(&self) -> &IncrementalKnnConfig {
        &self.cfg
    }

    /// The reference coordinates the adjacency currently reflects.
    pub fn coords(&self) -> &Coords {
        &self.coords
    }

    /// True when `cloud` has the shape this engine was built for.
    pub fn is_compatible(&self, cloud: &PointCloud) -> bool {
        cloud.len() == self.len() && cloud.dim() == self.coords.dim()
    }

    /// Neighbour ids and squared distances of point `i`, ascending by
    /// `(dist², index)`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> (&[u32], &[f64]) {
        let k = self.cfg.k;
        let m = self.cnt[i] as usize;
        (&self.nbrs[i * k..i * k + m], &self.d2s[i * k..i * k + m])
    }

    /// Dirty points of the most recent [`IncrementalKnn::update`]
    /// (ascending; empty after a fresh build or a no-op update).
    pub fn last_dirty(&self) -> &[u32] {
        &self.last_dirty
    }

    /// Edge weight for a squared distance: `1 / (dist + eps)`.
    #[inline]
    pub fn weight(&self, d2: f64) -> f64 {
        1.0 / (d2.sqrt() + self.cfg.weight_eps)
    }

    /// Materialises the undirected kNN graph (each mutual pair emitted
    /// once; same `1/(dist+eps)` weights as `knn::build_knn_graph`).
    pub fn to_graph(&self) -> Graph {
        let n = self.len();
        let k = self.cfg.k;
        let mut edges = Vec::with_capacity(n * k);
        for i in 0..n {
            let (idx, d2) = self.neighbors(i);
            for (s, &j) in idx.iter().enumerate() {
                let j = j as usize;
                // Emit each unordered pair exactly once: the smaller
                // endpoint owns it, unless the pair is one-directional
                // and only the larger endpoint lists it.
                if j > i || !self.nbrs[j * k..j * k + self.cnt[j] as usize].contains(&(i as u32)) {
                    edges.push((i.min(j), i.max(j), self.weight(d2[s])));
                }
            }
        }
        Graph::from_edges(n, &edges)
    }
}

/// Packed query results: one `(ids, d2s, cnt)` row per queried point.
#[derive(Debug, Default)]
struct QueryRows {
    idx: Vec<u32>,
    d2: Vec<f64>,
    cnt: Vec<u32>,
}

impl QueryRows {
    fn with_capacity(rows: usize, k: usize) -> Self {
        QueryRows {
            idx: Vec::with_capacity(rows * k),
            d2: Vec::with_capacity(rows * k),
            cnt: Vec::with_capacity(rows),
        }
    }

    fn push(&mut self, idx: &[u32], d2: &[f64], got: usize, k: usize) {
        debug_assert_eq!(idx.len(), got);
        self.idx.extend_from_slice(idx);
        self.d2.extend_from_slice(d2);
        for _ in got..k {
            self.idx.push(u32::MAX);
            self.d2.push(f64::INFINITY);
        }
        self.cnt.push(got as u32);
    }

    fn row(&self, r: usize, k: usize) -> (&[u32], &[f64]) {
        let m = self.cnt[r] as usize;
        (&self.idx[r * k..r * k + m], &self.d2[r * k..r * k + m])
    }

    fn concat(parts: Vec<QueryRows>, _k: usize) -> Self {
        let mut out = QueryRows::default();
        for p in parts {
            out.idx.extend_from_slice(&p.idx);
            out.d2.extend_from_slice(&p.d2);
            out.cnt.extend_from_slice(&p.cnt);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgm_linalg::rng::Rng64;

    fn cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = Rng64::new(seed);
        PointCloud::uniform_box(n, 2, 0.0, 1.0, &mut rng)
    }

    fn perturb(c: &PointCloud, frac: f64, amp: f64, seed: u64) -> PointCloud {
        let mut rng = Rng64::new(seed);
        let mut data = c.as_slice().to_vec();
        let dim = c.dim();
        for i in 0..c.len() {
            if rng.uniform() < frac {
                for d in 0..dim {
                    data[i * dim + d] += rng.uniform_in(-amp, amp);
                }
            }
        }
        PointCloud::from_flat(dim, data)
    }

    fn assert_engines_equal(a: &IncrementalKnn, b: &IncrementalKnn) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.neighbors(i), b.neighbors(i), "point {i}");
        }
    }

    #[test]
    fn delta_matches_full_rebuild_bit_exactly() {
        let cfg = IncrementalKnnConfig {
            k: 6,
            f32_storage: false,
            ..IncrementalKnnConfig::default()
        };
        let c0 = cloud(500, 1);
        let c1 = perturb(&c0, 0.1, 0.05, 2);
        let mut delta = IncrementalKnn::build(&c0, &cfg);
        let stats = delta.update(&c1);
        assert!(stats.moved > 0 && stats.rescored >= stats.moved);
        let full = IncrementalKnn::build(&c1, &cfg);
        assert_engines_equal(&delta, &full);
    }

    #[test]
    fn repeated_deltas_stay_exact() {
        let cfg = IncrementalKnnConfig {
            k: 5,
            ..IncrementalKnnConfig::default()
        };
        let c0 = cloud(300, 3);
        let mut engine = IncrementalKnn::build(&c0, &cfg);
        let mut current = c0;
        for step in 0..4 {
            current = perturb(&current, 0.15, 0.03, 10 + step);
            engine.update(&current);
            assert_engines_equal(&engine, &IncrementalKnn::build(&current, &cfg));
        }
    }

    #[test]
    fn noop_update_patches_nothing() {
        let cfg = IncrementalKnnConfig::default();
        let c0 = cloud(200, 4);
        let mut engine = IncrementalKnn::build(&c0, &cfg);
        let stats = engine.update(&c0);
        assert_eq!(stats, KnnDelta::default());
        assert!(engine.last_dirty().is_empty());
    }

    #[test]
    fn displacement_bound_tolerates_small_drift_then_trips() {
        let cfg = IncrementalKnnConfig {
            displacement_bound: 0.01,
            ..IncrementalKnnConfig::default()
        };
        let c0 = cloud(200, 5);
        let mut engine = IncrementalKnn::build(&c0, &cfg);
        // Drift every point by 0.004 per step: below the bound at first,
        // cumulative drift (vs the *reference*) trips it by step 3.
        let mut total_moved = 0;
        let mut data = c0.as_slice().to_vec();
        for _ in 0..3 {
            for v in data.iter_mut() {
                *v += 0.004;
            }
            let stats = engine.update(&PointCloud::from_flat(2, data.clone()));
            total_moved += stats.moved;
        }
        assert!(total_moved >= 200, "cumulative drift must trip the bound");
    }

    #[test]
    fn graph_matches_batch_builder_recall() {
        use crate::knn::{build_knn_graph, KnnConfig, KnnStrategy};
        let c = cloud(400, 6);
        let engine = IncrementalKnn::build(&c, &IncrementalKnnConfig::default());
        let g_new = engine.to_graph();
        let g_old = build_knn_graph(
            &c,
            &KnnConfig {
                k: 8,
                strategy: KnnStrategy::Brute,
                ..KnnConfig::default()
            },
        );
        assert_eq!(g_new.num_nodes(), g_old.num_nodes());
        // Same exact kNN semantics → same edge set.
        let set = |g: &Graph| -> std::collections::BTreeSet<(usize, usize)> {
            g.edges().map(|(u, v, _)| (u, v)).collect()
        };
        assert_eq!(set(&g_new), set(&g_old));
    }
}
