//! # sgm-nn
//!
//! The neural-network substrate for the PINN reproduction: a batched
//! multilayer perceptron whose forward pass propagates, for every sample,
//! the output **value**, the **Jacobian** with respect to selected input
//! dimensions, and the **diagonal input Hessian** — everything a 2-D
//! Navier–Stokes residual needs (`u, u_x, u_y, u_xx, u_yy`, …) — and whose
//! backward pass produces exact parameter gradients of any loss built from
//! those quantities.
//!
//! ## Why not a tape?
//!
//! A scalar tape (see `sgm-autodiff`) taped through second input
//! derivatives costs tens of thousands of node allocations per sample.
//! For a fixed MLP architecture all of that structure is known statically,
//! so this crate hand-derives the coupled recurrences
//!
//! ```text
//! z    = A Wᵀ + b          a'  = σ(z)
//! zJ_d = J_d Wᵀ            J'_d = σ'(z) ⊙ zJ_d
//! zH_d = H_d Wᵀ            H'_d = σ''(z) ⊙ zJ_d² + σ'(z) ⊙ zH_d
//! ```
//!
//! and their adjoints (which involve σ''' — see [`activation`]), turning
//! the whole computation into a handful of GEMMs per layer. Correctness is
//! property-tested against the tape and dual-number oracles in the
//! workspace integration tests.
//!
//! Modules: [`activation`] (σ and its first three derivatives), [`mlp`]
//! (network, forward/backward), [`optimizer`] (Adam + LR schedules),
//! [`checkpoint`] (bit-exact JSON save/restore of trained models).
//!
//! # Example
//!
//! ```
//! use sgm_nn::mlp::{Mlp, MlpConfig};
//! use sgm_nn::activation::Activation;
//! use sgm_linalg::{Matrix, Rng64};
//!
//! let cfg = MlpConfig {
//!     input_dim: 2,
//!     output_dim: 1,
//!     hidden_width: 16,
//!     hidden_layers: 2,
//!     activation: Activation::SiLu,
//!     fourier: None,
//! };
//! let mut rng = Rng64::new(1);
//! let net = Mlp::new(&cfg, &mut rng);
//! let x = Matrix::from_rows(&[&[0.1, 0.2], &[0.3, 0.4]]);
//! let (out, _cache) = net.forward_with_derivs(&x, &[0, 1]);
//! assert_eq!(out.values.rows(), 2);
//! assert_eq!(out.jac.len(), 2);   // ∂/∂x, ∂/∂y
//! assert_eq!(out.hess.len(), 2);  // ∂²/∂x², ∂²/∂y²
//! ```

pub mod activation;
pub mod batched;
pub mod checkpoint;
pub mod mlp;
pub mod optimizer;

pub use activation::Activation;
pub use batched::{BatchedAdam, BatchedGradients, BatchedMlp, BatchedWorkspace};
pub use checkpoint::Checkpoint;
pub use mlp::{BatchDerivatives, ForwardCache, Gradients, Mlp, MlpConfig};
pub use optimizer::{Adam, AdamConfig, LrSchedule};
