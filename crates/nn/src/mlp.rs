//! Batched MLP with analytic propagation of values, input Jacobians and
//! diagonal input Hessians, and the exact adjoint (backward) pass for
//! parameter gradients of losses built from all three.
//!
//! Layouts: batches are row-major [`Matrix`] values with one sample per
//! row. A network with hidden width `w` and `L` hidden layers is
//! `enc → (Linear(w) ∘ σ)^L → Linear(out)`, where `enc` is either the
//! identity or a frozen Fourier-feature encoding (the paper's `φ_E`).

use crate::activation::{eval3, eval3_batch, Activation};
use sgm_linalg::dense::{gemm, Matrix};
use sgm_linalg::rng::Rng64;
use sgm_linalg::simd;

/// Minimum batch rows per parallel chunk. The chunk layout is a function
/// of the batch size only (never the thread count), so per-chunk gradient
/// accumulation merges identically for every [`sgm_par::Parallelism`]
/// setting — including `Serial`, which walks the same chunks in order.
/// 64 rows keeps the batched GEMM micro-kernels (4-row register tiles)
/// fed; shorter chunks waste most of their time on loop prologues.
const MLP_PAR_MIN_ROWS: usize = 64;

/// Auto-mode work cutoff (≈ batch × params × derivative-paths) below
/// which chunking to the pool costs more than it saves.
const MLP_PAR_WORK: usize = 1 << 16;

/// Copies rows `r0..r1` of `x` into a fresh matrix.
fn rows_band(x: &Matrix, r0: usize, r1: usize) -> Matrix {
    debug_assert!(r0 <= r1 && r1 <= x.rows());
    let cols = x.cols();
    let mut out = Matrix::zeros(r1 - r0, cols);
    out.as_mut_slice()
        .copy_from_slice(&x.as_slice()[r0 * cols..r1 * cols]);
    out
}

/// Writes `band` into `dst` starting at row `r0`.
fn scatter_band(dst: &mut Matrix, r0: usize, band: &Matrix) {
    debug_assert_eq!(dst.cols(), band.cols());
    let cols = dst.cols();
    dst.as_mut_slice()[r0 * cols..(r0 + band.rows()) * cols].copy_from_slice(band.as_slice());
}

/// Chunk row ranges for a batch: boundaries depend only on `batch`.
pub(crate) fn batch_chunks(batch: usize) -> Vec<(usize, usize)> {
    if batch == 0 {
        return vec![(0, 0)];
    }
    let chunk = sgm_par::chunk_len(batch, MLP_PAR_MIN_ROWS);
    let mut out = Vec::with_capacity(batch.div_ceil(chunk));
    let mut r0 = 0;
    while r0 < batch {
        let r1 = (r0 + chunk).min(batch);
        out.push((r0, r1));
        r0 = r1;
    }
    out
}

/// Frozen random Fourier-feature encoding `φ_E` (Tancik-style): maps `x`
/// to `[x, sin(2π B x), cos(2π B x)]` with `B ~ N(0, σ²)` fixed at
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct FourierConfig {
    /// Number of random frequencies (output gains `2 × num_features` dims).
    pub num_features: usize,
    /// Frequency scale σ.
    pub sigma: f64,
}

/// Architecture description for [`Mlp::new`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Raw input dimension (spatial coordinates + design parameters).
    pub input_dim: usize,
    /// Number of outputs (e.g. `u, v, p` or `u, v, p, ν`).
    pub output_dim: usize,
    /// Hidden width (the paper uses 512; the scaled reproduction 32–64).
    pub hidden_width: usize,
    /// Number of hidden (activated) layers (paper depth 6).
    pub hidden_layers: usize,
    /// Nonlinearity.
    pub activation: Activation,
    /// Optional input encoding.
    pub fourier: Option<FourierConfig>,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DenseLayer {
    /// `out × in` weights.
    pub(crate) w: Matrix,
    pub(crate) b: Vec<f64>,
}

/// Values and input derivatives of a batch forward pass.
///
/// `jac[d]` and `hess[d]` are `B × out` matrices holding `∂y/∂x_{dd[d]}`
/// and `∂²y/∂x_{dd[d]}²` where `dd` is the `diff_dims` list passed to
/// [`Mlp::forward_with_derivs`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchDerivatives {
    /// Network outputs, `B × out`.
    pub values: Matrix,
    /// First input derivatives per requested dimension.
    pub jac: Vec<Matrix>,
    /// Second (diagonal) input derivatives per requested dimension.
    pub hess: Vec<Matrix>,
}

impl BatchDerivatives {
    /// All-zero derivatives with the same shapes — the canonical starting
    /// point for building adjoints.
    pub fn zeros_like(other: &BatchDerivatives) -> Self {
        BatchDerivatives {
            values: Matrix::zeros(other.values.rows(), other.values.cols()),
            jac: other
                .jac
                .iter()
                .map(|m| Matrix::zeros(m.rows(), m.cols()))
                .collect(),
            hess: other
                .hess
                .iter()
                .map(|m| Matrix::zeros(m.rows(), m.cols()))
                .collect(),
        }
    }

    /// All-zero derivatives with explicit shapes (`batch × out`, `nd`
    /// derivative dimensions).
    pub fn zeros(batch: usize, out: usize, nd: usize) -> Self {
        BatchDerivatives {
            values: Matrix::zeros(batch, out),
            jac: vec![Matrix::zeros(batch, out); nd],
            hess: vec![Matrix::zeros(batch, out); nd],
        }
    }

    /// Resets every entry to zero in place (workspace reuse).
    pub fn zero(&mut self) {
        self.values.fill(0.0);
        for m in &mut self.jac {
            m.fill(0.0);
        }
        for m in &mut self.hess {
            m.fill(0.0);
        }
    }
}

#[derive(Debug, Clone)]
struct LayerCache {
    a_in: Matrix,
    j_in: Vec<Matrix>,
    h_in: Vec<Matrix>,
    z: Matrix,
    zj: Vec<Matrix>,
    zh: Vec<Matrix>,
    /// σ', σ'', σ''' at `z`, kept from the forward pass so the backward
    /// pass never re-evaluates the activation's transcendentals (empty
    /// for the non-activated last layer).
    s1: Vec<f64>,
    s2: Vec<f64>,
    s3: Vec<f64>,
    activated: bool,
}

#[derive(Debug, Clone)]
struct ChunkCache {
    row0: usize,
    layers: Vec<LayerCache>,
}

/// Opaque forward-pass state consumed by [`Mlp::backward`].
///
/// Internally held per batch chunk so the backward pass can fan out over
/// the same row ranges the forward pass used.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    chunks: Vec<ChunkCache>,
    batch: usize,
}

impl ForwardCache {
    /// Batch size of the pass that produced this cache.
    pub fn batch(&self) -> usize {
        self.batch
    }
}

/// Parameter gradients, shaped like the network.
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    pub(crate) w: Vec<Matrix>,
    pub(crate) b: Vec<Vec<f64>>,
}

impl Gradients {
    /// Flattens in the same order as [`Mlp::for_each_param_mut`].
    pub fn flat(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for (w, b) in self.w.iter().zip(&self.b) {
            out.extend_from_slice(w.as_slice());
            out.extend_from_slice(b);
        }
        out
    }

    /// Total number of entries (equals the owning network's
    /// `num_params()`).
    pub fn num_entries(&self) -> usize {
        self.w
            .iter()
            .zip(&self.b)
            .map(|(w, b)| w.rows() * w.cols() + b.len())
            .sum()
    }

    /// Writes the flattened gradient into a caller-owned buffer — the
    /// allocation-free sibling of [`Gradients::flat`].
    ///
    /// # Panics
    /// Panics if `out.len() != num_entries()`.
    pub fn write_flat(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.num_entries(), "flat buffer size mismatch");
        let mut off = 0;
        for (w, b) in self.w.iter().zip(&self.b) {
            let nw = w.rows() * w.cols();
            out[off..off + nw].copy_from_slice(w.as_slice());
            off += nw;
            out[off..off + b.len()].copy_from_slice(b);
            off += b.len();
        }
    }

    /// Resets all entries to zero in place (accumulator reuse).
    pub fn zero(&mut self) {
        for w in &mut self.w {
            w.fill(0.0);
        }
        for b in &mut self.b {
            for x in b {
                *x = 0.0;
            }
        }
    }

    /// Adds another gradient in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Gradients) {
        for (a, b) in self.w.iter_mut().zip(&other.w) {
            a.axpy(1.0, b);
        }
        for (a, b) in self.b.iter_mut().zip(&other.b) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// Scales all entries.
    pub fn scale(&mut self, s: f64) {
        for w in &mut self.w {
            w.scale(s);
        }
        for b in &mut self.b {
            for x in b {
                *x *= s;
            }
        }
    }

    /// Euclidean norm over all entries.
    pub fn l2_norm(&self) -> f64 {
        let mut s = 0.0;
        for w in &self.w {
            for v in w.as_slice() {
                s += v * v;
            }
        }
        for b in &self.b {
            for v in b {
                s += v * v;
            }
        }
        s.sqrt()
    }
}

/// The network.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    cfg: MlpConfig,
    /// Frozen Fourier frequency matrix (`num_features × input_dim`),
    /// pre-scaled by 2π.
    freq: Option<Matrix>,
    pub(crate) layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Initialises with Xavier-uniform weights.
    ///
    /// # Panics
    /// Panics if any dimension in the config is zero.
    pub fn new(cfg: &MlpConfig, rng: &mut Rng64) -> Self {
        assert!(
            cfg.input_dim > 0
                && cfg.output_dim > 0
                && cfg.hidden_width > 0
                && cfg.hidden_layers > 0,
            "zero dimension in MlpConfig"
        );
        let freq = cfg.fourier.as_ref().map(|f| {
            let mut m = Matrix::gaussian(f.num_features, cfg.input_dim, rng);
            m.scale(2.0 * std::f64::consts::PI * f.sigma);
            m
        });
        let enc_dim = cfg.input_dim + cfg.fourier.as_ref().map_or(0, |f| 2 * f.num_features);
        let mut sizes = vec![(enc_dim, cfg.hidden_width)];
        for _ in 1..cfg.hidden_layers {
            sizes.push((cfg.hidden_width, cfg.hidden_width));
        }
        sizes.push((cfg.hidden_width, cfg.output_dim));
        let layers = sizes
            .into_iter()
            .map(|(fan_in, fan_out)| {
                let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
                let mut w = Matrix::zeros(fan_out, fan_in);
                for v in w.as_mut_slice() {
                    *v = rng.uniform_in(-bound, bound);
                }
                DenseLayer {
                    w,
                    b: vec![0.0; fan_out],
                }
            })
            .collect();
        Mlp {
            cfg: cfg.clone(),
            freq,
            layers,
        }
    }

    /// The architecture this network was built with.
    pub fn config(&self) -> &MlpConfig {
        &self.cfg
    }

    /// The frozen Fourier frequency matrix (`num_features × input_dim`,
    /// already scaled by 2πσ), if the network uses an encoding.
    pub fn fourier_frequencies(&self) -> Option<&Matrix> {
        self.freq.as_ref()
    }

    /// Overwrites the frozen Fourier frequency matrix (checkpoint
    /// restore).
    ///
    /// # Errors
    /// Returns a message if the buffer size does not match the
    /// configuration.
    pub fn set_fourier_frequencies(&mut self, flat: &[f64]) -> Result<(), String> {
        match (&mut self.freq, self.cfg.fourier.as_ref()) {
            (Some(m), Some(_)) => {
                if flat.len() != m.rows() * m.cols() {
                    return Err(format!(
                        "frequency buffer {} != {}×{}",
                        flat.len(),
                        m.rows(),
                        m.cols()
                    ));
                }
                m.as_mut_slice().copy_from_slice(flat);
                Ok(())
            }
            _ => Err("network has no Fourier encoding".into()),
        }
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.rows() * l.w.cols() + l.b.len())
            .sum()
    }

    /// Visits every trainable parameter in a stable order (matching
    /// [`Gradients::flat`]).
    pub fn for_each_param_mut(&mut self, mut f: impl FnMut(usize, &mut f64)) {
        let mut idx = 0;
        for layer in &mut self.layers {
            for v in layer.w.as_mut_slice() {
                f(idx, v);
                idx += 1;
            }
            for v in &mut layer.b {
                f(idx, v);
                idx += 1;
            }
        }
    }

    /// Visits every trainable parameter *slice* (each layer's weight
    /// matrix, then its bias) with the slice's offset into the flat
    /// parameter vector — same stable order as [`Mlp::for_each_param_mut`],
    /// but amenable to SIMD kernels over whole slices.
    pub fn for_each_param_slice_mut(&mut self, mut f: impl FnMut(usize, &mut [f64])) {
        let mut off = 0;
        for layer in &mut self.layers {
            let w = layer.w.as_mut_slice();
            let nw = w.len();
            f(off, w);
            off += nw;
            f(off, &mut layer.b);
            off += layer.b.len();
        }
    }

    /// Snapshot of all parameters (checkpointing).
    pub fn params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            out.extend_from_slice(layer.w.as_slice());
            out.extend_from_slice(&layer.b);
        }
        out
    }

    /// Restores parameters from [`Mlp::params`] output.
    ///
    /// # Panics
    /// Panics if the length does not match `num_params()`.
    pub fn set_params(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.num_params(), "param count mismatch");
        let mut off = 0;
        for layer in &mut self.layers {
            let nw = layer.w.rows() * layer.w.cols();
            layer.w.as_mut_slice().copy_from_slice(&flat[off..off + nw]);
            off += nw;
            let nb = layer.b.len();
            layer.b.copy_from_slice(&flat[off..off + nb]);
            off += nb;
        }
    }

    /// Zero-initialised gradients shaped like this network.
    pub fn zero_gradients(&self) -> Gradients {
        Gradients {
            w: self
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
                .collect(),
            b: self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    fn encode(&self, x: &Matrix, diff_dims: &[usize]) -> (Matrix, Vec<Matrix>, Vec<Matrix>) {
        let b = x.rows();
        let in_dim = self.cfg.input_dim;
        assert_eq!(x.cols(), in_dim, "input dim mismatch");
        for &d in diff_dims {
            assert!(d < in_dim, "diff dim {d} out of range");
        }
        let Some(freq) = &self.freq else {
            // Identity encoding: J is a constant one-hot, H is zero.
            let mut jac = Vec::with_capacity(diff_dims.len());
            for &d in diff_dims {
                let mut j = Matrix::zeros(b, in_dim);
                for r in 0..b {
                    j.set(r, d, 1.0);
                }
                jac.push(j);
            }
            let hess = vec![Matrix::zeros(b, in_dim); diff_dims.len()];
            return (x.clone(), jac, hess);
        };
        let nf = freq.rows();
        let enc_dim = in_dim + 2 * nf;
        let mut e = Matrix::zeros(b, enc_dim);
        let mut jac = vec![Matrix::zeros(b, enc_dim); diff_dims.len()];
        let mut hess = vec![Matrix::zeros(b, enc_dim); diff_dims.len()];
        for r in 0..b {
            let xr = x.row(r);
            for (c, &xc) in xr.iter().enumerate().take(in_dim) {
                e.set(r, c, xc);
            }
            for (di, &d) in diff_dims.iter().enumerate() {
                jac[di].set(r, d, 1.0);
            }
            for s in 0..nf {
                let w = freq.row(s);
                let phase: f64 = w.iter().zip(xr).map(|(a, b)| a * b).sum();
                let (sn, cs) = phase.sin_cos();
                e.set(r, in_dim + s, sn);
                e.set(r, in_dim + nf + s, cs);
                for (di, &d) in diff_dims.iter().enumerate() {
                    let wd = w[d];
                    jac[di].set(r, in_dim + s, wd * cs);
                    jac[di].set(r, in_dim + nf + s, -wd * sn);
                    hess[di].set(r, in_dim + s, -wd * wd * sn);
                    hess[di].set(r, in_dim + nf + s, -wd * wd * cs);
                }
            }
        }
        (e, jac, hess)
    }

    /// Rough per-call work estimate steering the Auto parallel cutoff.
    fn par_work(&self, batch: usize, nd: usize) -> usize {
        batch
            .saturating_mul(self.num_params())
            .saturating_mul(1 + 2 * nd)
    }

    /// Values-only forward body over one row band of the input.
    fn forward_values_band(&self, x: &Matrix) -> Matrix {
        let (mut a, _, _) = self.encode(x, &[]);
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            let wt = layer.w.transposed();
            let mut z = Matrix::zeros(a.rows(), layer.w.rows());
            gemm(1.0, &a, &wt, 0.0, &mut z);
            for r in 0..z.rows() {
                let row = z.row_mut(r);
                simd::add_assign(row, &layer.b);
                if li != last {
                    for v in row.iter_mut() {
                        *v = eval3(self.cfg.activation, *v).0;
                    }
                }
            }
            a = z;
        }
        a
    }

    /// Values-only forward pass (`B × out`), the cheap path for inference
    /// and validation sweeps.
    ///
    /// Every output row depends only on its own input row, so the
    /// parallel row-banded path is bit-identical to the serial full-batch
    /// pass.
    ///
    /// # Panics
    /// Panics if `x.cols() != input_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.cfg.input_dim, "input dim mismatch");
        let batch = x.rows();
        match sgm_par::current().pool(self.par_work(batch, 0), MLP_PAR_WORK) {
            Some(pool) => {
                let ranges = batch_chunks(batch);
                let bands = pool.par_map_indexed(ranges.len(), 1, |ci| {
                    let (r0, r1) = ranges[ci];
                    self.forward_values_band(&rows_band(x, r0, r1))
                });
                let mut out = Matrix::zeros(batch, self.cfg.output_dim);
                for ((r0, _), band) in ranges.iter().zip(&bands) {
                    scatter_band(&mut out, *r0, band);
                }
                out
            }
            None => self.forward_values_band(x),
        }
    }

    /// Forward body over one row band: returns the band's derivatives and
    /// layer caches.
    fn forward_derivs_band(
        &self,
        x: &Matrix,
        diff_dims: &[usize],
    ) -> (BatchDerivatives, Vec<LayerCache>) {
        let batch = x.rows();
        let nd = diff_dims.len();
        let (mut a, mut j, mut h) = self.encode(x, diff_dims);
        let last = self.layers.len() - 1;
        let mut caches = Vec::with_capacity(self.layers.len());
        for (li, layer) in self.layers.iter().enumerate() {
            let activated = li != last;
            let wt = layer.w.transposed();
            let out_w = layer.w.rows();
            let mut z = Matrix::zeros(batch, out_w);
            gemm(1.0, &a, &wt, 0.0, &mut z);
            for r in 0..batch {
                simd::add_assign(z.row_mut(r), &layer.b);
            }
            let mut zj = Vec::with_capacity(nd);
            let mut zh = Vec::with_capacity(nd);
            for d in 0..nd {
                let mut m = Matrix::zeros(batch, out_w);
                gemm(1.0, &j[d], &wt, 0.0, &mut m);
                zj.push(m);
                let mut m = Matrix::zeros(batch, out_w);
                gemm(1.0, &h[d], &wt, 0.0, &mut m);
                zh.push(m);
            }
            // Activation.
            let (a_out, j_out, h_out, s1, s2, s3) = if activated {
                let mut a_out = Matrix::zeros(batch, out_w);
                let mut j_out = vec![Matrix::zeros(batch, out_w); nd];
                let mut h_out = vec![Matrix::zeros(batch, out_w); nd];
                let nel = batch * out_w;
                // σ values land straight in a_out; derivative combines go
                // through the SIMD kernels. σ'..σ''' move into the layer
                // cache so backward reuses them instead of re-running the
                // transcendentals.
                let mut s1 = vec![0.0; nel];
                let mut s2 = vec![0.0; nel];
                let mut s3 = vec![0.0; nel];
                eval3_batch(
                    self.cfg.activation,
                    z.as_slice(),
                    a_out.as_mut_slice(),
                    &mut s1,
                    &mut s2,
                    &mut s3,
                );
                for d in 0..nd {
                    simd::act_fwd_jh(
                        &s1,
                        &s2,
                        zj[d].as_slice(),
                        zh[d].as_slice(),
                        j_out[d].as_mut_slice(),
                        h_out[d].as_mut_slice(),
                    );
                }
                (a_out, j_out, h_out, s1, s2, s3)
            } else {
                (
                    z.clone(),
                    zj.clone(),
                    zh.clone(),
                    Vec::new(),
                    Vec::new(),
                    Vec::new(),
                )
            };
            caches.push(LayerCache {
                a_in: a,
                j_in: j,
                h_in: h,
                z,
                zj,
                zh,
                s1,
                s2,
                s3,
                activated,
            });
            a = a_out;
            j = j_out;
            h = h_out;
        }
        (
            BatchDerivatives {
                values: a,
                jac: j,
                hess: h,
            },
            caches,
        )
    }

    /// Forward pass propagating values, Jacobian columns and diagonal
    /// Hessian columns for the requested input dimensions, returning the
    /// cache needed by [`Mlp::backward`].
    ///
    /// The batch is always processed in chunks whose boundaries depend
    /// only on the batch size; the [`sgm_par::Parallelism`] setting picks
    /// who runs each chunk, so results are bit-identical for every thread
    /// count (serial included).
    ///
    /// # Panics
    /// Panics if `x.cols() != input_dim` or a diff dim is out of range.
    pub fn forward_with_derivs(
        &self,
        x: &Matrix,
        diff_dims: &[usize],
    ) -> (BatchDerivatives, ForwardCache) {
        assert_eq!(x.cols(), self.cfg.input_dim, "input dim mismatch");
        let batch = x.rows();
        let nd = diff_dims.len();
        let ranges = batch_chunks(batch);
        let work = self.par_work(batch, nd);
        let results: Vec<(BatchDerivatives, Vec<LayerCache>)> =
            match sgm_par::current().pool(work, MLP_PAR_WORK) {
                Some(pool) => pool.par_map_indexed(ranges.len(), 1, |ci| {
                    let (r0, r1) = ranges[ci];
                    self.forward_derivs_band(&rows_band(x, r0, r1), diff_dims)
                }),
                None => ranges
                    .iter()
                    .map(|&(r0, r1)| self.forward_derivs_band(&rows_band(x, r0, r1), diff_dims))
                    .collect(),
            };
        let out_dim = self.cfg.output_dim;
        let mut values = Matrix::zeros(batch, out_dim);
        let mut jac = vec![Matrix::zeros(batch, out_dim); nd];
        let mut hess = vec![Matrix::zeros(batch, out_dim); nd];
        let mut chunks = Vec::with_capacity(ranges.len());
        for (&(r0, _), (band, layers)) in ranges.iter().zip(results) {
            scatter_band(&mut values, r0, &band.values);
            for d in 0..nd {
                scatter_band(&mut jac[d], r0, &band.jac[d]);
                scatter_band(&mut hess[d], r0, &band.hess[d]);
            }
            chunks.push(ChunkCache { row0: r0, layers });
        }
        (
            BatchDerivatives { values, jac, hess },
            ForwardCache { chunks, batch },
        )
    }

    /// Backward body for one cached chunk: adjoint row bands in, exact
    /// per-chunk parameter gradients out.
    fn backward_chunk(&self, chunk: &ChunkCache, adjoints: &BatchDerivatives) -> Gradients {
        let nd = chunk.layers[0].zj.len();
        let batch = chunk.layers[0].z.rows();
        let r0 = chunk.row0;
        let mut grads = self.zero_gradients();
        let mut ga = rows_band(&adjoints.values, r0, r0 + batch);
        let mut gj: Vec<Matrix> = (0..nd)
            .map(|d| rows_band(&adjoints.jac[d], r0, r0 + batch))
            .collect();
        let mut gh: Vec<Matrix> = (0..nd)
            .map(|d| rows_band(&adjoints.hess[d], r0, r0 + batch))
            .collect();

        for (li, layer) in self.layers.iter().enumerate().rev() {
            let lc = &chunk.layers[li];
            let out_w = layer.w.rows();
            // Activation adjoints → pre-activation adjoints.
            let (gz, gzj, gzh) = if lc.activated {
                let mut gz = Matrix::zeros(batch, out_w);
                let mut gzj = vec![Matrix::zeros(batch, out_w); nd];
                let mut gzh = vec![Matrix::zeros(batch, out_w); nd];
                // gz = ga ⊙ σ', then each derivative dimension accumulates
                // its adjoint contribution in ascending-d order. σ'..σ'''
                // come straight from the forward-pass cache.
                simd::hadamard(ga.as_slice(), &lc.s1, gz.as_mut_slice());
                for d in 0..nd {
                    simd::act_bwd_accum(
                        &lc.s1,
                        &lc.s2,
                        &lc.s3,
                        lc.zj[d].as_slice(),
                        lc.zh[d].as_slice(),
                        gj[d].as_slice(),
                        gh[d].as_slice(),
                        gz.as_mut_slice(),
                        gzj[d].as_mut_slice(),
                        gzh[d].as_mut_slice(),
                    );
                }
                (gz, gzj, gzh)
            } else {
                (ga.clone(), gj.clone(), gh.clone())
            };
            // Linear adjoints.
            // gW += gzᵀ a_in + Σ_d (gzjᵀ j_in + gzhᵀ h_in)
            let gzt = gz.transposed();
            gemm(1.0, &gzt, &lc.a_in, 1.0, &mut grads.w[li]);
            for d in 0..nd {
                let t = gzj[d].transposed();
                gemm(1.0, &t, &lc.j_in[d], 1.0, &mut grads.w[li]);
                let t = gzh[d].transposed();
                gemm(1.0, &t, &lc.h_in[d], 1.0, &mut grads.w[li]);
            }
            // gb += column sums of gz (bias enters only the value path),
            // row-by-row in ascending order.
            for r in 0..batch {
                simd::add_assign(&mut grads.b[li], gz.row(r));
            }
            if li == 0 {
                break; // inputs are not trainable
            }
            // Propagate to layer inputs: gA = gz W, etc.
            let mut new_ga = Matrix::zeros(batch, layer.w.cols());
            gemm(1.0, &gz, &layer.w, 0.0, &mut new_ga);
            let mut new_gj = Vec::with_capacity(nd);
            let mut new_gh = Vec::with_capacity(nd);
            for d in 0..nd {
                let mut m = Matrix::zeros(batch, layer.w.cols());
                gemm(1.0, &gzj[d], &layer.w, 0.0, &mut m);
                new_gj.push(m);
                let mut m = Matrix::zeros(batch, layer.w.cols());
                gemm(1.0, &gzh[d], &layer.w, 0.0, &mut m);
                new_gh.push(m);
            }
            ga = new_ga;
            gj = new_gj;
            gh = new_gh;
        }
        grads
    }

    /// Backward pass: given adjoints (∂L/∂values, ∂L/∂jac, ∂L/∂hess) on the
    /// outputs of a [`Mlp::forward_with_derivs`] call, returns exact
    /// parameter gradients ∂L/∂θ.
    ///
    /// Per-chunk gradients are merged in chunk order, so the result is
    /// bit-identical for every [`sgm_par::Parallelism`] setting.
    ///
    /// # Panics
    /// Panics if adjoint shapes do not match the cached forward pass.
    pub fn backward(&self, cache: &ForwardCache, adjoints: &BatchDerivatives) -> Gradients {
        let nd = cache.chunks[0].layers[0].zj.len();
        assert_eq!(adjoints.jac.len(), nd, "jac adjoint count");
        assert_eq!(adjoints.hess.len(), nd, "hess adjoint count");
        assert_eq!(
            adjoints.values.rows(),
            cache.batch,
            "adjoint batch mismatch"
        );
        let work = self.par_work(cache.batch, nd);
        let per_chunk: Vec<Gradients> = match sgm_par::current().pool(work, MLP_PAR_WORK) {
            Some(pool) => pool.par_map_indexed(cache.chunks.len(), 1, |ci| {
                self.backward_chunk(&cache.chunks[ci], adjoints)
            }),
            None => cache
                .chunks
                .iter()
                .map(|c| self.backward_chunk(c, adjoints))
                .collect(),
        };
        let mut grads = self.zero_gradients();
        for g in &per_chunk {
            grads.add_assign(g);
        }
        grads
    }
}

/// Per-layer buffers of one batch chunk: the forward cache (mirroring
/// [`LayerCache`]) plus every backward scratch matrix, all preallocated.
#[derive(Debug, Clone)]
struct LayerWs {
    /// Layer input activations, `chunk × in_w` (written by the previous
    /// layer's activation or the encoder).
    a_in: Matrix,
    j_in: Vec<Matrix>,
    h_in: Vec<Matrix>,
    /// Pre-activations and their derivative carries, `chunk × out_w`.
    z: Matrix,
    zj: Vec<Matrix>,
    zh: Vec<Matrix>,
    /// σ', σ'', σ''' at `z`, filled by the forward pass and reused by the
    /// backward pass (empty for the non-activated last layer).
    s1: Vec<f64>,
    s2: Vec<f64>,
    s3: Vec<f64>,
    /// Backward carry: gradient w.r.t. this layer's *output*.
    gout: Matrix,
    goutj: Vec<Matrix>,
    gouth: Vec<Matrix>,
    /// Pre-activation adjoints.
    gz: Matrix,
    gzj: Vec<Matrix>,
    gzh: Vec<Matrix>,
    /// Transpose scratch (`out_w × chunk`) shared by gz/gzj/gzh.
    gt: Matrix,
    activated: bool,
}

/// All buffers of one batch chunk. Chunks are fully independent, so the
/// pool may hand each to any worker without changing results.
#[derive(Debug, Clone)]
struct ChunkWs {
    r0: usize,
    r1: usize,
    layers: Vec<LayerWs>,
    /// Final network outputs of this chunk, `chunk × out`.
    out_v: Matrix,
    out_j: Vec<Matrix>,
    out_h: Vec<Matrix>,
    /// Per-chunk gradient accumulator, merged in chunk order.
    grads: Gradients,
}

/// Preallocated scratch for repeated derivative-carrying forward/backward
/// passes over a fixed batch shape — the steady-state allocation-free
/// training path.
///
/// The chunk layout equals [`batch_chunks`]`(batch)`, i.e. exactly the
/// layout the allocating [`Mlp::forward_with_derivs`] path uses, so the
/// workspace path is bit-identical to it for every
/// [`sgm_par::Parallelism`] setting. Under `Parallelism::Serial` a
/// forward + backward pair performs **zero** heap allocations; pooled
/// execution allocates only the small per-task boxes inside `sgm-par`.
#[derive(Debug, Clone)]
pub struct MlpWorkspace {
    batch: usize,
    nd: usize,
    /// Transposed weights, refreshed from the network at the start of
    /// every forward pass (weights change each optimiser step).
    wt: Vec<Matrix>,
    chunks: Vec<ChunkWs>,
    /// Assembled full-batch outputs of the last forward pass.
    derivs: BatchDerivatives,
}

impl MlpWorkspace {
    /// Batch size this workspace was built for.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Number of derivative dimensions this workspace was built for.
    pub fn num_diff_dims(&self) -> usize {
        self.nd
    }

    /// Outputs of the most recent [`Mlp::forward_with_derivs_ws`] call.
    pub fn derivs(&self) -> &BatchDerivatives {
        &self.derivs
    }
}

impl Mlp {
    /// Builds a reusable workspace for batches of exactly `batch` rows
    /// with `nd` derivative dimensions. All buffers the staged training
    /// loop needs are allocated here, once per run.
    pub fn make_workspace(&self, batch: usize, nd: usize) -> MlpWorkspace {
        let ranges = if batch == 0 {
            Vec::new()
        } else {
            batch_chunks(batch)
        };
        let chunks = ranges
            .iter()
            .map(|&(r0, r1)| {
                let chunk = r1 - r0;
                let layers = self
                    .layers
                    .iter()
                    .enumerate()
                    .map(|(li, layer)| {
                        let in_w = layer.w.cols();
                        let out_w = layer.w.rows();
                        let act_len = if li != self.layers.len() - 1 {
                            chunk * out_w
                        } else {
                            0
                        };
                        LayerWs {
                            a_in: Matrix::zeros(chunk, in_w),
                            j_in: vec![Matrix::zeros(chunk, in_w); nd],
                            h_in: vec![Matrix::zeros(chunk, in_w); nd],
                            z: Matrix::zeros(chunk, out_w),
                            zj: vec![Matrix::zeros(chunk, out_w); nd],
                            zh: vec![Matrix::zeros(chunk, out_w); nd],
                            s1: vec![0.0; act_len],
                            s2: vec![0.0; act_len],
                            s3: vec![0.0; act_len],
                            gout: Matrix::zeros(chunk, out_w),
                            goutj: vec![Matrix::zeros(chunk, out_w); nd],
                            gouth: vec![Matrix::zeros(chunk, out_w); nd],
                            gz: Matrix::zeros(chunk, out_w),
                            gzj: vec![Matrix::zeros(chunk, out_w); nd],
                            gzh: vec![Matrix::zeros(chunk, out_w); nd],
                            gt: Matrix::zeros(out_w, chunk),
                            activated: li != self.layers.len() - 1,
                        }
                    })
                    .collect();
                ChunkWs {
                    r0,
                    r1,
                    layers,
                    out_v: Matrix::zeros(chunk, self.cfg.output_dim),
                    out_j: vec![Matrix::zeros(chunk, self.cfg.output_dim); nd],
                    out_h: vec![Matrix::zeros(chunk, self.cfg.output_dim); nd],
                    grads: self.zero_gradients(),
                }
            })
            .collect();
        MlpWorkspace {
            batch,
            nd,
            wt: self
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.w.cols(), l.w.rows()))
                .collect(),
            chunks,
            derivs: BatchDerivatives::zeros(batch, self.cfg.output_dim, nd),
        }
    }

    /// Encoder writing straight into the chunk's layer-0 input buffers
    /// (rows `r0..r1` of `x`) — the allocation-free twin of `encode`.
    #[allow(clippy::too_many_arguments)]
    fn encode_chunk(
        &self,
        x: &Matrix,
        r0: usize,
        r1: usize,
        diff_dims: &[usize],
        a: &mut Matrix,
        jac: &mut [Matrix],
        hess: &mut [Matrix],
    ) {
        let in_dim = self.cfg.input_dim;
        for m in jac.iter_mut() {
            m.fill(0.0);
        }
        for m in hess.iter_mut() {
            m.fill(0.0);
        }
        let Some(freq) = &self.freq else {
            // Identity encoding: copy the band, one-hot Jacobian.
            a.as_mut_slice()
                .copy_from_slice(&x.as_slice()[r0 * in_dim..r1 * in_dim]);
            for (di, &d) in diff_dims.iter().enumerate() {
                for r in 0..r1 - r0 {
                    jac[di].set(r, d, 1.0);
                }
            }
            return;
        };
        let nf = freq.rows();
        for r in 0..r1 - r0 {
            let xr = x.row(r0 + r);
            for (c, &xc) in xr.iter().enumerate().take(in_dim) {
                a.set(r, c, xc);
            }
            for (di, &d) in diff_dims.iter().enumerate() {
                jac[di].set(r, d, 1.0);
            }
            for s in 0..nf {
                let w = freq.row(s);
                let phase: f64 = w.iter().zip(xr).map(|(a, b)| a * b).sum();
                let (sn, cs) = phase.sin_cos();
                a.set(r, in_dim + s, sn);
                a.set(r, in_dim + nf + s, cs);
                for (di, &d) in diff_dims.iter().enumerate() {
                    let wd = w[d];
                    jac[di].set(r, in_dim + s, wd * cs);
                    jac[di].set(r, in_dim + nf + s, -wd * sn);
                    hess[di].set(r, in_dim + s, -wd * wd * sn);
                    hess[di].set(r, in_dim + nf + s, -wd * wd * cs);
                }
            }
        }
    }

    /// Forward body for one preallocated chunk; mirrors
    /// `forward_derivs_band` operation for operation so results stay
    /// bit-identical to the allocating path.
    fn forward_chunk_ws(&self, cw: &mut ChunkWs, wt: &[Matrix], x: &Matrix, diff_dims: &[usize]) {
        let nd = diff_dims.len();
        let ChunkWs {
            r0,
            r1,
            layers: lws,
            out_v,
            out_j,
            out_h,
            ..
        } = cw;
        let (r0, r1) = (*r0, *r1);
        let batch = r1 - r0;
        {
            let l0 = &mut lws[0];
            self.encode_chunk(
                x,
                r0,
                r1,
                diff_dims,
                &mut l0.a_in,
                &mut l0.j_in,
                &mut l0.h_in,
            );
        }
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            let (cur, rest) = lws[li..].split_first_mut().expect("layer buffers");
            gemm(1.0, &cur.a_in, &wt[li], 0.0, &mut cur.z);
            for r in 0..batch {
                simd::add_assign(cur.z.row_mut(r), &layer.b);
            }
            for d in 0..nd {
                gemm(1.0, &cur.j_in[d], &wt[li], 0.0, &mut cur.zj[d]);
                gemm(1.0, &cur.h_in[d], &wt[li], 0.0, &mut cur.zh[d]);
            }
            if li != last {
                let nxt = &mut rest[0];
                // σ straight into the next layer's input; σ'..σ''' into
                // the per-layer cache so backward reuses them. Derivative
                // combines go through the SIMD kernels (mirrors the
                // allocating path operation for operation).
                eval3_batch(
                    self.cfg.activation,
                    cur.z.as_slice(),
                    nxt.a_in.as_mut_slice(),
                    &mut cur.s1,
                    &mut cur.s2,
                    &mut cur.s3,
                );
                for d in 0..nd {
                    simd::act_fwd_jh(
                        &cur.s1,
                        &cur.s2,
                        cur.zj[d].as_slice(),
                        cur.zh[d].as_slice(),
                        nxt.j_in[d].as_mut_slice(),
                        nxt.h_in[d].as_mut_slice(),
                    );
                }
            } else {
                out_v.copy_from(&cur.z);
                for d in 0..nd {
                    out_j[d].copy_from(&cur.zj[d]);
                    out_h[d].copy_from(&cur.zh[d]);
                }
            }
        }
    }

    /// Derivative-carrying forward pass into a preallocated workspace.
    /// Outputs land in [`MlpWorkspace::derivs`]; the per-chunk caches stay
    /// in place for [`Mlp::backward_ws`].
    ///
    /// Bit-identical to [`Mlp::forward_with_derivs`] for every
    /// [`sgm_par::Parallelism`] setting, and allocation-free in serial
    /// mode.
    ///
    /// # Panics
    /// Panics if `x` or `diff_dims` disagree with the workspace shape.
    pub fn forward_with_derivs_ws(&self, x: &Matrix, diff_dims: &[usize], ws: &mut MlpWorkspace) {
        assert_eq!(x.cols(), self.cfg.input_dim, "input dim mismatch");
        assert_eq!(x.rows(), ws.batch, "workspace batch mismatch");
        assert_eq!(diff_dims.len(), ws.nd, "workspace diff-dim mismatch");
        for &d in diff_dims {
            assert!(d < self.cfg.input_dim, "diff dim {d} out of range");
        }
        for (li, layer) in self.layers.iter().enumerate() {
            layer.w.transpose_into(&mut ws.wt[li]);
        }
        let MlpWorkspace {
            chunks, wt, derivs, ..
        } = ws;
        let work = self.par_work(x.rows(), diff_dims.len());
        match sgm_par::current().pool(work, MLP_PAR_WORK) {
            Some(pool) => pool.par_chunks_mut(chunks, 1, |_base, slice| {
                for cw in slice {
                    self.forward_chunk_ws(cw, wt, x, diff_dims);
                }
            }),
            None => {
                for cw in chunks.iter_mut() {
                    self.forward_chunk_ws(cw, wt, x, diff_dims);
                }
            }
        }
        for cw in chunks.iter() {
            scatter_band(&mut derivs.values, cw.r0, &cw.out_v);
            for d in 0..diff_dims.len() {
                scatter_band(&mut derivs.jac[d], cw.r0, &cw.out_j[d]);
                scatter_band(&mut derivs.hess[d], cw.r0, &cw.out_h[d]);
            }
        }
    }

    /// Backward body for one workspace chunk; mirrors `backward_chunk`.
    fn backward_chunk_ws(&self, cw: &mut ChunkWs, adjoints: &BatchDerivatives) {
        let nd = cw.layers[0].zj.len();
        let ChunkWs {
            r0,
            r1,
            layers: lws,
            grads,
            ..
        } = cw;
        let (r0, r1) = (*r0, *r1);
        let batch = r1 - r0;
        grads.zero();
        {
            let top = lws.last_mut().expect("layer buffers");
            let cols = adjoints.values.cols();
            top.gout
                .as_mut_slice()
                .copy_from_slice(&adjoints.values.as_slice()[r0 * cols..r1 * cols]);
            for d in 0..nd {
                top.goutj[d]
                    .as_mut_slice()
                    .copy_from_slice(&adjoints.jac[d].as_slice()[r0 * cols..r1 * cols]);
                top.gouth[d]
                    .as_mut_slice()
                    .copy_from_slice(&adjoints.hess[d].as_slice()[r0 * cols..r1 * cols]);
            }
        }
        for (li, layer) in self.layers.iter().enumerate().rev() {
            let (below, from_li) = lws.split_at_mut(li);
            let l = &mut from_li[0];
            // Activation adjoints → pre-activation adjoints. σ'..σ''' come
            // straight from the forward-pass cache.
            if l.activated {
                simd::hadamard(l.gout.as_slice(), &l.s1, l.gz.as_mut_slice());
                for d in 0..nd {
                    simd::act_bwd_accum(
                        &l.s1,
                        &l.s2,
                        &l.s3,
                        l.zj[d].as_slice(),
                        l.zh[d].as_slice(),
                        l.goutj[d].as_slice(),
                        l.gouth[d].as_slice(),
                        l.gz.as_mut_slice(),
                        l.gzj[d].as_mut_slice(),
                        l.gzh[d].as_mut_slice(),
                    );
                }
            } else {
                l.gz.copy_from(&l.gout);
                for d in 0..nd {
                    l.gzj[d].copy_from(&l.goutj[d]);
                    l.gzh[d].copy_from(&l.gouth[d]);
                }
            }
            // gW += gzᵀ a_in + Σ_d (gzjᵀ j_in + gzhᵀ h_in)
            l.gz.transpose_into(&mut l.gt);
            gemm(1.0, &l.gt, &l.a_in, 1.0, &mut grads.w[li]);
            for d in 0..nd {
                l.gzj[d].transpose_into(&mut l.gt);
                gemm(1.0, &l.gt, &l.j_in[d], 1.0, &mut grads.w[li]);
                l.gzh[d].transpose_into(&mut l.gt);
                gemm(1.0, &l.gt, &l.h_in[d], 1.0, &mut grads.w[li]);
            }
            // gb += column sums of gz (bias enters only the value path),
            // row-by-row in ascending order.
            for r in 0..batch {
                simd::add_assign(&mut grads.b[li], l.gz.row(r));
            }
            if li == 0 {
                break; // inputs are not trainable
            }
            // Propagate to layer inputs: carry for the layer below.
            let prev = below.last_mut().expect("previous layer buffers");
            gemm(1.0, &l.gz, &layer.w, 0.0, &mut prev.gout);
            for d in 0..nd {
                gemm(1.0, &l.gzj[d], &layer.w, 0.0, &mut prev.goutj[d]);
                gemm(1.0, &l.gzh[d], &layer.w, 0.0, &mut prev.gouth[d]);
            }
        }
    }

    /// Backward pass over the caches left by
    /// [`Mlp::forward_with_derivs_ws`], **accumulating** exact parameter
    /// gradients into `out` (callers zero `out` once per iteration and
    /// may stack interior + boundary contributions).
    ///
    /// Per-chunk gradients merge in chunk order, so results are
    /// bit-identical for every [`sgm_par::Parallelism`] setting;
    /// allocation-free in serial mode.
    ///
    /// # Panics
    /// Panics if adjoint shapes do not match the workspace.
    pub fn backward_ws(
        &self,
        ws: &mut MlpWorkspace,
        adjoints: &BatchDerivatives,
        out: &mut Gradients,
    ) {
        assert_eq!(adjoints.jac.len(), ws.nd, "jac adjoint count");
        assert_eq!(adjoints.hess.len(), ws.nd, "hess adjoint count");
        assert_eq!(adjoints.values.rows(), ws.batch, "adjoint batch mismatch");
        let work = self.par_work(ws.batch, ws.nd);
        let chunks = &mut ws.chunks;
        match sgm_par::current().pool(work, MLP_PAR_WORK) {
            Some(pool) => pool.par_chunks_mut(chunks, 1, |_base, slice| {
                for cw in slice {
                    self.backward_chunk_ws(cw, adjoints);
                }
            }),
            None => {
                for cw in chunks.iter_mut() {
                    self.backward_chunk_ws(cw, adjoints);
                }
            }
        }
        for cw in chunks.iter() {
            out.add_assign(&cw.grads);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net(seed: u64, fourier: bool) -> Mlp {
        let cfg = MlpConfig {
            input_dim: 2,
            output_dim: 2,
            hidden_width: 8,
            hidden_layers: 2,
            activation: Activation::SiLu,
            fourier: if fourier {
                Some(FourierConfig {
                    num_features: 3,
                    sigma: 0.5,
                })
            } else {
                None
            },
        };
        let mut rng = Rng64::new(seed);
        Mlp::new(&cfg, &mut rng)
    }

    #[test]
    fn forward_matches_forward_with_derivs() {
        let net = tiny_net(1, false);
        let x = Matrix::from_rows(&[&[0.3, -0.2], &[1.1, 0.4]]);
        let plain = net.forward(&x);
        let (full, _) = net.forward_with_derivs(&x, &[0, 1]);
        for i in 0..plain.as_slice().len() {
            assert!((plain.as_slice()[i] - full.values.as_slice()[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn jacobian_matches_finite_difference() {
        for fourier in [false, true] {
            let net = tiny_net(2, fourier);
            let x = Matrix::from_rows(&[&[0.25, 0.6]]);
            let (full, _) = net.forward_with_derivs(&x, &[0, 1]);
            let h = 1e-6;
            for d in 0..2 {
                let mut xp = x.clone();
                xp.add_at(0, d, h);
                let mut xm = x.clone();
                xm.add_at(0, d, -h);
                let fp = net.forward(&xp);
                let fm = net.forward(&xm);
                for o in 0..2 {
                    let fd = (fp.get(0, o) - fm.get(0, o)) / (2.0 * h);
                    let an = full.jac[d].get(0, o);
                    assert!(
                        (fd - an).abs() < 1e-6 * (1.0 + fd.abs()),
                        "fourier={fourier} d={d} o={o}: {an} vs {fd}"
                    );
                }
            }
        }
    }

    #[test]
    fn hessian_matches_finite_difference() {
        for fourier in [false, true] {
            let net = tiny_net(3, fourier);
            let x = Matrix::from_rows(&[&[-0.4, 0.9]]);
            let (full, _) = net.forward_with_derivs(&x, &[0, 1]);
            let h = 1e-4;
            for d in 0..2 {
                let mut xp = x.clone();
                xp.add_at(0, d, h);
                let mut xm = x.clone();
                xm.add_at(0, d, -h);
                let fp = net.forward(&xp);
                let f0 = net.forward(&x);
                let fm = net.forward(&xm);
                for o in 0..2 {
                    let fd = (fp.get(0, o) - 2.0 * f0.get(0, o) + fm.get(0, o)) / (h * h);
                    let an = full.hess[d].get(0, o);
                    assert!(
                        (fd - an).abs() < 1e-4 * (1.0 + fd.abs()),
                        "fourier={fourier} d={d} o={o}: {an} vs {fd}"
                    );
                }
            }
        }
    }

    /// Composite loss touching values, jacobians and hessians:
    /// L = Σ_batch Σ_out (y² + 2·y_x·y_y + y_xx² + 0.5·y_yy)
    fn composite_loss(net: &Mlp, x: &Matrix) -> f64 {
        let (full, _) = net.forward_with_derivs(x, &[0, 1]);
        let mut l = 0.0;
        let n = full.values.as_slice().len();
        for i in 0..n {
            let y = full.values.as_slice()[i];
            let yx = full.jac[0].as_slice()[i];
            let yy = full.jac[1].as_slice()[i];
            let yxx = full.hess[0].as_slice()[i];
            let yyy = full.hess[1].as_slice()[i];
            l += y * y + 2.0 * yx * yy + yxx * yxx + 0.5 * yyy;
        }
        l
    }

    fn composite_adjoints(full: &BatchDerivatives) -> BatchDerivatives {
        let mut adj = BatchDerivatives::zeros_like(full);
        let n = full.values.as_slice().len();
        for i in 0..n {
            adj.values.as_mut_slice()[i] = 2.0 * full.values.as_slice()[i];
            adj.jac[0].as_mut_slice()[i] = 2.0 * full.jac[1].as_slice()[i];
            adj.jac[1].as_mut_slice()[i] = 2.0 * full.jac[0].as_slice()[i];
            adj.hess[0].as_mut_slice()[i] = 2.0 * full.hess[0].as_slice()[i];
            adj.hess[1].as_mut_slice()[i] = 0.5;
        }
        adj
    }

    #[test]
    fn parameter_gradients_match_finite_difference() {
        for fourier in [false, true] {
            let mut net = tiny_net(4, fourier);
            let x = Matrix::from_rows(&[&[0.2, -0.5], &[0.7, 0.1], &[-0.3, 0.8]]);
            let (full, cache) = net.forward_with_derivs(&x, &[0, 1]);
            let adj = composite_adjoints(&full);
            let grads = net.backward(&cache, &adj);
            let flat = grads.flat();

            let params = net.params();
            let h = 1e-6;
            // Spot-check a spread of parameters (full sweep is slow).
            let np = params.len();
            for &pi in &[0usize, 1, np / 3, np / 2, 2 * np / 3, np - 2, np - 1] {
                let mut pp = params.clone();
                pp[pi] += h;
                net.set_params(&pp);
                let lp = composite_loss(&net, &x);
                pp[pi] -= 2.0 * h;
                net.set_params(&pp);
                let lm = composite_loss(&net, &x);
                net.set_params(&params);
                let fd = (lp - lm) / (2.0 * h);
                assert!(
                    (flat[pi] - fd).abs() < 2e-4 * (1.0 + fd.abs()),
                    "fourier={fourier} param {pi}: {} vs {fd}",
                    flat[pi]
                );
            }
        }
    }

    #[test]
    fn gradients_flat_order_matches_for_each_param() {
        let mut net = tiny_net(5, false);
        let n = net.num_params();
        let mut count = 0;
        net.for_each_param_mut(|idx, _| {
            assert_eq!(idx, count);
            count += 1;
        });
        assert_eq!(count, n);
        assert_eq!(net.zero_gradients().flat().len(), n);
    }

    #[test]
    fn params_roundtrip() {
        let mut net = tiny_net(6, true);
        let p = net.params();
        let mut p2 = p.clone();
        for v in &mut p2 {
            *v += 1.0;
        }
        net.set_params(&p2);
        assert_eq!(net.params(), p2);
        net.set_params(&p);
        assert_eq!(net.params(), p);
    }

    #[test]
    fn gradients_arithmetic() {
        let net = tiny_net(7, false);
        let mut g = net.zero_gradients();
        let x = Matrix::from_rows(&[&[0.1, 0.2]]);
        let (full, cache) = net.forward_with_derivs(&x, &[0, 1]);
        let adj = composite_adjoints(&full);
        let g1 = net.backward(&cache, &adj);
        g.add_assign(&g1);
        g.add_assign(&g1);
        g.scale(0.5);
        let a = g.flat();
        let b = g1.flat();
        for i in 0..a.len() {
            assert!((a[i] - b[i]).abs() < 1e-12);
        }
        assert!(g.l2_norm() > 0.0);
    }

    #[test]
    fn empty_diff_dims_supported() {
        let net = tiny_net(8, false);
        let x = Matrix::from_rows(&[&[0.3, 0.4]]);
        let (full, cache) = net.forward_with_derivs(&x, &[]);
        assert!(full.jac.is_empty());
        let mut adj = BatchDerivatives::zeros_like(&full);
        adj.values.set(0, 0, 1.0);
        let g = net.backward(&cache, &adj);
        assert!(g.l2_norm() > 0.0);
    }

    /// Serial and pooled execution agree to the bit for the values path,
    /// the derivative-carrying forward pass and the merged gradients —
    /// the Parallelism setting must only change who computes each chunk.
    #[test]
    fn parallel_paths_bit_identical() {
        use sgm_par::Parallelism;
        for &tier in sgm_linalg::simd::available_tiers() {
            sgm_linalg::simd::with_tier(tier, || {
                for fourier in [false, true] {
                    let net = tiny_net(11, fourier);
                    let mut rng = Rng64::new(42);
                    let x = Matrix::gaussian(70, 2, &mut rng);
                    let run = |p: Parallelism| {
                        sgm_par::with_parallelism(p, || {
                            let v = net.forward(&x);
                            let (full, cache) = net.forward_with_derivs(&x, &[0, 1]);
                            let adj = composite_adjoints(&full);
                            let g = net.backward(&cache, &adj).flat();
                            (v, full, g)
                        })
                    };
                    let (v0, f0, g0) = run(Parallelism::Serial);
                    for p in [
                        Parallelism::Threads(1),
                        Parallelism::Threads(2),
                        Parallelism::Threads(8),
                    ] {
                        let (v, f, g) = run(p);
                        for (a, b) in v0.as_slice().iter().zip(v.as_slice()) {
                            assert_eq!(a.to_bits(), b.to_bits(), "{tier:?} {p:?} values");
                        }
                        for d in 0..2 {
                            for (a, b) in f0.jac[d].as_slice().iter().zip(f.jac[d].as_slice()) {
                                assert_eq!(a.to_bits(), b.to_bits(), "{tier:?} {p:?} jac[{d}]");
                            }
                            for (a, b) in f0.hess[d].as_slice().iter().zip(f.hess[d].as_slice()) {
                                assert_eq!(a.to_bits(), b.to_bits(), "{tier:?} {p:?} hess[{d}]");
                            }
                        }
                        for (i, (a, b)) in g0.iter().zip(&g).enumerate() {
                            assert_eq!(a.to_bits(), b.to_bits(), "{tier:?} {p:?} grad[{i}]");
                        }
                    }
                }
            });
        }
    }

    /// The preallocated-workspace forward/backward path must be
    /// bit-identical to the allocating path, for every parallelism
    /// setting, with and without Fourier features, and across repeated
    /// reuse of the same workspace.
    #[test]
    fn workspace_path_matches_allocating_path() {
        for &tier in sgm_linalg::simd::available_tiers() {
            sgm_linalg::simd::with_tier(tier, workspace_vs_allocating_body);
        }
    }

    fn workspace_vs_allocating_body() {
        use sgm_par::Parallelism;
        for fourier in [false, true] {
            let net = tiny_net(17, fourier);
            let mut rng = Rng64::new(99);
            let xs: Vec<Matrix> = (0..3).map(|_| Matrix::gaussian(70, 2, &mut rng)).collect();
            for p in [
                Parallelism::Serial,
                Parallelism::Threads(1),
                Parallelism::Threads(8),
            ] {
                sgm_par::with_parallelism(p, || {
                    let mut ws = net.make_workspace(70, 2);
                    for x in &xs {
                        let (full, cache) = net.forward_with_derivs(x, &[0, 1]);
                        let adj = composite_adjoints(&full);
                        let g_ref = net.backward(&cache, &adj).flat();

                        net.forward_with_derivs_ws(x, &[0, 1], &mut ws);
                        let got = ws.derivs();
                        for (a, b) in full.values.as_slice().iter().zip(got.values.as_slice()) {
                            assert_eq!(a.to_bits(), b.to_bits(), "{p:?} values");
                        }
                        for d in 0..2 {
                            for (a, b) in full.jac[d].as_slice().iter().zip(got.jac[d].as_slice()) {
                                assert_eq!(a.to_bits(), b.to_bits(), "{p:?} jac[{d}]");
                            }
                            for (a, b) in full.hess[d].as_slice().iter().zip(got.hess[d].as_slice())
                            {
                                assert_eq!(a.to_bits(), b.to_bits(), "{p:?} hess[{d}]");
                            }
                        }
                        let mut grads = net.zero_gradients();
                        net.backward_ws(&mut ws, &adj, &mut grads);
                        let g = grads.flat();
                        for (i, (a, b)) in g_ref.iter().zip(&g).enumerate() {
                            assert_eq!(a.to_bits(), b.to_bits(), "{p:?} grad[{i}]");
                        }
                    }
                });
            }
        }
    }

    /// Value-only workspaces (`nd == 0`, the boundary path) agree with
    /// the allocating path too.
    #[test]
    fn workspace_value_only_path_matches() {
        let net = tiny_net(23, false);
        let mut rng = Rng64::new(7);
        let x = Matrix::gaussian(40, 2, &mut rng);
        let (full, cache) = net.forward_with_derivs(&x, &[]);
        let mut adj = BatchDerivatives::zeros_like(&full);
        for (dst, src) in adj
            .values
            .as_mut_slice()
            .iter_mut()
            .zip(full.values.as_slice())
        {
            *dst = 2.0 * src;
        }
        let g_ref = net.backward(&cache, &adj).flat();

        let mut ws = net.make_workspace(40, 0);
        net.forward_with_derivs_ws(&x, &[], &mut ws);
        for (a, b) in full
            .values
            .as_slice()
            .iter()
            .zip(ws.derivs().values.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "values");
        }
        let mut grads = net.zero_gradients();
        net.backward_ws(&mut ws, &adj, &mut grads);
        for (a, b) in g_ref.iter().zip(&grads.flat()) {
            assert_eq!(a.to_bits(), b.to_bits(), "grads");
        }
    }

    #[test]
    #[should_panic]
    fn wrong_input_dim_panics() {
        let net = tiny_net(9, false);
        let x = Matrix::from_rows(&[&[0.3, 0.4, 0.5]]);
        let _ = net.forward(&x);
    }
}
