//! Batched multi-model execution: pack `B` same-architecture [`Mlp`]s
//! into interleaved SoA storage and run the derivative-carrying forward
//! and exact backward pass for all `B` instances in one register-tiled
//! sweep.
//!
//! # Layout
//!
//! Every per-instance scalar `s[i]` (a weight, a bias, an activation, an
//! Adam moment) lives at interleaved offset `i·L + l`, where `l` is the
//! instance's *lane* and `L` ([`BatchedMlp::lanes`]) is the instance
//! count rounded up to a multiple of 8 so every (logical index, lane)
//! run fills whole AVX-512 registers. Pad lanes carry all-zero weights
//! and zero adjoints, so they never produce NaNs and never contaminate
//! live lanes (lanes do not mix in any kernel).
//!
//! Within a chunk, the value / jacobian / hessian streams of each layer
//! are stacked as vertical *bands* of one matrix in the fixed order
//! `[a, j₀, h₀, j₁, h₁, …]` (band `b` = rows `b·chunk..(b+1)·chunk`).
//! Each layer then needs exactly one GEMM per direction — forward
//! pre-activation, input-gradient propagation, and the weight-gradient
//! accumulation — instead of `1 + 2·nd`, so the packed weight panel is
//! streamed once per layer rather than once per band.
//!
//! # Bit-identity contract
//!
//! For each instance, forward outputs, parameter gradients and Adam
//! updates are **bit-identical** to running that instance alone through
//! [`Mlp::forward_with_derivs_ws`] / [`Mlp::backward_ws`] /
//! [`Adam::step`](crate::optimizer::Adam::step) on the same SIMD tier
//! and any thread count. This holds because
//! [`sgm_linalg::simd::bgemm_accum`] and
//! [`sgm_linalg::simd::adam_update_multi`] evaluate the same
//! per-element ascending-`k` chains as the solo kernels, every
//! elementwise kernel is position-independent, the chunk layout equals
//! [`batch_chunks`]`(batch)`, and gradients merge in chunk order exactly
//! like the solo path. Band stacking preserves the chains too: the
//! fused forward/propagation GEMMs keep each band row's ascending-`k`
//! chain untouched (extra rows never mix), and the fused
//! weight-gradient GEMM walks `k` through the bands in `[a, j₀, h₀, …]`
//! order — exactly the sequence of the solo path's per-band
//! accumulations. Even the `β = 0` GEMM semantics (a multiply by zero,
//! which preserves the sign of a zero result) are replicated.

use crate::activation::eval3_batch;
use crate::mlp::{batch_chunks, BatchDerivatives, Gradients, Mlp, MlpConfig};
use crate::optimizer::{AdamConfig, LrSchedule};
use sgm_linalg::dense::Matrix;
use sgm_linalg::simd;

/// Auto-mode work cutoff for pooling batched chunks — same constant the
/// solo MLP path uses, scaled naturally because batched work estimates
/// multiply by the lane count.
const MLP_PAR_WORK: usize = 1 << 16;

/// One packed layer: weights `out_w × (in_w·L)` with entry
/// `(j, k·L + l)` holding instance `l`'s `w[j][k]`, bias `out_w·L`.
#[derive(Debug, Clone)]
struct BatchedLayer {
    w: Matrix,
    b: Vec<f64>,
}

/// `B` same-architecture networks in interleaved SoA storage.
#[derive(Debug, Clone)]
pub struct BatchedMlp {
    cfg: MlpConfig,
    instances: usize,
    lanes: usize,
    /// Per-instance frozen Fourier frequency matrices (encoding is
    /// evaluated per lane in scalar code, exactly like the solo path).
    freq: Vec<Option<Matrix>>,
    layers: Vec<BatchedLayer>,
}

/// Interleaved parameter gradients shaped like a [`BatchedMlp`].
#[derive(Debug, Clone)]
pub struct BatchedGradients {
    lanes: usize,
    w: Vec<Matrix>,
    b: Vec<Vec<f64>>,
}

impl BatchedGradients {
    /// Resets all entries to zero in place.
    pub fn zero(&mut self) {
        for w in &mut self.w {
            w.fill(0.0);
        }
        for b in &mut self.b {
            for x in b {
                *x = 0.0;
            }
        }
    }

    /// Adds another gradient in place — the same elementwise exact add
    /// the solo [`Gradients::add_assign`] performs, so per-lane merge
    /// order matches the solo chunk merge.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &BatchedGradients) {
        for (a, b) in self.w.iter_mut().zip(&other.w) {
            a.axpy(1.0, b);
        }
        for (a, b) in self.b.iter_mut().zip(&other.b) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// Deinterleaves one instance's gradient into a solo [`Gradients`].
    ///
    /// # Panics
    /// Panics if `out` is shaped for a different architecture.
    pub fn extract_to(&self, lane: usize, out: &mut Gradients) {
        assert!(lane < self.lanes, "lane out of range");
        assert_eq!(out.w.len(), self.w.len(), "layer count mismatch");
        for ((bw, bb), (sw, sb)) in self
            .w
            .iter()
            .zip(&self.b)
            .zip(out.w.iter_mut().zip(&mut out.b))
        {
            let src = bw.as_slice();
            for (i, v) in sw.as_mut_slice().iter_mut().enumerate() {
                *v = src[i * self.lanes + lane];
            }
            for (i, v) in sb.iter_mut().enumerate() {
                *v = bb[i * self.lanes + lane];
            }
        }
    }
}

/// Per-layer buffers of one batched chunk, mirroring the solo
/// workspace's `LayerWs` with every column dimension widened by the
/// lane count and the value/jacobian/hessian streams stacked as
/// vertical bands (`1 + 2·nd` bands of `chunk` rows each, in the chain
/// order `[a, j₀, h₀, j₁, h₁, …]`).
#[derive(Debug, Clone)]
struct BatchedLayerWs {
    /// Banded layer input: band 0 the activations, bands `1+2d`/`2+2d`
    /// the `d`-th jacobian/hessian streams.
    xin: Matrix,
    /// Banded pre-activations, same band order as `xin`.
    zall: Matrix,
    s1: Vec<f64>,
    s2: Vec<f64>,
    s3: Vec<f64>,
    /// Banded output adjoints.
    goutall: Matrix,
    /// Banded pre-activation adjoints.
    gzall: Matrix,
    activated: bool,
}

/// All buffers of one batched chunk; chunks stay fully independent so
/// the pool may hand each to any worker without changing results.
#[derive(Debug, Clone)]
struct BatchedChunkWs {
    r0: usize,
    r1: usize,
    layers: Vec<BatchedLayerWs>,
    out_v: Matrix,
    out_j: Vec<Matrix>,
    out_h: Vec<Matrix>,
    grads: BatchedGradients,
}

/// Preallocated scratch for repeated batched forward/backward passes
/// over a fixed batch shape — the multi-instance twin of
/// [`crate::mlp::MlpWorkspace`], allocation-free in the steady state.
#[derive(Debug, Clone)]
pub struct BatchedWorkspace {
    batch: usize,
    nd: usize,
    lanes: usize,
    /// Interleaved transposed weights (`in_w × out_w·L`), refreshed at
    /// the start of every forward pass.
    wtp: Vec<simd::PackedB>,
    /// Interleaved weights packed for backward propagation, refreshed
    /// at the start of every backward pass.
    wp: Vec<simd::PackedB>,
    chunks: Vec<BatchedChunkWs>,
    /// Assembled interleaved full-batch outputs of the last forward.
    dv: Matrix,
    dj: Vec<Matrix>,
    dh: Vec<Matrix>,
    /// Interleaved full-batch adjoints consumed by the backward pass
    /// (pad lanes stay zero forever).
    av: Matrix,
    aj: Vec<Matrix>,
    ah: Vec<Matrix>,
}

impl BatchedWorkspace {
    /// Batch size this workspace was built for.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Number of derivative dimensions this workspace was built for.
    pub fn num_diff_dims(&self) -> usize {
        self.nd
    }

    /// Deinterleaves one instance's outputs of the most recent
    /// [`BatchedMlp::forward_with_derivs_batched`] call.
    ///
    /// # Panics
    /// Panics if `out` does not match the workspace shape.
    pub fn extract_derivs(&self, lane: usize, out: &mut BatchDerivatives) {
        assert!(lane < self.lanes, "lane out of range");
        assert_eq!(out.values.rows(), self.batch, "derivs batch mismatch");
        assert_eq!(out.jac.len(), self.nd, "derivs diff-dim mismatch");
        let cols = out.values.cols();
        let deinterleave = |src: &Matrix, dst: &mut Matrix| {
            let s = src.as_slice();
            let srl = cols * self.lanes;
            for (r, row) in dst.as_mut_slice().chunks_exact_mut(cols).enumerate() {
                let sr = &s[r * srl..(r + 1) * srl];
                for (o, v) in row.iter_mut().enumerate() {
                    *v = sr[o * self.lanes + lane];
                }
            }
        };
        deinterleave(&self.dv, &mut out.values);
        for d in 0..self.nd {
            deinterleave(&self.dj[d], &mut out.jac[d]);
            deinterleave(&self.dh[d], &mut out.hess[d]);
        }
    }

    /// Interleaves one instance's adjoints into the workspace for the
    /// next [`BatchedMlp::backward_batched`] call.
    ///
    /// # Panics
    /// Panics if `adj` does not match the workspace shape.
    pub fn set_adjoints(&mut self, lane: usize, adj: &BatchDerivatives) {
        assert!(lane < self.lanes, "lane out of range");
        assert_eq!(adj.values.rows(), self.batch, "adjoint batch mismatch");
        assert_eq!(adj.jac.len(), self.nd, "adjoint diff-dim mismatch");
        let cols = adj.values.cols();
        let lanes = self.lanes;
        let interleave = |src: &Matrix, dst: &mut Matrix| {
            let d = dst.as_mut_slice();
            let drl = cols * lanes;
            for (r, row) in src.as_slice().chunks_exact(cols).enumerate() {
                let dr = &mut d[r * drl..(r + 1) * drl];
                for (o, &v) in row.iter().enumerate() {
                    dr[o * lanes + lane] = v;
                }
            }
        };
        interleave(&adj.values, &mut self.av);
        for d in 0..self.nd {
            interleave(&adj.jac[d], &mut self.aj[d]);
            interleave(&adj.hess[d], &mut self.ah[d]);
        }
    }
}

/// Multiplies a buffer by zero in place — the exact `β = 0` semantics
/// of [`sgm_linalg::dense::gemm`] (`*v *= 0.0` keeps the sign of a zero
/// coming out of an all-zero accumulation chain, which a plain fill
/// would not).
fn beta_zero(buf: &mut [f64]) {
    for v in buf {
        *v *= 0.0;
    }
}

/// Writes `band` into `dst` starting at row `r0` (same column count).
fn scatter_rows(dst: &mut Matrix, r0: usize, band: &Matrix) {
    let cols = dst.cols();
    dst.as_mut_slice()[r0 * cols..(r0 + band.rows()) * cols].copy_from_slice(band.as_slice());
}

impl BatchedMlp {
    /// Packs same-architecture networks into interleaved storage. The
    /// lane count is the instance count rounded up to a multiple of 8;
    /// pad lanes carry zero weights.
    ///
    /// # Panics
    /// Panics if `nets` is empty or the architectures differ.
    pub fn pack(nets: &[&Mlp]) -> Self {
        assert!(!nets.is_empty(), "pack needs at least one network");
        let cfg = nets[0].config().clone();
        for n in nets {
            assert_eq!(n.config(), &cfg, "pack requires identical architectures");
        }
        let instances = nets.len();
        let lanes = instances.next_multiple_of(8);
        let layers = nets[0]
            .layers
            .iter()
            .map(|l| BatchedLayer {
                w: Matrix::zeros(l.w.rows(), l.w.cols() * lanes),
                b: vec![0.0; l.b.len() * lanes],
            })
            .collect();
        let mut packed = BatchedMlp {
            cfg,
            instances,
            lanes,
            freq: vec![None; instances],
            layers,
        };
        for (l, n) in nets.iter().enumerate() {
            packed.sync_from(l, n);
        }
        packed
    }

    /// Number of packed instances.
    pub fn instances(&self) -> usize {
        self.instances
    }

    /// Interleave stride (instances rounded up to a multiple of 8).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The shared architecture.
    pub fn config(&self) -> &MlpConfig {
        &self.cfg
    }

    /// Trainable parameters per instance.
    pub fn num_params_per_instance(&self) -> usize {
        self.layers
            .iter()
            .map(|l| (l.w.rows() * l.w.cols() + l.b.len()) / self.lanes)
            .sum()
    }

    /// Re-interleaves one instance's parameters (and Fourier
    /// frequencies) from a solo network — used when (re)forming a group
    /// or restoring a checkpoint into a lane.
    ///
    /// # Panics
    /// Panics on lane/architecture mismatch.
    pub fn sync_from(&mut self, lane: usize, net: &Mlp) {
        assert!(lane < self.instances, "lane out of range");
        assert_eq!(net.config(), &self.cfg, "architecture mismatch");
        for (bl, nl) in self.layers.iter_mut().zip(&net.layers) {
            let dst = bl.w.as_mut_slice();
            for (i, &v) in nl.w.as_slice().iter().enumerate() {
                dst[i * self.lanes + lane] = v;
            }
            for (i, &v) in nl.b.iter().enumerate() {
                bl.b[i * self.lanes + lane] = v;
            }
        }
        self.freq[lane] = net.fourier_frequencies().cloned();
    }

    /// Deinterleaves one instance's parameters into a solo network
    /// (allocation-free; the write-back half of the lockstep loop).
    ///
    /// # Panics
    /// Panics on lane/architecture mismatch.
    pub fn extract_to(&self, lane: usize, net: &mut Mlp) {
        assert!(lane < self.instances, "lane out of range");
        assert_eq!(net.config(), &self.cfg, "architecture mismatch");
        for (bl, nl) in self.layers.iter().zip(&mut net.layers) {
            let src = bl.w.as_slice();
            for (i, v) in nl.w.as_mut_slice().iter_mut().enumerate() {
                *v = src[i * self.lanes + lane];
            }
            for (i, v) in nl.b.iter_mut().enumerate() {
                *v = bl.b[i * self.lanes + lane];
            }
        }
    }

    /// Zero-initialised interleaved gradients shaped like this batch.
    pub fn zero_gradients(&self) -> BatchedGradients {
        BatchedGradients {
            lanes: self.lanes,
            w: self
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
                .collect(),
            b: self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    /// Visits every interleaved parameter slice (each layer's weights,
    /// then its bias) with the slice's offset into the interleaved flat
    /// vector — offsets equal the solo flat offsets times the lane
    /// count, which is what lets [`BatchedAdam`] mirror the solo
    /// optimiser slice for slice.
    pub fn for_each_param_slice_mut(&mut self, mut f: impl FnMut(usize, &mut [f64])) {
        let mut off = 0;
        for layer in &mut self.layers {
            let w = layer.w.as_mut_slice();
            let nw = w.len();
            f(off, w);
            off += nw;
            f(off, &mut layer.b);
            off += layer.b.len();
        }
    }

    /// Builds a reusable workspace for batches of exactly `batch` rows
    /// with `nd` derivative dimensions.
    pub fn make_workspace(&self, batch: usize, nd: usize) -> BatchedWorkspace {
        let ls = self.lanes;
        let out_dim = self.cfg.output_dim;
        let bands = 1 + 2 * nd;
        let ranges = if batch == 0 {
            Vec::new()
        } else {
            batch_chunks(batch)
        };
        let chunks = ranges
            .iter()
            .map(|&(r0, r1)| {
                let chunk = r1 - r0;
                let nl = self.layers.len();
                let layers = self
                    .layers
                    .iter()
                    .enumerate()
                    .map(|(li, layer)| {
                        let in_w = layer.w.cols() / ls;
                        let out_w = layer.w.rows();
                        let activated = li != nl - 1;
                        let act_len = if activated { chunk * out_w * ls } else { 0 };
                        BatchedLayerWs {
                            xin: Matrix::zeros(bands * chunk, in_w * ls),
                            zall: Matrix::zeros(bands * chunk, out_w * ls),
                            s1: vec![0.0; act_len],
                            s2: vec![0.0; act_len],
                            s3: vec![0.0; act_len],
                            goutall: Matrix::zeros(bands * chunk, out_w * ls),
                            gzall: Matrix::zeros(bands * chunk, out_w * ls),
                            activated,
                        }
                    })
                    .collect();
                BatchedChunkWs {
                    r0,
                    r1,
                    layers,
                    out_v: Matrix::zeros(chunk, out_dim * ls),
                    out_j: vec![Matrix::zeros(chunk, out_dim * ls); nd],
                    out_h: vec![Matrix::zeros(chunk, out_dim * ls); nd],
                    grads: self.zero_gradients(),
                }
            })
            .collect();
        BatchedWorkspace {
            batch,
            nd,
            lanes: ls,
            wtp: self.layers.iter().map(|_| simd::PackedB::new()).collect(),
            wp: self.layers.iter().map(|_| simd::PackedB::new()).collect(),
            chunks,
            dv: Matrix::zeros(batch, out_dim * ls),
            dj: vec![Matrix::zeros(batch, out_dim * ls); nd],
            dh: vec![Matrix::zeros(batch, out_dim * ls); nd],
            av: Matrix::zeros(batch, out_dim * ls),
            aj: vec![Matrix::zeros(batch, out_dim * ls); nd],
            ah: vec![Matrix::zeros(batch, out_dim * ls); nd],
        }
    }

    /// Rough work estimate steering the Auto parallel cutoff (the solo
    /// estimate times the lane count).
    fn par_work(&self, batch: usize, nd: usize) -> usize {
        batch
            .saturating_mul(self.num_params_per_instance())
            .saturating_mul(self.lanes)
            .saturating_mul(1 + 2 * nd)
    }

    /// Encoder for one instance's rows `r0..r1`, written at the
    /// instance's lane offsets into the banded layer-0 input — scalar
    /// arithmetic identical to the solo encoder, so encoded values
    /// match bit for bit.
    fn encode_lane(
        &self,
        inst: usize,
        x: &Matrix,
        r0: usize,
        r1: usize,
        diff_dims: &[usize],
        xin: &mut Matrix,
    ) {
        let ls = self.lanes;
        let rows = r1 - r0;
        let in_dim = self.cfg.input_dim;
        let Some(freq) = &self.freq[inst] else {
            for r in 0..rows {
                let xr = x.row(r0 + r);
                {
                    let ar = xin.row_mut(r);
                    for (c, &xc) in xr.iter().enumerate().take(in_dim) {
                        ar[c * ls + inst] = xc;
                    }
                }
                for (di, &d) in diff_dims.iter().enumerate() {
                    xin.row_mut((1 + 2 * di) * rows + r)[d * ls + inst] = 1.0;
                }
            }
            return;
        };
        let nf = freq.rows();
        for r in 0..rows {
            let xr = x.row(r0 + r);
            {
                let ar = xin.row_mut(r);
                for (c, &xc) in xr.iter().enumerate().take(in_dim) {
                    ar[c * ls + inst] = xc;
                }
            }
            for (di, &d) in diff_dims.iter().enumerate() {
                xin.row_mut((1 + 2 * di) * rows + r)[d * ls + inst] = 1.0;
            }
            for s in 0..nf {
                let phase: f64 = {
                    let w = freq.row(s);
                    w.iter().zip(xr).map(|(wc, xc)| wc * xc).sum()
                };
                let (sn, cs) = phase.sin_cos();
                {
                    let ar = xin.row_mut(r);
                    ar[(in_dim + s) * ls + inst] = sn;
                    ar[(in_dim + nf + s) * ls + inst] = cs;
                }
                for (di, &d) in diff_dims.iter().enumerate() {
                    let wd = freq.row(s)[d];
                    let jr = xin.row_mut((1 + 2 * di) * rows + r);
                    jr[(in_dim + s) * ls + inst] = wd * cs;
                    jr[(in_dim + nf + s) * ls + inst] = -wd * sn;
                    let hr = xin.row_mut((2 + 2 * di) * rows + r);
                    hr[(in_dim + s) * ls + inst] = -wd * wd * sn;
                    hr[(in_dim + nf + s) * ls + inst] = -wd * wd * cs;
                }
            }
        }
    }

    /// Forward body for one batched chunk; mirrors the solo
    /// `forward_chunk_ws` operation for operation, with all bands of a
    /// layer fed through one fused GEMM.
    fn forward_chunk(
        &self,
        cw: &mut BatchedChunkWs,
        wtp: &[simd::PackedB],
        xs: &[&Matrix],
        diff_dims: &[usize],
    ) {
        let nd = diff_dims.len();
        let bands = 1 + 2 * nd;
        let BatchedChunkWs {
            r0,
            r1,
            layers: lws,
            out_v,
            out_j,
            out_h,
            ..
        } = cw;
        let (r0, r1) = (*r0, *r1);
        let rows = r1 - r0;
        {
            let l0 = &mut lws[0];
            let cols = l0.xin.cols();
            // Jacobian/hessian bands restart from zero every pass; the
            // value band is fully rewritten by the encoders (pad lanes
            // stay zero from allocation).
            l0.xin.as_mut_slice()[rows * cols..].fill(0.0);
            for (inst, x) in xs.iter().enumerate() {
                self.encode_lane(inst, x, r0, r1, diff_dims, &mut l0.xin);
            }
        }
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            let (cur, rest) = lws[li..].split_first_mut().expect("layer buffers");
            beta_zero(cur.zall.as_mut_slice());
            simd::bgemm_accum_packed(
                cur.xin.as_slice(),
                &wtp[li],
                cur.zall.as_mut_slice(),
                bands * rows,
            );
            // Bias lands on the value band only.
            for r in 0..rows {
                simd::add_assign(cur.zall.row_mut(r), &layer.b);
            }
            let zlen = rows * cur.zall.cols();
            if li != last {
                let nxt = &mut rest[0];
                eval3_batch(
                    self.cfg.activation,
                    &cur.zall.as_slice()[..zlen],
                    &mut nxt.xin.as_mut_slice()[..zlen],
                    &mut cur.s1,
                    &mut cur.s2,
                    &mut cur.s3,
                );
                for d in 0..nd {
                    let (jb, hb) = {
                        let tail = &mut nxt.xin.as_mut_slice()[(1 + 2 * d) * zlen..];
                        let (jb, tail) = tail.split_at_mut(zlen);
                        (jb, &mut tail[..zlen])
                    };
                    simd::act_fwd_jh(
                        &cur.s1,
                        &cur.s2,
                        &cur.zall.as_slice()[(1 + 2 * d) * zlen..(2 + 2 * d) * zlen],
                        &cur.zall.as_slice()[(2 + 2 * d) * zlen..(3 + 2 * d) * zlen],
                        jb,
                        hb,
                    );
                }
            } else {
                let zs = cur.zall.as_slice();
                out_v.as_mut_slice().copy_from_slice(&zs[..zlen]);
                for d in 0..nd {
                    out_j[d]
                        .as_mut_slice()
                        .copy_from_slice(&zs[(1 + 2 * d) * zlen..(2 + 2 * d) * zlen]);
                    out_h[d]
                        .as_mut_slice()
                        .copy_from_slice(&zs[(2 + 2 * d) * zlen..(3 + 2 * d) * zlen]);
                }
            }
        }
    }

    /// Derivative-carrying forward pass for all instances at once.
    /// `xs[i]` is instance `i`'s input batch (all the same shape).
    /// Outputs land interleaved in the workspace; read them per instance
    /// with [`BatchedWorkspace::extract_derivs`].
    ///
    /// # Panics
    /// Panics if the inputs or `diff_dims` disagree with the workspace
    /// shape or the instance count.
    pub fn forward_with_derivs_batched(
        &self,
        xs: &[&Matrix],
        diff_dims: &[usize],
        ws: &mut BatchedWorkspace,
    ) {
        assert_eq!(xs.len(), self.instances, "one input per instance");
        for x in xs {
            assert_eq!(x.cols(), self.cfg.input_dim, "input dim mismatch");
            assert_eq!(x.rows(), ws.batch, "workspace batch mismatch");
        }
        assert_eq!(diff_dims.len(), ws.nd, "workspace diff-dim mismatch");
        for &d in diff_dims {
            assert!(d < self.cfg.input_dim, "diff dim {d} out of range");
        }
        // Pack each layer's transposed weights once; every chunk (and
        // every band within it) then reuses the pack.
        for (li, layer) in self.layers.iter().enumerate() {
            let in_w = layer.w.cols() / self.lanes;
            let out_w = layer.w.rows();
            simd::bgemm_pack_b_t(self.lanes, layer.w.as_slice(), in_w, out_w, &mut ws.wtp[li]);
        }
        let BatchedWorkspace {
            chunks,
            wtp,
            dv,
            dj,
            dh,
            ..
        } = ws;
        let work = self.par_work(xs[0].rows(), diff_dims.len());
        match sgm_par::current().pool(work, MLP_PAR_WORK) {
            Some(pool) => pool.par_chunks_mut(chunks, 1, |_base, slice| {
                for cw in slice {
                    self.forward_chunk(cw, wtp, xs, diff_dims);
                }
            }),
            None => {
                for cw in chunks.iter_mut() {
                    self.forward_chunk(cw, wtp, xs, diff_dims);
                }
            }
        }
        for cw in chunks.iter() {
            scatter_rows(dv, cw.r0, &cw.out_v);
            for d in 0..diff_dims.len() {
                scatter_rows(&mut dj[d], cw.r0, &cw.out_j[d]);
                scatter_rows(&mut dh[d], cw.r0, &cw.out_h[d]);
            }
        }
    }

    /// Backward body for one batched chunk; mirrors the solo
    /// `backward_chunk_ws`, with one fused GEMM per layer for the
    /// weight gradient and one for the input-gradient propagation.
    fn backward_chunk(
        &self,
        cw: &mut BatchedChunkWs,
        wp: &[simd::PackedB],
        av: &Matrix,
        aj: &[Matrix],
        ah: &[Matrix],
    ) {
        let nd = aj.len();
        let bands = 1 + 2 * nd;
        let ls = self.lanes;
        let BatchedChunkWs {
            r0,
            r1,
            layers: lws,
            grads,
            ..
        } = cw;
        let (r0, r1) = (*r0, *r1);
        let rows = r1 - r0;
        grads.zero();
        {
            let top = lws.last_mut().expect("layer buffers");
            let cols = av.cols();
            let blen = rows * cols;
            let g = top.goutall.as_mut_slice();
            g[..blen].copy_from_slice(&av.as_slice()[r0 * cols..r1 * cols]);
            for d in 0..nd {
                g[(1 + 2 * d) * blen..(2 + 2 * d) * blen]
                    .copy_from_slice(&aj[d].as_slice()[r0 * cols..r1 * cols]);
                g[(2 + 2 * d) * blen..(3 + 2 * d) * blen]
                    .copy_from_slice(&ah[d].as_slice()[r0 * cols..r1 * cols]);
            }
        }
        for (li, layer) in self.layers.iter().enumerate().rev() {
            let (below, from_li) = lws.split_at_mut(li);
            let l = &mut from_li[0];
            let in_w = layer.w.cols() / ls;
            let out_w = layer.w.rows();
            let zlen = rows * out_w * ls;
            if l.activated {
                let (gz0, gtail) = l.gzall.as_mut_slice().split_at_mut(zlen);
                simd::hadamard(&l.goutall.as_slice()[..zlen], &l.s1, gz0);
                for (d, pair) in gtail.chunks_exact_mut(2 * zlen).enumerate() {
                    let (gzj, gzh) = pair.split_at_mut(zlen);
                    simd::act_bwd_accum(
                        &l.s1,
                        &l.s2,
                        &l.s3,
                        &l.zall.as_slice()[(1 + 2 * d) * zlen..(2 + 2 * d) * zlen],
                        &l.zall.as_slice()[(2 + 2 * d) * zlen..(3 + 2 * d) * zlen],
                        &l.goutall.as_slice()[(1 + 2 * d) * zlen..(2 + 2 * d) * zlen],
                        &l.goutall.as_slice()[(2 + 2 * d) * zlen..(3 + 2 * d) * zlen],
                        gz0,
                        gzj,
                        gzh,
                    );
                }
            } else {
                l.gzall.copy_from(&l.goutall);
            }
            // gW += gzᵀ a_in + Σ_d (gzjᵀ j_in + gzhᵀ h_in), fused: one
            // transposed-source GEMM whose ascending-k walk through the
            // bands reproduces the solo per-band accumulation order.
            simd::bgemm_accum_t(
                ls,
                l.gzall.as_slice(),
                l.xin.as_slice(),
                grads.w[li].as_mut_slice(),
                out_w,
                bands * rows,
                in_w,
            );
            // gb += column sums of the value band of gz, row-by-row in
            // ascending order.
            for r in 0..rows {
                simd::add_assign(&mut grads.b[li], l.gzall.row(r));
            }
            if li == 0 {
                break;
            }
            // Propagate to layer inputs: carry for the layer below.
            let prev = below.last_mut().expect("previous layer buffers");
            beta_zero(prev.goutall.as_mut_slice());
            simd::bgemm_accum_packed(
                l.gzall.as_slice(),
                &wp[li],
                prev.goutall.as_mut_slice(),
                bands * rows,
            );
        }
    }

    /// Backward pass over the caches left by
    /// [`BatchedMlp::forward_with_derivs_batched`], consuming the
    /// adjoints set via [`BatchedWorkspace::set_adjoints`] and
    /// **accumulating** interleaved parameter gradients into `out`.
    ///
    /// # Panics
    /// Panics if the workspace was never run forward.
    pub fn backward_batched(&self, ws: &mut BatchedWorkspace, out: &mut BatchedGradients) {
        let work = self.par_work(ws.batch, ws.nd);
        // Pack each layer's weights once for the input-gradient
        // products; every chunk reuses the packs.
        for (li, layer) in self.layers.iter().enumerate() {
            let in_w = layer.w.cols() / self.lanes;
            let out_w = layer.w.rows();
            simd::bgemm_pack_b(self.lanes, layer.w.as_slice(), out_w, in_w, &mut ws.wp[li]);
        }
        let BatchedWorkspace {
            chunks,
            av,
            aj,
            ah,
            wp,
            ..
        } = ws;
        match sgm_par::current().pool(work, MLP_PAR_WORK) {
            Some(pool) => pool.par_chunks_mut(chunks, 1, |_base, slice| {
                for cw in slice {
                    self.backward_chunk(cw, wp, av, aj, ah);
                }
            }),
            None => {
                for cw in chunks.iter_mut() {
                    self.backward_chunk(cw, wp, av, aj, ah);
                }
            }
        }
        for cw in chunks.iter() {
            out.add_assign(&cw.grads);
        }
    }
}

/// Adam state for all lanes of a [`BatchedMlp`], stepping every lane in
/// one fused [`sgm_linalg::simd::adam_update_multi`] sweep per parameter
/// slice. Hyper-parameters `β₁`, `β₂`, `ε` are shared across the group;
/// learning rate and schedule may differ per lane.
#[derive(Debug, Clone)]
pub struct BatchedAdam {
    lanes: usize,
    beta1: f64,
    beta2: f64,
    eps: f64,
    /// Per-lane base learning rate (pad lanes 0.0).
    lr: Vec<f64>,
    /// Per-lane schedule (pad lanes constant).
    schedule: Vec<LrSchedule>,
    /// Per-lane step counts (advanced in lockstep, but restorable
    /// individually so lanes may join at different iterations).
    t: Vec<usize>,
    m: Vec<f64>,
    v: Vec<f64>,
    scratch: Vec<f64>,
    bc1: Vec<f64>,
    bc2: Vec<f64>,
    lrs: Vec<f64>,
}

impl BatchedAdam {
    /// Fresh optimiser state for a packed group. `cfgs[i]` is instance
    /// `i`'s configuration; all must share `beta1`/`beta2`/`eps`.
    ///
    /// # Panics
    /// Panics on count mismatch or differing shared hyper-parameters.
    pub fn pack(net: &BatchedMlp, cfgs: &[AdamConfig]) -> Self {
        assert_eq!(cfgs.len(), net.instances(), "one AdamConfig per instance");
        let first = &cfgs[0];
        for c in cfgs {
            assert!(
                c.beta1 == first.beta1 && c.beta2 == first.beta2 && c.eps == first.eps,
                "batched Adam requires shared beta1/beta2/eps"
            );
        }
        let lanes = net.lanes();
        let n = net.num_params_per_instance() * lanes;
        let mut lr = vec![0.0; lanes];
        let mut schedule = vec![LrSchedule::Constant; lanes];
        for (l, c) in cfgs.iter().enumerate() {
            lr[l] = c.lr;
            schedule[l] = c.schedule;
        }
        BatchedAdam {
            lanes,
            beta1: first.beta1,
            beta2: first.beta2,
            eps: first.eps,
            lr,
            schedule,
            t: vec![0; lanes],
            m: vec![0.0; n],
            v: vec![0.0; n],
            scratch: vec![0.0; n],
            bc1: vec![0.0; lanes],
            bc2: vec![0.0; lanes],
            lrs: vec![0.0; lanes],
        }
    }

    /// Steps taken by one lane.
    pub fn lane_step_count(&self, lane: usize) -> usize {
        self.t[lane]
    }

    /// One lane's optimiser state (step count, deinterleaved moments) in
    /// solo flat order — feeds `RunState` capture directly.
    pub fn lane_state(&self, lane: usize) -> (usize, Vec<f64>, Vec<f64>) {
        assert!(lane < self.lanes, "lane out of range");
        let np = self.m.len() / self.lanes;
        let mut m = Vec::with_capacity(np);
        let mut v = Vec::with_capacity(np);
        for i in 0..np {
            m.push(self.m[i * self.lanes + lane]);
            v.push(self.v[i * self.lanes + lane]);
        }
        (self.t[lane], m, v)
    }

    /// Restores one lane from solo-order state (the counterpart of
    /// [`Adam::restore_state`](crate::optimizer::Adam::restore_state)).
    ///
    /// # Panics
    /// Panics on size mismatch.
    pub fn restore_lane(&mut self, lane: usize, t: usize, m: &[f64], v: &[f64]) {
        assert!(lane < self.lanes, "lane out of range");
        let np = self.m.len() / self.lanes;
        assert_eq!(m.len(), np, "first-moment size mismatch");
        assert_eq!(v.len(), np, "second-moment size mismatch");
        self.t[lane] = t;
        for i in 0..np {
            self.m[i * self.lanes + lane] = m[i];
            self.v[i * self.lanes + lane] = v[i];
        }
    }

    /// Applies one lockstep Adam update to every lane: per-element
    /// arithmetic, bias corrections and schedule evaluation match the
    /// solo [`Adam::step`](crate::optimizer::Adam::step) bit for bit per
    /// lane.
    ///
    /// # Panics
    /// Panics if shapes disagree with the packed network.
    pub fn step(&mut self, net: &mut BatchedMlp, grads: &BatchedGradients) {
        // Interleaved flat gradient in the same slice order the solo
        // optimiser walks.
        let mut off = 0;
        for (w, b) in grads.w.iter().zip(&grads.b) {
            let nw = w.rows() * w.cols();
            self.scratch[off..off + nw].copy_from_slice(w.as_slice());
            off += nw;
            self.scratch[off..off + b.len()].copy_from_slice(b);
            off += b.len();
        }
        assert_eq!(off, self.m.len(), "gradient size mismatch");
        for l in 0..self.lanes {
            self.t[l] += 1;
            self.bc1[l] = 1.0 - self.beta1.powi(self.t[l] as i32);
            self.bc2[l] = 1.0 - self.beta2.powi(self.t[l] as i32);
            self.lrs[l] = self.lr[l] * self.schedule[l].factor(self.t[l]);
        }
        let lanes = self.lanes;
        let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);
        let (m, v, g) = (&mut self.m, &mut self.v, &self.scratch);
        let (bc1, bc2, lrs) = (&self.bc1, &self.bc2, &self.lrs);
        net.for_each_param_slice_mut(|off, p| {
            let end = off + p.len();
            simd::adam_update_multi(
                lanes,
                p,
                &g[off..end],
                &mut m[off..end],
                &mut v[off..end],
                b1,
                b2,
                bc1,
                bc2,
                lrs,
                eps,
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::FourierConfig;
    use crate::optimizer::Adam;
    use sgm_linalg::rng::Rng64;

    fn cfg(fourier: bool) -> MlpConfig {
        MlpConfig {
            input_dim: 2,
            output_dim: 3,
            hidden_width: 10,
            hidden_layers: 3,
            activation: Activation::SiLu,
            fourier: if fourier {
                Some(FourierConfig {
                    num_features: 4,
                    sigma: 0.7,
                })
            } else {
                None
            },
        }
    }

    fn nets(fourier: bool, n: usize) -> Vec<Mlp> {
        let c = cfg(fourier);
        (0..n)
            .map(|i| Mlp::new(&c, &mut Rng64::new(100 + i as u64)))
            .collect()
    }

    fn inputs(n: usize, batch: usize) -> Vec<Matrix> {
        let mut rng = Rng64::new(7);
        (0..n)
            .map(|_| Matrix::gaussian(batch, 2, &mut rng))
            .collect()
    }

    /// Adjoints from a composite loss touching values, jac and hess —
    /// different per element so the backward pass is fully exercised.
    fn adjoints_of(full: &BatchDerivatives) -> BatchDerivatives {
        let mut adj = BatchDerivatives::zeros_like(full);
        let n = full.values.as_slice().len();
        for i in 0..n {
            adj.values.as_mut_slice()[i] = 2.0 * full.values.as_slice()[i];
            adj.jac[0].as_mut_slice()[i] = 2.0 * full.jac[1].as_slice()[i];
            adj.jac[1].as_mut_slice()[i] = 2.0 * full.jac[0].as_slice()[i];
            adj.hess[0].as_mut_slice()[i] = 2.0 * full.hess[0].as_slice()[i];
            adj.hess[1].as_mut_slice()[i] = 0.5;
        }
        adj
    }

    /// Batched forward outputs and backward gradients are bit-identical
    /// per instance to solo workspace runs, on every available tier and
    /// across parallelism settings, with and without Fourier encoding,
    /// across repeated workspace reuse.
    #[test]
    fn batched_matches_solo_bitwise() {
        use sgm_par::Parallelism;
        for &tier in sgm_linalg::simd::available_tiers() {
            sgm_linalg::simd::with_tier(tier, || {
                for fourier in [false, true] {
                    let solo_nets = nets(fourier, 3);
                    let refs: Vec<&Mlp> = solo_nets.iter().collect();
                    let packed = BatchedMlp::pack(&refs);
                    assert_eq!(packed.lanes(), 8);
                    let batch = 37; // multi-chunk: (0,16),(16,32),(32,37)
                    let xs = inputs(3, batch);
                    for p in [Parallelism::Serial, Parallelism::Threads(2)] {
                        sgm_par::with_parallelism(p, || {
                            let mut bws = packed.make_workspace(batch, 2);
                            let mut bg = packed.zero_gradients();
                            let mut derivs = BatchDerivatives::zeros(batch, 3, 2);
                            for _round in 0..2 {
                                let xrefs: Vec<&Matrix> = xs.iter().collect();
                                packed.forward_with_derivs_batched(&xrefs, &[0, 1], &mut bws);
                                // Solo references + adjoint interleave.
                                let mut solo_grads = Vec::new();
                                for (i, net) in solo_nets.iter().enumerate() {
                                    let mut ws = net.make_workspace(batch, 2);
                                    net.forward_with_derivs_ws(&xs[i], &[0, 1], &mut ws);
                                    bws.extract_derivs(i, &mut derivs);
                                    let sd = ws.derivs();
                                    for (a, b) in
                                        sd.values.as_slice().iter().zip(derivs.values.as_slice())
                                    {
                                        assert_eq!(a.to_bits(), b.to_bits(), "{tier:?} values");
                                    }
                                    for d in 0..2 {
                                        for (a, b) in sd.jac[d]
                                            .as_slice()
                                            .iter()
                                            .zip(derivs.jac[d].as_slice())
                                        {
                                            assert_eq!(a.to_bits(), b.to_bits(), "{tier:?} jac");
                                        }
                                        for (a, b) in sd.hess[d]
                                            .as_slice()
                                            .iter()
                                            .zip(derivs.hess[d].as_slice())
                                        {
                                            assert_eq!(a.to_bits(), b.to_bits(), "{tier:?} hess");
                                        }
                                    }
                                    let adj = adjoints_of(sd);
                                    bws.set_adjoints(i, &adj);
                                    let mut g = net.zero_gradients();
                                    net.backward_ws(&mut ws, &adj, &mut g);
                                    solo_grads.push(g);
                                }
                                bg.zero();
                                packed.backward_batched(&mut bws, &mut bg);
                                let mut got = solo_nets[0].zero_gradients();
                                for (i, sg) in solo_grads.iter().enumerate() {
                                    bg.extract_to(i, &mut got);
                                    for (a, b) in sg.flat().iter().zip(&got.flat()) {
                                        assert_eq!(
                                            a.to_bits(),
                                            b.to_bits(),
                                            "{tier:?} {p:?} fourier={fourier} grads"
                                        );
                                    }
                                }
                            }
                        });
                    }
                }
            });
        }
    }

    /// Lockstep batched Adam trajectories are bit-identical per instance
    /// to solo Adam, including per-lane schedules and bias corrections.
    #[test]
    fn batched_adam_matches_solo_bitwise() {
        for &tier in sgm_linalg::simd::available_tiers() {
            sgm_linalg::simd::with_tier(tier, || {
                let mut solo_nets = nets(false, 3);
                let refs: Vec<&Mlp> = solo_nets.iter().collect();
                let mut packed = BatchedMlp::pack(&refs);
                let cfgs = vec![
                    AdamConfig {
                        lr: 1e-2,
                        schedule: LrSchedule::Constant,
                        ..AdamConfig::default()
                    },
                    AdamConfig {
                        lr: 3e-3,
                        schedule: LrSchedule::Exponential {
                            gamma: 0.9,
                            decay_steps: 2,
                        },
                        ..AdamConfig::default()
                    },
                    AdamConfig {
                        lr: 5e-4,
                        schedule: LrSchedule::Constant,
                        ..AdamConfig::default()
                    },
                ];
                let mut badam = BatchedAdam::pack(&packed, &cfgs);
                let mut solo_adams: Vec<Adam> = solo_nets
                    .iter()
                    .zip(&cfgs)
                    .map(|(n, c)| Adam::new(n, c.clone()))
                    .collect();
                let batch = 19;
                let xs = inputs(3, batch);
                let mut bws = packed.make_workspace(batch, 2);
                let mut bg = packed.zero_gradients();
                let mut derivs = BatchDerivatives::zeros(batch, 3, 2);
                for _step in 0..5 {
                    let xrefs: Vec<&Matrix> = xs.iter().collect();
                    packed.forward_with_derivs_batched(&xrefs, &[0, 1], &mut bws);
                    for i in 0..3 {
                        bws.extract_derivs(i, &mut derivs);
                        let adj = adjoints_of(&derivs);
                        bws.set_adjoints(i, &adj);
                    }
                    bg.zero();
                    packed.backward_batched(&mut bws, &mut bg);
                    badam.step(&mut packed, &bg);
                    // Solo twins using the batched gradients (gradient
                    // equality is covered by the other test; this one
                    // isolates the optimiser).
                    for (i, (net, adam)) in solo_nets.iter_mut().zip(&mut solo_adams).enumerate() {
                        let mut g = net.zero_gradients();
                        bg.extract_to(i, &mut g);
                        adam.step(net, &g);
                    }
                }
                for (i, (net, adam)) in solo_nets.iter().zip(&solo_adams).enumerate() {
                    let mut got = net.clone();
                    packed.extract_to(i, &mut got);
                    for (a, b) in net.params().iter().zip(&got.params()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{tier:?} lane {i} params");
                    }
                    let (t, m, v) = badam.lane_state(i);
                    let (st, sm, sv) = adam.state();
                    assert_eq!(t, st, "lane {i} step count");
                    for (a, b) in sm.iter().zip(&m) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{tier:?} lane {i} m");
                    }
                    for (a, b) in sv.iter().zip(&v) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{tier:?} lane {i} v");
                    }
                }
            });
        }
    }

    /// pack → extract_to round-trips parameters exactly; sync_from
    /// overwrites a lane in place; Adam lane state round-trips.
    #[test]
    fn pack_extract_roundtrip() {
        let solo = nets(true, 5);
        let refs: Vec<&Mlp> = solo.iter().collect();
        let mut packed = BatchedMlp::pack(&refs);
        assert_eq!(packed.instances(), 5);
        assert_eq!(packed.lanes(), 8);
        assert_eq!(packed.num_params_per_instance(), solo[0].num_params());
        for (i, net) in solo.iter().enumerate() {
            let mut got = net.clone();
            packed.extract_to(i, &mut got);
            assert_eq!(got.params(), net.params());
        }
        // Overwrite lane 2 with a different net and read it back.
        let others = nets(true, 1);
        let other = &others[0];
        packed.sync_from(2, other);
        let mut got = other.clone();
        packed.extract_to(2, &mut got);
        assert_eq!(got.params(), other.params());
        // Adam lane restore round-trip.
        let cfgs = vec![AdamConfig::default(); 5];
        let mut badam = BatchedAdam::pack(&packed, &cfgs);
        let np = solo[0].num_params();
        let m: Vec<f64> = (0..np).map(|i| i as f64 * 0.5).collect();
        let v: Vec<f64> = (0..np).map(|i| i as f64 * 0.25).collect();
        badam.restore_lane(3, 17, &m, &v);
        let (t, gm, gv) = badam.lane_state(3);
        assert_eq!(t, 17);
        assert_eq!(gm, m);
        assert_eq!(gv, v);
        assert_eq!(badam.lane_step_count(3), 17);
    }

    #[test]
    #[should_panic(expected = "identical architectures")]
    fn pack_rejects_mixed_architectures() {
        let a = nets(false, 1);
        let b = nets(true, 1);
        let _ = BatchedMlp::pack(&[&a[0], &b[0]]);
    }

    #[test]
    #[should_panic(expected = "shared beta1/beta2/eps")]
    fn batched_adam_rejects_mixed_betas() {
        let solo = nets(false, 2);
        let refs: Vec<&Mlp> = solo.iter().collect();
        let packed = BatchedMlp::pack(&refs);
        let cfgs = vec![
            AdamConfig::default(),
            AdamConfig {
                beta1: 0.8,
                ..AdamConfig::default()
            },
        ];
        let _ = BatchedAdam::pack(&packed, &cfgs);
    }
}
