//! Model checkpointing: serialise a trained [`Mlp`] — architecture,
//! trainable parameters *and* the frozen Fourier frequency matrix — to
//! JSON and restore it bit-exactly.
//!
//! The experiment harness stores raw parameter vectors next to an
//! architecture record; this module is the user-facing variant for
//! downstream applications (train once, ship the surrogate).

use crate::activation::Activation;
use crate::mlp::{FourierConfig, Mlp, MlpConfig};
use sgm_json::{num_arr, obj, JsonError, Value};

/// Serialisable snapshot of a network.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Raw input dimension.
    pub input_dim: usize,
    /// Output dimension.
    pub output_dim: usize,
    /// Hidden width.
    pub hidden_width: usize,
    /// Hidden depth.
    pub hidden_layers: usize,
    /// Activation name (`"silu" | "tanh" | "sin" | "identity"`).
    pub activation: String,
    /// Flattened Fourier frequency matrix (row-major,
    /// `num_features × input_dim`), empty when no encoding is used.
    pub fourier_freq: Vec<f64>,
    /// Fourier feature count (0 = none).
    pub fourier_features: usize,
    /// All trainable parameters in [`Mlp::params`] order.
    pub params: Vec<f64>,
}

fn activation_name(a: Activation) -> &'static str {
    match a {
        Activation::SiLu => "silu",
        Activation::Tanh => "tanh",
        Activation::Sin => "sin",
        Activation::Identity => "identity",
    }
}

fn activation_from(name: &str) -> Option<Activation> {
    match name {
        "silu" => Some(Activation::SiLu),
        "tanh" => Some(Activation::Tanh),
        "sin" => Some(Activation::Sin),
        "identity" => Some(Activation::Identity),
        _ => None,
    }
}

/// Errors from checkpoint restore.
#[derive(Debug)]
pub enum CheckpointError {
    /// Unknown format version.
    Version(u32),
    /// Unknown activation name.
    Activation(String),
    /// Parameter/frequency buffer sizes inconsistent with the shape.
    Shape(String),
    /// Underlying JSON error.
    Json(JsonError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Version(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Activation(a) => write!(f, "unknown activation {a:?}"),
            CheckpointError::Shape(s) => write!(f, "shape mismatch: {s}"),
            CheckpointError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<JsonError> for CheckpointError {
    fn from(e: JsonError) -> Self {
        CheckpointError::Json(e)
    }
}

impl Checkpoint {
    /// Captures a network.
    pub fn capture(net: &Mlp) -> Self {
        let cfg = net.config();
        let (freq, nf) = match net.fourier_frequencies() {
            Some(m) => (m.as_slice().to_vec(), m.rows()),
            None => (Vec::new(), 0),
        };
        Checkpoint {
            version: 1,
            input_dim: cfg.input_dim,
            output_dim: cfg.output_dim,
            hidden_width: cfg.hidden_width,
            hidden_layers: cfg.hidden_layers,
            activation: activation_name(cfg.activation).to_string(),
            fourier_freq: freq,
            fourier_features: nf,
            params: net.params(),
        }
    }

    /// Restores the network.
    ///
    /// # Errors
    /// Returns [`CheckpointError`] on version/shape/name mismatches.
    pub fn restore(&self) -> Result<Mlp, CheckpointError> {
        if self.version != 1 {
            return Err(CheckpointError::Version(self.version));
        }
        let activation = activation_from(&self.activation)
            .ok_or_else(|| CheckpointError::Activation(self.activation.clone()))?;
        if self.fourier_freq.len() != self.fourier_features * self.input_dim {
            return Err(CheckpointError::Shape(format!(
                "fourier buffer {} != {}×{}",
                self.fourier_freq.len(),
                self.fourier_features,
                self.input_dim
            )));
        }
        let cfg = MlpConfig {
            input_dim: self.input_dim,
            output_dim: self.output_dim,
            hidden_width: self.hidden_width,
            hidden_layers: self.hidden_layers,
            activation,
            fourier: if self.fourier_features > 0 {
                Some(FourierConfig {
                    num_features: self.fourier_features,
                    sigma: 1.0, // the stored matrix overrides the scale
                })
            } else {
                None
            },
        };
        let mut rng = sgm_linalg::rng::Rng64::new(0);
        let mut net = Mlp::new(&cfg, &mut rng);
        if self.fourier_features > 0 {
            net.set_fourier_frequencies(&self.fourier_freq)
                .map_err(CheckpointError::Shape)?;
        }
        if self.params.len() != net.num_params() {
            return Err(CheckpointError::Shape(format!(
                "params {} != {}",
                self.params.len(),
                net.num_params()
            )));
        }
        net.set_params(&self.params);
        Ok(net)
    }

    /// JSON serialisation. Floats are written with Rust's
    /// shortest-roundtrip formatting, so `from_json(to_json())` restores
    /// every parameter bit-exactly.
    ///
    /// # Errors
    /// Infallible in practice; kept as `Result` for API stability.
    pub fn to_json(&self) -> Result<String, CheckpointError> {
        let v = obj([
            ("version", Value::Num(self.version as f64)),
            ("input_dim", Value::Num(self.input_dim as f64)),
            ("output_dim", Value::Num(self.output_dim as f64)),
            ("hidden_width", Value::Num(self.hidden_width as f64)),
            ("hidden_layers", Value::Num(self.hidden_layers as f64)),
            ("activation", Value::Str(self.activation.clone())),
            ("fourier_freq", num_arr(&self.fourier_freq)),
            ("fourier_features", Value::Num(self.fourier_features as f64)),
            ("params", num_arr(&self.params)),
        ]);
        Ok(v.to_string_compact())
    }

    /// JSON deserialisation.
    ///
    /// # Errors
    /// Propagates parse/shape errors.
    pub fn from_json(s: &str) -> Result<Self, CheckpointError> {
        let v = Value::parse(s)?;
        Ok(Checkpoint {
            version: v.req_usize("version")? as u32,
            input_dim: v.req_usize("input_dim")?,
            output_dim: v.req_usize("output_dim")?,
            hidden_width: v.req_usize("hidden_width")?,
            hidden_layers: v.req_usize("hidden_layers")?,
            activation: v.req_str("activation")?.to_string(),
            fourier_freq: v.req_f64_arr("fourier_freq")?,
            fourier_features: v.req_usize("fourier_features")?,
            params: v.req_f64_arr("params")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgm_linalg::dense::Matrix;
    use sgm_linalg::rng::Rng64;

    fn net(fourier: bool) -> Mlp {
        let cfg = MlpConfig {
            input_dim: 3,
            output_dim: 2,
            hidden_width: 10,
            hidden_layers: 2,
            activation: Activation::SiLu,
            fourier: if fourier {
                Some(FourierConfig {
                    num_features: 5,
                    sigma: 0.7,
                })
            } else {
                None
            },
        };
        let mut rng = Rng64::new(9);
        Mlp::new(&cfg, &mut rng)
    }

    #[test]
    fn roundtrip_plain() {
        let original = net(false);
        let json = Checkpoint::capture(&original).to_json().unwrap();
        let restored = Checkpoint::from_json(&json).unwrap().restore().unwrap();
        let mut rng = Rng64::new(3);
        let x = Matrix::gaussian(4, 3, &mut rng);
        let a = original.forward(&x);
        let b = restored.forward(&x);
        for i in 0..a.as_slice().len() {
            assert_eq!(a.as_slice()[i], b.as_slice()[i], "bit-exact restore");
        }
    }

    #[test]
    fn roundtrip_with_fourier() {
        let original = net(true);
        let json = Checkpoint::capture(&original).to_json().unwrap();
        let restored = Checkpoint::from_json(&json).unwrap().restore().unwrap();
        let mut rng = Rng64::new(4);
        let x = Matrix::gaussian(4, 3, &mut rng);
        let a = original.forward(&x);
        let b = restored.forward(&x);
        for i in 0..a.as_slice().len() {
            assert_eq!(a.as_slice()[i], b.as_slice()[i]);
        }
        // Derivatives too (the frequencies matter there).
        let (da, _) = original.forward_with_derivs(&x, &[0, 1]);
        let (db, _) = restored.forward_with_derivs(&x, &[0, 1]);
        for i in 0..da.jac[0].as_slice().len() {
            assert_eq!(da.jac[0].as_slice()[i], db.jac[0].as_slice()[i]);
        }
    }

    #[test]
    fn rejects_bad_version() {
        let mut c = Checkpoint::capture(&net(false));
        c.version = 99;
        assert!(matches!(c.restore(), Err(CheckpointError::Version(99))));
    }

    #[test]
    fn rejects_bad_activation() {
        let mut c = Checkpoint::capture(&net(false));
        c.activation = "relu6".into();
        assert!(matches!(c.restore(), Err(CheckpointError::Activation(_))));
    }

    #[test]
    fn rejects_truncated_params() {
        let mut c = Checkpoint::capture(&net(false));
        c.params.pop();
        assert!(matches!(c.restore(), Err(CheckpointError::Shape(_))));
    }
}
