//! Activation functions with their first three derivatives.
//!
//! The Hessian-diagonal forward propagation needs σ' and σ''; its adjoint
//! (parameter-gradient) pass additionally needs σ''' — see the recurrences
//! in the crate docs. All derivatives here are closed-form and unit-tested
//! against second-order dual numbers.

/// Supported nonlinearities. The paper's networks use SiLU (ref [6]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// `x · sigmoid(x)` (swish) — smooth, unbounded above; the paper's
    /// choice for all experiments.
    #[default]
    SiLu,
    /// Hyperbolic tangent.
    Tanh,
    /// Sine — useful for periodic PDE solutions (SIREN-style nets).
    Sin,
    /// Identity (linear layer).
    Identity,
}

/// Value and first three derivatives of the activation at `z`:
/// `(σ, σ', σ'', σ''')`.
#[inline]
pub fn eval3(act: Activation, z: f64) -> (f64, f64, f64, f64) {
    match act {
        Activation::SiLu => {
            let s = 1.0 / (1.0 + (-z).exp());
            let s1 = s * (1.0 - s);
            let s2 = s1 * (1.0 - 2.0 * s);
            let s3 = s1 * (1.0 - 2.0 * s) * (1.0 - 2.0 * s) - 2.0 * s1 * s1;
            // f = z·s
            let f = z * s;
            let f1 = s + z * s1;
            let f2 = 2.0 * s1 + z * s2;
            let f3 = 3.0 * s2 + z * s3;
            (f, f1, f2, f3)
        }
        Activation::Tanh => {
            let t = z.tanh();
            let u = 1.0 - t * t;
            (t, u, -2.0 * t * u, -2.0 * u * (1.0 - 3.0 * t * t))
        }
        Activation::Sin => (z.sin(), z.cos(), -z.sin(), -z.cos()),
        Activation::Identity => (z, 1.0, 0.0, 0.0),
    }
}

/// Batched [`eval3`]: fills `s..s3` with `(σ, σ', σ'', σ''')` for every
/// `z`. Deliberately a plain scalar loop in every SIMD tier — the
/// transcendentals are libm calls, so keeping them scalar makes
/// activation values bit-identical across `SGM_SIMD` tiers; the
/// vectorised win is in the derivative-combination kernels downstream
/// (`sgm_linalg::simd::act_fwd_jh` / `act_bwd_accum`).
///
/// # Panics
/// Panics if output slices differ in length from `z`.
pub fn eval3_batch(
    act: Activation,
    z: &[f64],
    s: &mut [f64],
    s1: &mut [f64],
    s2: &mut [f64],
    s3: &mut [f64],
) {
    let n = z.len();
    assert!(
        s.len() == n && s1.len() == n && s2.len() == n && s3.len() == n,
        "eval3_batch length mismatch"
    );
    for i in 0..n {
        let (a, b, c, d) = eval3(act, z[i]);
        s[i] = a;
        s1[i] = b;
        s2[i] = c;
        s3[i] = d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgm_autodiff::dual::Dual2;

    fn check_first_two(act: Activation, apply: impl Fn(Dual2) -> Dual2) {
        for &z in &[-2.0, -0.5, 0.0, 0.3, 1.7] {
            let d = apply(Dual2::variable(z));
            let (f, f1, f2, _f3) = eval3(act, z);
            assert!((f - d.v).abs() < 1e-12, "{act:?} value at {z}");
            assert!(
                (f1 - d.d).abs() < 1e-10,
                "{act:?} f' at {z}: {f1} vs {}",
                d.d
            );
            assert!(
                (f2 - d.dd).abs() < 1e-10,
                "{act:?} f'' at {z}: {f2} vs {}",
                d.dd
            );
        }
    }

    #[test]
    fn silu_matches_dual2() {
        check_first_two(Activation::SiLu, |d| d.silu());
    }

    #[test]
    fn tanh_matches_dual2() {
        check_first_two(Activation::Tanh, |d| d.tanh());
    }

    #[test]
    fn sin_matches_dual2() {
        check_first_two(Activation::Sin, |d| d.sin());
    }

    #[test]
    fn third_derivative_by_finite_difference_of_second() {
        let h = 1e-5;
        for act in [Activation::SiLu, Activation::Tanh, Activation::Sin] {
            for &z in &[-1.1, 0.2, 0.9] {
                let (_, _, f2p, _) = eval3(act, z + h);
                let (_, _, f2m, _) = eval3(act, z - h);
                let fd3 = (f2p - f2m) / (2.0 * h);
                let (_, _, _, f3) = eval3(act, z);
                assert!(
                    (f3 - fd3).abs() < 1e-6,
                    "{act:?} f''' at {z}: {f3} vs {fd3}"
                );
            }
        }
    }

    #[test]
    fn identity_is_linear() {
        assert_eq!(eval3(Activation::Identity, 3.7), (3.7, 1.0, 0.0, 0.0));
    }
}
