//! Adam optimiser and learning-rate schedules.
//!
//! The reproduction trains with Adam + exponential decay, matching the
//! Modulus defaults the paper runs with.

use crate::mlp::{Gradients, Mlp};

/// Learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// `lr · gamma^(step / decay_steps)` — Modulus-style exponential decay.
    Exponential {
        /// Multiplicative decay factor per `decay_steps`.
        gamma: f64,
        /// Steps per decay application.
        decay_steps: usize,
    },
}

impl LrSchedule {
    /// Learning-rate multiplier at a given step.
    pub fn factor(&self, step: usize) -> f64 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Exponential { gamma, decay_steps } => {
                gamma.powf(step as f64 / decay_steps.max(1) as f64)
            }
        }
    }
}

/// Adam hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamConfig {
    /// Base learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
    /// Schedule applied on top of `lr`.
    pub schedule: LrSchedule,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            schedule: LrSchedule::Exponential {
                gamma: 0.95,
                decay_steps: 2000,
            },
        }
    }
}

/// Adam state for one network.
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<f64>,
    v: Vec<f64>,
    t: usize,
    /// Flat-gradient scratch so `step` never allocates after the first
    /// call (the steady-state zero-allocation training path).
    scratch: Vec<f64>,
}

impl Adam {
    /// Fresh optimiser state for `net`.
    pub fn new(net: &Mlp, cfg: AdamConfig) -> Self {
        let n = net.num_params();
        Adam {
            cfg,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            scratch: vec![0.0; n],
        }
    }

    /// Steps taken so far.
    pub fn step_count(&self) -> usize {
        self.t
    }

    /// Current effective learning rate.
    pub fn current_lr(&self) -> f64 {
        self.cfg.lr * self.cfg.schedule.factor(self.t)
    }

    /// Optimiser state (step count, first and second moments) for run
    /// checkpointing.
    pub fn state(&self) -> (usize, &[f64], &[f64]) {
        (self.t, &self.m, &self.v)
    }

    /// Restores state captured by [`Adam::state`].
    ///
    /// # Panics
    /// Panics if the moment vectors do not match this optimiser's size.
    pub fn restore_state(&mut self, t: usize, m: &[f64], v: &[f64]) {
        assert_eq!(m.len(), self.m.len(), "first-moment size mismatch");
        assert_eq!(v.len(), self.v.len(), "second-moment size mismatch");
        self.t = t;
        self.m.copy_from_slice(m);
        self.v.copy_from_slice(v);
    }

    /// Applies one Adam update in place, via the fused SIMD-dispatched
    /// slice kernel (`sgm_linalg::simd::adam_update`) over each
    /// parameter slice in the stable flat order.
    ///
    /// # Panics
    /// Panics if the gradient does not match the network's parameter count.
    pub fn step(&mut self, net: &mut Mlp, grads: &Gradients) {
        assert_eq!(grads.num_entries(), self.m.len(), "gradient size mismatch");
        grads.write_flat(&mut self.scratch);
        self.t += 1;
        let lr = self.current_lr();
        let b1 = self.cfg.beta1;
        let b2 = self.cfg.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let eps = self.cfg.eps;
        let (m, v, g) = (&mut self.m, &mut self.v, &self.scratch);
        net.for_each_param_slice_mut(|off, p| {
            let end = off + p.len();
            sgm_linalg::simd::adam_update(
                p,
                &g[off..end],
                &mut m[off..end],
                &mut v[off..end],
                b1,
                b2,
                bc1,
                bc2,
                lr,
                eps,
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::{BatchDerivatives, MlpConfig};
    use sgm_linalg::dense::Matrix;
    use sgm_linalg::rng::Rng64;

    fn small_net(seed: u64) -> Mlp {
        let cfg = MlpConfig {
            input_dim: 1,
            output_dim: 1,
            hidden_width: 12,
            hidden_layers: 2,
            activation: Activation::Tanh,
            fourier: None,
        };
        let mut rng = Rng64::new(seed);
        Mlp::new(&cfg, &mut rng)
    }

    /// Trains y = sin(3x) regression for a few hundred steps; loss must
    /// drop by an order of magnitude.
    #[test]
    fn adam_fits_sine_regression() {
        let mut net = small_net(10);
        let mut opt = Adam::new(
            &net,
            AdamConfig {
                lr: 2e-2,
                schedule: LrSchedule::Constant,
                ..AdamConfig::default()
            },
        );
        let n = 32;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / n as f64 * 2.0 - 1.0).collect();
        let targets: Vec<f64> = xs.iter().map(|&x| (3.0 * x).sin()).collect();
        let x = Matrix::from_vec(n, 1, xs);
        let loss_of = |net: &Mlp| {
            let y = net.forward(&x);
            (0..n)
                .map(|i| (y.get(i, 0) - targets[i]).powi(2))
                .sum::<f64>()
                / n as f64
        };
        let initial = loss_of(&net);
        for _ in 0..400 {
            let (full, cache) = net.forward_with_derivs(&x, &[]);
            let mut adj = BatchDerivatives::zeros_like(&full);
            for (i, &t) in targets.iter().enumerate().take(n) {
                let d = 2.0 * (full.values.get(i, 0) - t) / n as f64;
                adj.values.set(i, 0, d);
            }
            let g = net.backward(&cache, &adj);
            opt.step(&mut net, &g);
        }
        let fin = loss_of(&net);
        assert!(
            fin < initial / 10.0,
            "loss did not drop: {initial} -> {fin}"
        );
        assert_eq!(opt.step_count(), 400);
    }

    #[test]
    fn exponential_schedule_decays() {
        let s = LrSchedule::Exponential {
            gamma: 0.5,
            decay_steps: 100,
        };
        assert!((s.factor(0) - 1.0).abs() < 1e-12);
        assert!((s.factor(100) - 0.5).abs() < 1e-12);
        assert!((s.factor(200) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn constant_schedule_is_flat() {
        assert_eq!(LrSchedule::Constant.factor(12345), 1.0);
    }

    #[test]
    fn current_lr_tracks_schedule() {
        let net = small_net(11);
        let mut opt = Adam::new(
            &net,
            AdamConfig {
                lr: 1.0,
                schedule: LrSchedule::Exponential {
                    gamma: 0.5,
                    decay_steps: 1,
                },
                ..AdamConfig::default()
            },
        );
        assert_eq!(opt.current_lr(), 1.0);
        opt.t = 2;
        assert!((opt.current_lr() - 0.25).abs() < 1e-12);
    }
}
