//! # sgm-par
//!
//! A small, hand-rolled data-parallel runtime for the SGM-PINN
//! reproduction (std only, no rayon/crossbeam — consistent with
//! DESIGN §6's offline-buildable constraint).
//!
//! ## Architecture
//!
//! * [`ThreadPool`] — a persistent worker pool. A pool of size `n` spawns
//!   `n - 1` OS threads; the calling thread always participates in
//!   execution, so a pool of size 1 runs everything inline with zero
//!   scheduling overhead.
//! * [`global`] — the process-wide pool, sized from
//!   `std::thread::available_parallelism` and overridable with the
//!   `SGM_NUM_THREADS` environment variable (read once, at first use).
//! * Scoped primitives — [`ThreadPool::par_map_indexed`],
//!   [`ThreadPool::par_chunks_mut`], [`ThreadPool::par_reduce`] — operate
//!   over borrowed data (`&[T]` / `&mut [T]` / closures over locals) and
//!   block until every task has completed.
//!
//! ## Determinism contract
//!
//! Work is split into chunks whose boundaries depend only on the problem
//! size (see [`chunk_len`]), never on the thread count, and all merges
//! (output concatenation, reductions) happen in ascending chunk order on
//! the calling thread. Results are therefore **bit-identical** for any
//! thread count, including the serial path — the scheduler decides *who*
//! computes a chunk, never *what* is computed or in which order partial
//! results combine.
//!
//! ## Parallelism selection
//!
//! [`Parallelism`] picks the execution mode per call site: `Serial` (the
//! oracle), `Threads(n)` (a fixed-size pool, cached per `n`), or `Auto`
//! (the global pool, but only above a caller-supplied work-size cutoff so
//! small problems never pay scheduling overhead).

use sgm_obs::{metrics, trace};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Jobs executed through the pooled path (the serial fast path is not
/// counted — it is indistinguishable from inline execution).
static JOBS_TOTAL: metrics::Counter = metrics::Counter::new("sgm_par_jobs_total");
/// Size of the global pool (set once, when the pool is built).
static POOL_THREADS: metrics::Gauge = metrics::Gauge::new("sgm_par_pool_threads");
/// Threads currently executing a pooled job (occupancy).
static BUSY_WORKERS: metrics::Gauge = metrics::Gauge::new("sgm_par_busy_workers");

/// How a parallelizable call site should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use the global pool when the work size clears the call site's
    /// cutoff; run serially otherwise. The default everywhere.
    #[default]
    Auto,
    /// Always run the serial path (the determinism oracle).
    Serial,
    /// Use exactly this many threads regardless of work size (pools are
    /// created on demand and cached per count; intended for tests and
    /// benches).
    Threads(usize),
}

impl Parallelism {
    /// Reads the `SGM_NUM_THREADS` environment variable: `1` means
    /// `Serial`, any larger value `Threads(n)`, unset/invalid `Auto`.
    pub fn from_env() -> Self {
        match std::env::var("SGM_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(0) | Some(1) => Parallelism::Serial,
            Some(n) => Parallelism::Threads(n),
            None => Parallelism::Auto,
        }
    }

    /// Resolves this setting to a pool, given the work size and the call
    /// site's `Auto` cutoff. `None` means "run the serial path".
    pub fn pool(self, work_size: usize, auto_cutoff: usize) -> Option<&'static ThreadPool> {
        match self {
            Parallelism::Serial => None,
            Parallelism::Threads(n) => {
                if n <= 1 {
                    None
                } else {
                    Some(pool_with(n))
                }
            }
            Parallelism::Auto => {
                let g = global();
                if g.threads() <= 1 || work_size < auto_cutoff {
                    None
                } else {
                    Some(g)
                }
            }
        }
    }
}

thread_local! {
    static CURRENT: std::cell::Cell<Parallelism> =
        const { std::cell::Cell::new(Parallelism::Auto) };
}

/// The calling thread's parallelism setting (default `Auto`). Call sites
/// in `sgm-linalg`/`sgm-nn`/`sgm-graph`/`sgm-core` consult this to pick
/// the serial or pooled path.
pub fn current() -> Parallelism {
    CURRENT.with(|c| c.get())
}

/// Runs `f` with the calling thread's parallelism setting overridden
/// (restored afterwards, including on panic). This is how tests pin a
/// region of code to `Serial` or `Threads(n)`.
pub fn with_parallelism<R>(p: Parallelism, f: impl FnOnce() -> R) -> R {
    struct Restore(Parallelism);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(CURRENT.with(|c| c.replace(p)));
    f()
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

struct Latch {
    remaining: Mutex<usize>,
    done_cv: Condvar,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            remaining: Mutex::new(n),
            done_cv: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut r = self.remaining.lock().expect("latch poisoned");
        *r -= 1;
        if *r == 0 {
            self.done_cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut r = self.remaining.lock().expect("latch poisoned");
        while *r > 0 {
            r = self.done_cv.wait(r).expect("latch poisoned");
        }
    }
}

/// A persistent pool of worker threads executing borrowed-data tasks.
///
/// See the crate docs for the determinism contract.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool that executes with `threads`-way parallelism
    /// (`threads - 1` spawned workers plus the calling thread; 0 is
    /// clamped to 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (1..threads)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("sgm-par-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn sgm-par worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            threads,
        }
    }

    /// Parallelism degree this pool was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every task to completion before returning. Tasks may
    /// borrow from the caller's stack — the blocking join makes the
    /// lifetime erasure below sound. Panics in tasks are caught on the
    /// worker and re-raised here after all tasks finish.
    pub fn run<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if tasks.is_empty() {
            return;
        }
        if self.threads == 1 || tasks.len() == 1 {
            for t in tasks {
                t();
            }
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        let panicked = Arc::new(AtomicBool::new(false));
        // Cross-thread parent for worker task spans: whatever span the
        // submitting thread is inside when it fans out.
        let parent_ctx = trace::current_context();
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            for task in tasks {
                let latch = latch.clone();
                let panicked = panicked.clone();
                let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                    let _span =
                        trace::span_with_parent(trace::TraceLevel::Full, "par", "task", parent_ctx);
                    JOBS_TOTAL.inc();
                    BUSY_WORKERS.add(1.0);
                    if std::panic::catch_unwind(AssertUnwindSafe(task)).is_err() {
                        panicked.store(true, Ordering::SeqCst);
                    }
                    BUSY_WORKERS.add(-1.0);
                    latch.count_down();
                });
                // SAFETY: `run` blocks on `latch.wait()` until every job has
                // executed, so the borrowed environment outlives all uses of
                // the erased-lifetime closure.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
                q.push_back(job);
            }
            self.shared.work_cv.notify_all();
        }
        // The caller participates until the queue drains, then waits for
        // stragglers still running on workers.
        loop {
            let job = self
                .shared
                .queue
                .lock()
                .expect("queue poisoned")
                .pop_front();
            match job {
                Some(j) => j(),
                None => break,
            }
        }
        latch.wait();
        if panicked.load(Ordering::SeqCst) {
            panic!("sgm-par: a parallel task panicked");
        }
    }

    /// Maps `f` over `0..n`, returning results in index order. Chunked by
    /// [`chunk_len`]`(n, min_chunk)`; bit-identical for any thread count.
    pub fn par_map_indexed<T, F>(&self, n: usize, min_chunk: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let chunk = chunk_len(n, min_chunk);
        let mut parts: Vec<Vec<T>> = Vec::new();
        parts.resize_with(n.div_ceil(chunk), Vec::new);
        {
            let f = &f;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = parts
                .iter_mut()
                .enumerate()
                .map(|(ci, slot)| {
                    let lo = ci * chunk;
                    let hi = (lo + chunk).min(n);
                    Box::new(move || {
                        *slot = (lo..hi).map(f).collect();
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.run(tasks);
        }
        let mut out = Vec::with_capacity(n);
        for p in parts {
            out.extend(p);
        }
        out
    }

    /// Applies `f` to disjoint chunks of `data` (chunk base index and the
    /// mutable chunk slice). Chunk boundaries come from [`chunk_len`], so
    /// the partition is thread-count independent.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], min_chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = data.len();
        if n == 0 {
            return;
        }
        let chunk = chunk_len(n, min_chunk);
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let base = ci * chunk;
                Box::new(move || f(base, slice)) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.run(tasks);
    }

    /// Like [`ThreadPool::par_chunks_mut`], but chunk boundaries are kept
    /// aligned to multiples of `row_len` elements (for row-major matrix
    /// bands). `f` receives the first row index of its band and the band
    /// slice. `min_rows` floors the rows per chunk.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `row_len`.
    pub fn par_rows_mut<T, F>(&self, data: &mut [T], row_len: usize, min_rows: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(
            row_len > 0 && data.len().is_multiple_of(row_len),
            "band shape"
        );
        let rows = data.len() / row_len;
        if rows == 0 {
            return;
        }
        let row_chunk = chunk_len(rows, min_rows);
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
            .chunks_mut(row_chunk * row_len)
            .enumerate()
            .map(|(ci, band)| {
                let row0 = ci * row_chunk;
                Box::new(move || f(row0, band)) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.run(tasks);
    }

    /// Chunk-wise map-reduce over `0..n`: `map` runs on each index range,
    /// partials are folded with `reduce` in ascending chunk order on the
    /// calling thread — the reduction tree is fixed, so the result is
    /// bit-identical for any thread count.
    pub fn par_reduce<A, M, R>(&self, n: usize, min_chunk: usize, map: M, reduce: R) -> Option<A>
    where
        A: Send,
        M: Fn(std::ops::Range<usize>) -> A + Sync,
        R: Fn(A, A) -> A,
    {
        if n == 0 {
            return None;
        }
        let chunk = chunk_len(n, min_chunk);
        let parts = self.par_map_indexed(n.div_ceil(chunk), 1, |ci| {
            let lo = ci * chunk;
            map(lo..(lo + chunk).min(n))
        });
        parts.into_iter().reduce(reduce)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.work_cv.wait(q).expect("queue poisoned");
            }
        };
        match job {
            Some(j) => j(),
            None => return,
        }
    }
}

/// Chunk length used by every primitive: the work is cut into a fixed
/// number of slices (64) regardless of thread count, floored at
/// `min_chunk` items so tiny problems produce few, meaty chunks. Depends
/// only on `n` and `min_chunk` — never on the pool — which is what makes
/// chunk-ordered merges deterministic.
pub fn chunk_len(n: usize, min_chunk: usize) -> usize {
    const SLICES: usize = 64;
    n.div_ceil(SLICES).max(min_chunk.max(1)).min(n.max(1))
}

/// The process-wide pool. Sized from `SGM_NUM_THREADS` when set, else
/// `std::thread::available_parallelism`; built on first use.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let n = std::env::var("SGM_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        let n = n.max(1);
        POOL_THREADS.set(n as f64);
        ThreadPool::new(n)
    })
}

/// A cached pool of exactly `n` threads (for `Parallelism::Threads`).
/// Pools are leaked intentionally: they are few (one per distinct count
/// requested) and live for the process.
pub fn pool_with(n: usize) -> &'static ThreadPool {
    static POOLS: OnceLock<Mutex<Vec<(usize, &'static ThreadPool)>>> = OnceLock::new();
    let n = n.max(1);
    let global_pool = global();
    if n == global_pool.threads() {
        return global_pool;
    }
    let pools = POOLS.get_or_init(|| Mutex::new(Vec::new()));
    let mut guard = pools.lock().expect("pool registry poisoned");
    if let Some(&(_, p)) = guard.iter().find(|&&(size, _)| size == n) {
        return p;
    }
    let p: &'static ThreadPool = Box::leak(Box::new(ThreadPool::new(n)));
    guard.push((n, p));
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_identity() {
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.par_map_indexed(1000, 1, |i| i * i);
            assert_eq!(out.len(), 1000);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * i, "threads={threads}");
            }
        }
    }

    #[test]
    fn chunks_mut_covers_disjointly() {
        for threads in [1, 3, 8] {
            let pool = ThreadPool::new(threads);
            let mut data = vec![0usize; 777];
            pool.par_chunks_mut(&mut data, 10, |base, slice| {
                for (off, v) in slice.iter_mut().enumerate() {
                    *v = base + off;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i);
            }
        }
    }

    #[test]
    fn reduce_is_deterministic_across_thread_counts() {
        // Floating-point sum: association is fixed by chunk order, so the
        // result must be bit-identical for every thread count.
        let xs: Vec<f64> = (0..10_000)
            .map(|i| ((i * 37) % 101) as f64 * 0.1 - 3.7)
            .collect();
        let sum = |pool: &ThreadPool| {
            pool.par_reduce(xs.len(), 16, |r| xs[r].iter().sum::<f64>(), |a, b| a + b)
                .unwrap()
        };
        let s1 = sum(&ThreadPool::new(1));
        let s2 = sum(&ThreadPool::new(2));
        let s8 = sum(&ThreadPool::new(8));
        assert_eq!(s1.to_bits(), s2.to_bits());
        assert_eq!(s1.to_bits(), s8.to_bits());
    }

    #[test]
    fn map_is_bit_identical_across_thread_counts() {
        let f = |i: usize| ((i as f64).sin() * 1e6).cos();
        let a = ThreadPool::new(1).par_map_indexed(5000, 8, f);
        let b = ThreadPool::new(8).par_map_indexed(5000, 8, f);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = ThreadPool::new(4);
        let out: Vec<usize> = pool.par_map_indexed(0, 1, |i| i);
        assert!(out.is_empty());
        assert_eq!(pool.par_reduce(0, 1, |_| 0.0f64, |a, b| a + b), None);
        let out = pool.par_map_indexed(1, 128, |i| i + 41);
        assert_eq!(out, vec![41]);
        let mut empty: Vec<u8> = Vec::new();
        pool.par_chunks_mut(&mut empty, 4, |_, _| {});
    }

    #[test]
    fn nested_runs_do_not_deadlock() {
        let pool = ThreadPool::new(4);
        let outer = pool.par_map_indexed(8, 1, |i| {
            // Nested use of the *global* pool from inside a worker task.
            global()
                .par_reduce(
                    100,
                    8,
                    |r| r.map(|j| (i * j) as u64).sum::<u64>(),
                    |a, b| a + b,
                )
                .unwrap_or(0)
        });
        for (i, v) in outer.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 4950);
        }
    }

    #[test]
    #[should_panic(expected = "parallel task panicked")]
    fn task_panic_propagates() {
        let pool = ThreadPool::new(4);
        pool.par_map_indexed(64, 1, |i| {
            assert!(i != 40, "boom");
            i
        });
    }

    #[test]
    fn chunk_len_ignores_thread_count_and_respects_floor() {
        assert_eq!(chunk_len(10, 32), 10);
        assert_eq!(chunk_len(64_000, 1), 1000);
        assert_eq!(chunk_len(0, 4), 1);
        assert!(chunk_len(100, 8) >= 8);
    }

    #[test]
    fn rows_mut_bands_are_row_aligned() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let row_len = 7;
            let mut data = vec![0usize; 53 * row_len];
            pool.par_rows_mut(&mut data, row_len, 1, |row0, band| {
                assert_eq!(band.len() % row_len, 0);
                for (off, v) in band.iter_mut().enumerate() {
                    *v = (row0 * row_len) + off;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i);
            }
        }
    }

    #[test]
    fn with_parallelism_overrides_and_restores() {
        assert_eq!(current(), Parallelism::Auto);
        let inner = with_parallelism(Parallelism::Serial, current);
        assert_eq!(inner, Parallelism::Serial);
        assert_eq!(current(), Parallelism::Auto);
        let nested = with_parallelism(Parallelism::Threads(2), || {
            with_parallelism(Parallelism::Serial, current)
        });
        assert_eq!(nested, Parallelism::Serial);
        // Restored even when the body panics.
        let _ =
            std::panic::catch_unwind(|| with_parallelism(Parallelism::Serial, || panic!("boom")));
        assert_eq!(current(), Parallelism::Auto);
    }

    #[test]
    fn parallelism_pool_selection() {
        assert!(Parallelism::Serial.pool(1 << 30, 0).is_none());
        assert!(Parallelism::Threads(1).pool(1 << 30, 0).is_none());
        let p = Parallelism::Threads(3)
            .pool(1, 1 << 30)
            .expect("fixed pool");
        assert_eq!(p.threads(), 3);
        // Auto honours the cutoff.
        if global().threads() > 1 {
            assert!(Parallelism::Auto.pool(10, 1000).is_none());
            assert!(Parallelism::Auto.pool(1000, 10).is_some());
        } else {
            assert!(Parallelism::Auto.pool(1 << 30, 0).is_none());
        }
    }
}
