//! Finite-difference lid-driven cavity solver.
//!
//! Vorticity–streamfunction formulation on a uniform `(n+1)²` grid over
//! the unit cavity:
//!
//! ```text
//! ∇²ψ = −ω,   u = ψ_y,  v = −ψ_x
//! ω_t + u ω_x + v ω_y = ν ∇²ω
//! ```
//!
//! The Poisson equation is relaxed with SOR between explicit vorticity
//! steps; wall vorticity uses Thom's first-order formula with the moving
//! lid. Marching continues until the vorticity field is stationary.
//!
//! This solver plays the role of the paper's OpenFOAM validation data for
//! the LDC example (§4.1): its `(u, v)` fields — and the zero-equation
//! effective viscosity derived from them — are the targets the PINN's
//! validation errors are measured against.

use sgm_linalg::dense::Matrix;
use sgm_physics::validate::ValidationSet;

/// Solver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LdcSolver {
    /// Cells per side (grid is `(n+1) × (n+1)` nodes).
    pub n: usize,
    /// Reynolds number (`ν = 1/Re` with unit lid speed and cavity size).
    pub re: f64,
    /// Lid speed.
    pub lid: f64,
    /// Maximum pseudo-time steps.
    pub max_steps: usize,
    /// Convergence threshold on max |Δω| per step.
    pub tol: f64,
    /// Use the corner-regularised lid profile `lid·(4x(1−x))^{1/4}` —
    /// matching the PINN boundary condition — instead of a sharp uniform
    /// lid. The Ghia benchmark uses the sharp lid.
    pub regularized_lid: bool,
}

impl Default for LdcSolver {
    fn default() -> Self {
        LdcSolver {
            n: 64,
            re: 100.0,
            lid: 1.0,
            max_steps: 50_000,
            tol: 1e-7,
            regularized_lid: false,
        }
    }
}

/// The converged flow field on the grid.
#[derive(Debug, Clone)]
pub struct LdcField {
    /// Nodes per side.
    pub nodes: usize,
    /// Grid spacing.
    pub h: f64,
    /// x-velocity at nodes (row-major, `j * nodes + i`, `i` along x).
    pub u: Vec<f64>,
    /// y-velocity at nodes.
    pub v: Vec<f64>,
    /// Streamfunction.
    pub psi: Vec<f64>,
    /// Vorticity.
    pub omega: Vec<f64>,
    /// Pseudo-time steps actually taken.
    pub steps: usize,
}

impl LdcSolver {
    /// Runs the solver to (approximate) steady state.
    ///
    /// # Panics
    /// Panics if `n < 8`.
    pub fn solve(&self) -> LdcField {
        assert!(self.n >= 8, "grid too coarse");
        let n = self.n;
        let m = n + 1; // nodes per side
        let h = 1.0 / n as f64;
        let nu = self.lid / self.re;
        let mut psi = vec![0.0; m * m];
        let mut omega = vec![0.0; m * m];
        let mut omega_new = vec![0.0; m * m];
        let idx = |i: usize, j: usize| j * m + i;

        // Stable explicit step: diffusion + advection limits.
        let dt_diff = 0.2 * h * h / nu;
        let dt_adv = 0.5 * h / self.lid.max(1e-9);
        let dt = dt_diff.min(dt_adv);

        let lid_at = |i: usize| -> f64 {
            if self.regularized_lid {
                let x = i as f64 * h;
                let ramp = (4.0 * x * (1.0 - x)).min(1.0);
                self.lid * ramp.powf(0.25)
            } else {
                self.lid
            }
        };
        let sor_omega = 2.0 / (1.0 + (std::f64::consts::PI / m as f64).sin());
        let mut steps = 0;
        for step in 0..self.max_steps {
            steps = step + 1;
            // (1) SOR sweeps for ∇²ψ = −ω (ψ = 0 on all walls).
            for _ in 0..4 {
                for j in 1..n {
                    for i in 1..n {
                        let rhs = 0.25
                            * (psi[idx(i + 1, j)]
                                + psi[idx(i - 1, j)]
                                + psi[idx(i, j + 1)]
                                + psi[idx(i, j - 1)]
                                + h * h * omega[idx(i, j)]);
                        psi[idx(i, j)] += sor_omega * (rhs - psi[idx(i, j)]);
                    }
                }
            }
            // (2) Wall vorticity (Thom). Top lid moves at `lid`.
            for i in 0..m {
                // bottom j=0, top j=n
                omega[idx(i, 0)] = -2.0 * psi[idx(i, 1)] / (h * h);
                omega[idx(i, n)] = -2.0 * psi[idx(i, n - 1)] / (h * h) - 2.0 * lid_at(i) / h;
            }
            for j in 0..m {
                omega[idx(0, j)] = -2.0 * psi[idx(1, j)] / (h * h);
                omega[idx(n, j)] = -2.0 * psi[idx(n - 1, j)] / (h * h);
            }
            // (3) Explicit vorticity transport step.
            let mut max_delta = 0.0f64;
            for j in 1..n {
                for i in 1..n {
                    let u = (psi[idx(i, j + 1)] - psi[idx(i, j - 1)]) / (2.0 * h);
                    let v = -(psi[idx(i + 1, j)] - psi[idx(i - 1, j)]) / (2.0 * h);
                    let wx = (omega[idx(i + 1, j)] - omega[idx(i - 1, j)]) / (2.0 * h);
                    let wy = (omega[idx(i, j + 1)] - omega[idx(i, j - 1)]) / (2.0 * h);
                    let lap = (omega[idx(i + 1, j)]
                        + omega[idx(i - 1, j)]
                        + omega[idx(i, j + 1)]
                        + omega[idx(i, j - 1)]
                        - 4.0 * omega[idx(i, j)])
                        / (h * h);
                    let dw = dt * (nu * lap - u * wx - v * wy);
                    omega_new[idx(i, j)] = omega[idx(i, j)] + dw;
                    max_delta = max_delta.max(dw.abs());
                }
            }
            for j in 1..n {
                for i in 1..n {
                    omega[idx(i, j)] = omega_new[idx(i, j)];
                }
            }
            if max_delta < self.tol && step > 100 {
                break;
            }
        }
        // Velocities from ψ (one-sided at walls; lid BC exact).
        let mut u = vec![0.0; m * m];
        let mut v = vec![0.0; m * m];
        for j in 1..n {
            for i in 1..n {
                u[idx(i, j)] = (psi[idx(i, j + 1)] - psi[idx(i, j - 1)]) / (2.0 * h);
                v[idx(i, j)] = -(psi[idx(i + 1, j)] - psi[idx(i - 1, j)]) / (2.0 * h);
            }
        }
        for i in 0..m {
            u[idx(i, n)] = if self.regularized_lid {
                let x = i as f64 * h;
                let ramp = (4.0 * x * (1.0 - x)).min(1.0_f64);
                self.lid * ramp.powf(0.25)
            } else {
                self.lid
            };
        }
        LdcField {
            nodes: m,
            h,
            u,
            v,
            psi,
            omega,
            steps,
        }
    }
}

impl LdcField {
    fn at(&self, buf: &[f64], i: usize, j: usize) -> f64 {
        buf[j * self.nodes + i]
    }

    /// Bilinear interpolation of `(u, v)` at an arbitrary point.
    ///
    /// # Panics
    /// Panics if `(x, y)` is outside `[0, 1]²`.
    pub fn sample(&self, x: f64, y: f64) -> (f64, f64) {
        assert!(
            (0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y),
            "outside cavity"
        );
        let n = self.nodes - 1;
        let fx = (x / self.h).min(n as f64 - 1e-12);
        let fy = (y / self.h).min(n as f64 - 1e-12);
        let (i, j) = (fx as usize, fy as usize);
        let (tx, ty) = (fx - i as f64, fy - j as f64);
        let lerp = |buf: &[f64]| {
            let a = self.at(buf, i, j) * (1.0 - tx) + self.at(buf, i + 1, j) * tx;
            let b = self.at(buf, i, j + 1) * (1.0 - tx) + self.at(buf, i + 1, j + 1) * tx;
            a * (1.0 - ty) + b * ty
        };
        (lerp(&self.u), lerp(&self.v))
    }

    /// u along the vertical centreline (`x = 0.5`), bottom to top — the
    /// profile the Ghia benchmark tabulates.
    pub fn centerline_u(&self) -> Vec<(f64, f64)> {
        let m = self.nodes;
        (0..m)
            .map(|j| {
                let y = j as f64 * self.h;
                (y, self.sample(0.5, y).0)
            })
            .collect()
    }

    /// Zero-equation effective viscosity at a grid node, computed from the
    /// FDM velocity gradients: `ν = ν_mol + l(x)²·√(2(u_x²+v_y²)+(u_y+v_x)²)`
    /// with `l = min(κ·d_wall, cap)` — the reference for the PINN's `ν`
    /// output (paper Table 1's `nu` row).
    pub fn zero_eq_nu(&self, i: usize, j: usize, nu_mol: f64, karman: f64, cap: f64) -> f64 {
        let n = self.nodes - 1;
        let (i, j) = (i.clamp(1, n - 1), j.clamp(1, n - 1));
        let h2 = 2.0 * self.h;
        let u_x = (self.at(&self.u, i + 1, j) - self.at(&self.u, i - 1, j)) / h2;
        let u_y = (self.at(&self.u, i, j + 1) - self.at(&self.u, i, j - 1)) / h2;
        let v_x = (self.at(&self.v, i + 1, j) - self.at(&self.v, i - 1, j)) / h2;
        let v_y = (self.at(&self.v, i, j + 1) - self.at(&self.v, i, j - 1)) / h2;
        let g = 2.0 * u_x * u_x + 2.0 * v_y * v_y + (u_y + v_x) * (u_y + v_x);
        let (x, y) = (i as f64 * self.h, j as f64 * self.h);
        let d = x.min(1.0 - x).min(y).min(1.0 - y);
        let l = (karman * d).min(cap);
        nu_mol + l * l * g.sqrt()
    }

    /// Builds a [`ValidationSet`] on an interior sub-grid with targets
    /// `(u, v, ν)` mapped to network outputs `(0, 1, 3)` — the LDC
    /// zero-equation network layout (`u, v, p, ν`).
    pub fn validation_set(
        &self,
        stride: usize,
        nu_mol: f64,
        karman: f64,
        cap: f64,
    ) -> ValidationSet {
        let n = self.nodes - 1;
        let mut rows = Vec::new();
        let mut vals = Vec::new();
        let mut j = stride.max(1);
        while j < n {
            let mut i = stride.max(1);
            while i < n {
                rows.push((i as f64 * self.h, j as f64 * self.h));
                vals.push((
                    self.at(&self.u, i, j),
                    self.at(&self.v, i, j),
                    self.zero_eq_nu(i, j, nu_mol, karman, cap),
                ));
                i += stride;
            }
            j += stride;
        }
        let mut points = Matrix::zeros(rows.len(), 2);
        let mut targets = Matrix::zeros(rows.len(), 3);
        for (r, (&(x, y), &(u, v, nu))) in rows.iter().zip(&vals).enumerate() {
            points.set(r, 0, x);
            points.set(r, 1, y);
            targets.set(r, 0, u);
            targets.set(r, 1, v);
            targets.set(r, 2, nu);
        }
        ValidationSet {
            points,
            targets,
            output_indices: vec![0, 1, 3],
            names: vec!["u".into(), "v".into(), "nu".into()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_field() -> LdcField {
        LdcSolver {
            n: 32,
            re: 100.0,
            max_steps: 20_000,
            ..LdcSolver::default()
        }
        .solve()
    }

    #[test]
    fn converges_and_conserves_no_slip() {
        let f = small_field();
        assert!(
            f.steps < 20_000,
            "did not converge early ({} steps)",
            f.steps
        );
        // No-slip at bottom wall.
        for i in 0..f.nodes {
            assert_eq!(f.u[i], 0.0);
        }
        // Lid moves at 1.
        let top = (f.nodes - 1) * f.nodes;
        for i in 0..f.nodes {
            assert_eq!(f.u[top + i], 1.0);
        }
    }

    #[test]
    fn primary_vortex_rotates_clockwise() {
        let f = small_field();
        // Lid drives flow rightward at the top ⇒ u < 0 somewhere below
        // centre (return flow), and ψ has a single dominant sign.
        let (u_mid, _) = f.sample(0.5, 0.3);
        assert!(u_mid < 0.0, "expected return flow, got {u_mid}");
    }

    #[test]
    fn centerline_matches_ghia_re100_roughly() {
        let f = small_field();
        // Ghia et al. Re=100: u(0.5, 0.4531) ≈ −0.21090 (minimum region).
        let (u, _) = f.sample(0.5, 0.4531);
        assert!(
            (u - (-0.2109)).abs() < 0.05,
            "centerline u {u} vs Ghia −0.2109"
        );
        // And the global minimum should be close to it.
        let min_u = f
            .centerline_u()
            .iter()
            .map(|&(_, u)| u)
            .fold(f64::MAX, f64::min);
        assert!((min_u - (-0.2109)).abs() < 0.05, "min u {min_u}");
    }

    #[test]
    fn sample_interpolates_continuously() {
        let f = small_field();
        let (a, _) = f.sample(0.5, 0.5);
        let (b, _) = f.sample(0.5 + 1e-4, 0.5);
        assert!((a - b).abs() < 1e-2);
    }

    #[test]
    fn validation_set_shapes_and_indices() {
        let f = small_field();
        let vs = f.validation_set(4, 0.01, 0.419, 0.045);
        assert!(!vs.is_empty());
        assert_eq!(vs.output_indices, vec![0, 1, 3]);
        assert_eq!(vs.names, vec!["u", "v", "nu"]);
        // ν targets must be at least molecular viscosity.
        for r in 0..vs.len() {
            assert!(vs.targets.get(r, 2) >= 0.01);
        }
    }

    #[test]
    fn mass_conservation_streamfunction() {
        // Continuity is exact by construction (u, v from ψ); check the
        // discrete divergence is small in the interior.
        let f = small_field();
        let n = f.nodes - 1;
        let h2 = 2.0 * f.h;
        let mut max_div = 0.0f64;
        for j in 2..n - 1 {
            for i in 2..n - 1 {
                let at = |b: &Vec<f64>, ii: usize, jj: usize| b[jj * f.nodes + ii];
                let div = (at(&f.u, i + 1, j) - at(&f.u, i - 1, j)) / h2
                    + (at(&f.v, i, j + 1) - at(&f.v, i, j - 1)) / h2;
                max_div = max_div.max(div.abs());
            }
        }
        assert!(max_div < 0.5, "divergence too large: {max_div}");
    }
}
