//! Ghia–Ghia–Shin (1982) benchmark data for the lid-driven cavity.
//!
//! The canonical validation table for LDC solvers: u-velocity along the
//! vertical centreline `x = 0.5` at selected `y` stations. Used to verify
//! the FDM solver in [`crate::ldc`], which in turn validates the PINN.

/// `(y, u)` stations for Re = 100.
pub const RE100_CENTERLINE_U: &[(f64, f64)] = &[
    (0.0000, 0.00000),
    (0.0547, -0.03717),
    (0.0625, -0.04192),
    (0.0703, -0.04775),
    (0.1016, -0.06434),
    (0.1719, -0.10150),
    (0.2813, -0.15662),
    (0.4531, -0.21090),
    (0.5000, -0.20581),
    (0.6172, -0.13641),
    (0.7344, 0.00332),
    (0.8516, 0.23151),
    (0.9531, 0.68717),
    (0.9609, 0.73722),
    (0.9688, 0.78871),
    (0.9766, 0.84123),
    (1.0000, 1.00000),
];

/// `(y, u)` stations for Re = 1000.
pub const RE1000_CENTERLINE_U: &[(f64, f64)] = &[
    (0.0000, 0.00000),
    (0.0547, -0.08186),
    (0.0625, -0.09266),
    (0.0703, -0.10338),
    (0.1016, -0.14612),
    (0.1719, -0.24299),
    (0.2813, -0.32726),
    (0.4531, -0.38289),
    (0.5000, -0.31966),
    (0.6172, -0.18109),
    (0.7344, -0.06205),
    (0.8516, 0.10885),
    (0.9531, 0.39188),
    (0.9609, 0.47476),
    (0.9688, 0.57492),
    (0.9766, 0.65928),
    (1.0000, 1.00000),
];

/// Root-mean-square deviation of a computed centreline profile from the
/// benchmark stations (profile given as `(y, u)` samples; nearest-sample
/// lookup).
///
/// # Panics
/// Panics if the profile is empty.
pub fn rms_deviation(profile: &[(f64, f64)], reference: &[(f64, f64)]) -> f64 {
    assert!(!profile.is_empty(), "empty profile");
    let mut s = 0.0;
    for &(y, u_ref) in reference {
        let u = profile
            .iter()
            .min_by(|a, b| (a.0 - y).abs().partial_cmp(&(b.0 - y).abs()).unwrap())
            .map(|&(_, u)| u)
            .unwrap();
        s += (u - u_ref) * (u - u_ref);
    }
    (s / reference.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldc::LdcSolver;

    #[test]
    fn tables_are_monotone_in_y() {
        for table in [RE100_CENTERLINE_U, RE1000_CENTERLINE_U] {
            for w in table.windows(2) {
                assert!(w[1].0 > w[0].0);
            }
            assert_eq!(table.first().unwrap().1, 0.0);
            assert_eq!(table.last().unwrap().1, 1.0);
        }
    }

    #[test]
    fn fdm_solver_matches_ghia_re100() {
        let f = LdcSolver {
            n: 48,
            re: 100.0,
            max_steps: 40_000,
            ..LdcSolver::default()
        }
        .solve();
        let rms = rms_deviation(&f.centerline_u(), RE100_CENTERLINE_U);
        assert!(rms < 0.03, "RMS deviation from Ghia Re=100: {rms}");
    }

    #[test]
    fn rms_deviation_zero_on_reference_itself() {
        let d = rms_deviation(RE100_CENTERLINE_U, RE100_CENTERLINE_U);
        assert_eq!(d, 0.0);
    }
}
