//! # sgm-cfd
//!
//! Reference CFD solutions standing in for the paper's OpenFOAM validation
//! data (which we do not have):
//!
//! * [`ldc`] — a finite-difference **lid-driven cavity** solver
//!   (vorticity–streamfunction formulation, explicit pseudo-time marching
//!   with SOR Poisson solves), validated against the Ghia–Ghia–Shin
//!   benchmark profiles in [`ghia`]. Supplies `(u, v)` reference fields and
//!   the zero-equation effective viscosity `ν` derived from the velocity
//!   gradients — the three outputs the paper's Table 1 scores.
//! * [`ring`] — validation grids for the parameterised annular ring, built
//!   from the **exact** potential-flow Navier–Stokes solution implemented
//!   in `sgm-physics` (radial source flow is an exact steady solution for
//!   every viscosity, so no numerical solve is needed).
//! * [`ghia`] — the classic benchmark centreline values used to verify the
//!   FDM solver itself.
//! * [`heat`] — chip-floorplan steady heat conduction (the paper's intro
//!   motivation "chip thermal analysis"): power-block layouts plus a
//!   finite-volume Gauss–Seidel reference solver.
//! * [`burgers`] — the Cole–Hopf closed-form solution of the viscous
//!   Burgers benchmark, evaluated with Gauss–Hermite quadrature.

pub mod burgers;
pub mod ghia;
pub mod heat;
pub mod ldc;
pub mod ring;

pub use heat::{ChipLayout, HeatField, HeatSolver};
pub use ldc::{LdcField, LdcSolver};
