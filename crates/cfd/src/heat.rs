//! Chip-scale steady heat conduction: a floorplan of power blocks and a
//! finite-volume reference solver.
//!
//! The paper's introduction motivates PINN PDE solvers with CAD workloads
//! — "chip thermal analysis" among them. This module supplies that
//! workload: a [`ChipLayout`] describes rectangular power blocks (heat
//! sources) and material regions (conductivity map) on the unit die;
//! [`HeatSolver`] solves `∇·(κ∇T) + q = 0` with Dirichlet edges
//! (heat-sink boundary) by Gauss–Seidel on a finite-volume stencil with
//! harmonic-mean face conductivities, providing the validation targets
//! for the PINN version of the same problem.

use sgm_linalg::dense::Matrix;
use sgm_physics::validate::ValidationSet;

/// A rectangular block on the die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Block {
    /// Lower-left corner.
    pub x0: f64,
    /// Lower-left corner.
    pub y0: f64,
    /// Upper-right corner.
    pub x1: f64,
    /// Upper-right corner.
    pub y1: f64,
    /// Power density added inside the block.
    pub power: f64,
    /// Conductivity multiplier inside the block (1.0 = substrate).
    pub conductivity_scale: f64,
}

impl Block {
    /// Whether `(x, y)` lies inside the block.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        (self.x0..=self.x1).contains(&x) && (self.y0..=self.y1).contains(&y)
    }
}

/// A floorplan on the unit die `[0,1]²`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipLayout {
    /// Substrate conductivity.
    pub kappa0: f64,
    /// Power/material blocks (later blocks win on overlap).
    pub blocks: Vec<Block>,
    /// Boundary (heat-sink) temperature.
    pub sink_temperature: f64,
}

impl Default for ChipLayout {
    /// A small demonstrative floorplan: two hot cores, one low-κ cache
    /// region.
    fn default() -> Self {
        ChipLayout {
            kappa0: 1.0,
            blocks: vec![
                Block {
                    x0: 0.15,
                    y0: 0.55,
                    x1: 0.40,
                    y1: 0.85,
                    power: 40.0,
                    conductivity_scale: 1.0,
                },
                Block {
                    x0: 0.60,
                    y0: 0.15,
                    x1: 0.85,
                    y1: 0.45,
                    power: 25.0,
                    conductivity_scale: 1.0,
                },
                Block {
                    x0: 0.55,
                    y0: 0.60,
                    x1: 0.90,
                    y1: 0.90,
                    power: 0.0,
                    conductivity_scale: 0.3,
                },
            ],
            sink_temperature: 0.0,
        }
    }
}

impl ChipLayout {
    /// Conductivity at a point.
    pub fn conductivity(&self, x: f64, y: f64) -> f64 {
        let mut k = self.kappa0;
        for b in &self.blocks {
            if b.contains(x, y) {
                k = self.kappa0 * b.conductivity_scale;
            }
        }
        k
    }

    /// Power density at a point.
    pub fn power(&self, x: f64, y: f64) -> f64 {
        let mut q = 0.0;
        for b in &self.blocks {
            if b.contains(x, y) {
                q = b.power;
            }
        }
        q
    }
}

/// Finite-volume Gauss–Seidel solver for the layout.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatSolver {
    /// Cells per side.
    pub n: usize,
    /// Maximum Gauss–Seidel sweeps.
    pub max_sweeps: usize,
    /// Convergence threshold on max |ΔT| per sweep.
    pub tol: f64,
}

impl Default for HeatSolver {
    fn default() -> Self {
        HeatSolver {
            n: 64,
            max_sweeps: 20_000,
            tol: 1e-9,
        }
    }
}

/// The solved temperature field.
#[derive(Debug, Clone)]
pub struct HeatField {
    /// Nodes per side.
    pub nodes: usize,
    /// Grid spacing.
    pub h: f64,
    /// Temperatures (row-major `j * nodes + i`).
    pub t: Vec<f64>,
    /// Sweeps used.
    pub sweeps: usize,
}

impl HeatSolver {
    /// Solves the layout to steady state.
    ///
    /// # Panics
    /// Panics if `n < 8`.
    pub fn solve(&self, layout: &ChipLayout) -> HeatField {
        assert!(self.n >= 8, "grid too coarse");
        let n = self.n;
        let m = n + 1;
        let h = 1.0 / n as f64;
        let idx = |i: usize, j: usize| j * m + i;
        let mut t = vec![layout.sink_temperature; m * m];
        // Per-node conductivity and source.
        let kappa: Vec<f64> = (0..m * m)
            .map(|p| {
                let (i, j) = (p % m, p / m);
                layout.conductivity(i as f64 * h, j as f64 * h)
            })
            .collect();
        let source: Vec<f64> = (0..m * m)
            .map(|p| {
                let (i, j) = (p % m, p / m);
                layout.power(i as f64 * h, j as f64 * h)
            })
            .collect();
        let harmonic = |a: f64, b: f64| 2.0 * a * b / (a + b).max(1e-300);
        let mut sweeps = 0;
        for sweep in 0..self.max_sweeps {
            sweeps = sweep + 1;
            let mut max_delta = 0.0f64;
            for j in 1..n {
                for i in 1..n {
                    let kc = kappa[idx(i, j)];
                    let ke = harmonic(kc, kappa[idx(i + 1, j)]);
                    let kw = harmonic(kc, kappa[idx(i - 1, j)]);
                    let kn = harmonic(kc, kappa[idx(i, j + 1)]);
                    let ks = harmonic(kc, kappa[idx(i, j - 1)]);
                    let denom = ke + kw + kn + ks;
                    let new = (ke * t[idx(i + 1, j)]
                        + kw * t[idx(i - 1, j)]
                        + kn * t[idx(i, j + 1)]
                        + ks * t[idx(i, j - 1)]
                        + h * h * source[idx(i, j)])
                        / denom;
                    max_delta = max_delta.max((new - t[idx(i, j)]).abs());
                    t[idx(i, j)] = new;
                }
            }
            if max_delta < self.tol && sweep > 10 {
                break;
            }
        }
        HeatField {
            nodes: m,
            h,
            t,
            sweeps,
        }
    }
}

impl HeatField {
    /// Bilinear interpolation of the temperature at `(x, y)`.
    ///
    /// # Panics
    /// Panics outside the unit die.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y),
            "outside die"
        );
        let n = self.nodes - 1;
        let fx = (x / self.h).min(n as f64 - 1e-12);
        let fy = (y / self.h).min(n as f64 - 1e-12);
        let (i, j) = (fx as usize, fy as usize);
        let (tx, ty) = (fx - i as f64, fy - j as f64);
        let at = |ii: usize, jj: usize| self.t[jj * self.nodes + ii];
        let a = at(i, j) * (1.0 - tx) + at(i + 1, j) * tx;
        let b = at(i, j + 1) * (1.0 - tx) + at(i + 1, j + 1) * tx;
        a * (1.0 - ty) + b * ty
    }

    /// Peak temperature (the quantity thermal sign-off cares about).
    pub fn peak(&self) -> f64 {
        self.t.iter().cloned().fold(f64::MIN, f64::max)
    }

    /// Builds a [`ValidationSet`] on an interior sub-grid (output 0 = T).
    pub fn validation_set(&self, stride: usize) -> ValidationSet {
        let n = self.nodes - 1;
        let mut rows = Vec::new();
        let mut j = stride.max(1);
        while j < n {
            let mut i = stride.max(1);
            while i < n {
                rows.push((
                    i as f64 * self.h,
                    j as f64 * self.h,
                    self.t[j * self.nodes + i],
                ));
                i += stride;
            }
            j += stride;
        }
        let mut points = Matrix::zeros(rows.len(), 2);
        let mut targets = Matrix::zeros(rows.len(), 1);
        for (r, &(x, y, tv)) in rows.iter().enumerate() {
            points.set(r, 0, x);
            points.set(r, 1, y);
            targets.set(r, 0, tv);
        }
        ValidationSet {
            points,
            targets,
            output_indices: vec![0],
            names: vec!["T".into()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_source_matches_poisson_series() {
        // κ = 1, q = 1 on the whole die with zero Dirichlet edges: the
        // centre temperature of −∇²T = 1 is ≈ 0.0736713 (series solution).
        let layout = ChipLayout {
            kappa0: 1.0,
            blocks: vec![Block {
                x0: 0.0,
                y0: 0.0,
                x1: 1.0,
                y1: 1.0,
                power: 1.0,
                conductivity_scale: 1.0,
            }],
            sink_temperature: 0.0,
        };
        let f = HeatSolver {
            n: 48,
            ..HeatSolver::default()
        }
        .solve(&layout);
        let centre = f.sample(0.5, 0.5);
        assert!(
            (centre - 0.0736713).abs() < 2e-3,
            "centre T {centre} vs series 0.0736713"
        );
    }

    #[test]
    fn hot_blocks_are_hotter() {
        let layout = ChipLayout::default();
        let f = HeatSolver::default().solve(&layout);
        let in_core = f.sample(0.27, 0.7); // inside the 40 W/mm² core
        let idle = f.sample(0.8, 0.05); // near the sink, no power
        assert!(
            in_core > 3.0 * idle.max(1e-9),
            "core {in_core} vs idle {idle}"
        );
        assert!(f.peak() >= in_core);
    }

    #[test]
    fn low_conductivity_region_raises_upstream_temperature() {
        // Same power map, but once with the low-κ cache and once without:
        // the blocked heat path should raise the hot core's temperature.
        let with_cache = ChipLayout::default();
        let mut without = ChipLayout::default();
        without.blocks[2].conductivity_scale = 1.0;
        let f1 = HeatSolver::default().solve(&with_cache);
        let f2 = HeatSolver::default().solve(&without);
        assert!(f1.peak() > f2.peak());
    }

    #[test]
    fn dirichlet_edges_pinned() {
        let f = HeatSolver::default().solve(&ChipLayout::default());
        for i in 0..f.nodes {
            assert_eq!(f.t[i], 0.0); // bottom row
            assert_eq!(f.t[(f.nodes - 1) * f.nodes + i], 0.0); // top row
        }
    }

    #[test]
    fn validation_set_is_interior_only() {
        let f = HeatSolver {
            n: 32,
            ..HeatSolver::default()
        }
        .solve(&ChipLayout::default());
        let vs = f.validation_set(4);
        assert!(!vs.is_empty());
        for r in 0..vs.len() {
            let (x, y) = (vs.points.get(r, 0), vs.points.get(r, 1));
            assert!(x > 0.0 && x < 1.0 && y > 0.0 && y < 1.0);
        }
    }

    #[test]
    fn layout_maps_are_consistent() {
        let l = ChipLayout::default();
        assert_eq!(l.power(0.27, 0.7), 40.0);
        assert_eq!(l.power(0.05, 0.05), 0.0);
        assert!((l.conductivity(0.7, 0.75) - 0.3).abs() < 1e-12);
        assert_eq!(l.conductivity(0.05, 0.05), 1.0);
    }
}
