//! Exact reference solution of the viscous Burgers benchmark via the
//! Cole–Hopf transformation.
//!
//! The standard PINN benchmark (Raissi et al.) solves
//! `u_t + u u_x = ν u_xx` on `x ∈ [−1, 1]`, `t ∈ [0, 1]` with
//! `u(x, 0) = −sin(πx)` and `u(±1, t) = 0`, `ν = 0.01/π`. Cole–Hopf gives
//! the closed form
//!
//! ```text
//! u(x, t) = −∫ sin(π(x − η)) f(x − η) G(η) dη / ∫ f(x − η) G(η) dη
//! f(y) = exp(−cos(πy)/(2πν)),  G(η) = exp(−η²/(4νt))
//! ```
//!
//! evaluated here with Gauss–Hermite quadrature (substituting
//! `η = 2√(νt)·z` turns `G` into `e^{−z²}`).

use sgm_linalg::dense::Matrix;
use sgm_physics::validate::ValidationSet;

/// 32-point Gauss–Hermite nodes (positive half; symmetric).
const GH_NODES: [f64; 16] = [
    0.194840741569,
    0.584978765436,
    0.976500463590,
    1.370376410953,
    1.767654109463,
    2.169499183606,
    2.577249537732,
    2.992490825002,
    3.417167492819,
    3.853755485471,
    4.305547953351,
    4.777164503503,
    5.275550986516,
    5.812225949516,
    6.409498149270,
    7.125813909830,
];
/// Matching weights.
const GH_WEIGHTS: [f64; 16] = [
    3.75238352593e-1,
    2.77458142303e-1,
    1.51269734077e-1,
    6.04581309559e-2,
    1.75534288315e-2,
    3.65489032665e-3,
    5.36268365527e-4,
    5.41658406181e-5,
    3.65058512956e-6,
    1.57416779254e-7,
    4.09883216477e-9,
    5.93329146339e-11,
    4.21501021132e-13,
    1.19734401709e-15,
    9.23173653651e-19,
    7.31067642738e-23,
];

/// The benchmark's viscosity.
pub const BENCH_NU: f64 = 0.01 / std::f64::consts::PI;

/// Exact solution `u(x, t)` of the benchmark problem via Cole–Hopf +
/// Gauss–Hermite quadrature. At `t = 0` returns the initial condition.
///
/// # Panics
/// Panics for `t < 0`.
pub fn exact_solution(x: f64, t: f64, nu: f64) -> f64 {
    assert!(t >= 0.0, "negative time");
    let pi = std::f64::consts::PI;
    if t < 1e-12 {
        return -(pi * x).sin();
    }
    let c = 2.0 * (nu * t).sqrt();
    let f = |y: f64| (-((pi * y).cos()) / (2.0 * pi * nu)).exp();
    let mut num = 0.0;
    let mut den = 0.0;
    for k in 0..GH_NODES.len() {
        for sign in [-1.0, 1.0] {
            let z = sign * GH_NODES[k];
            let w = GH_WEIGHTS[k];
            let y = x - c * z;
            let fv = f(y);
            num += w * (pi * y).sin() * fv;
            den += w * fv;
        }
    }
    if den.abs() < 1e-300 {
        0.0
    } else {
        -num / den
    }
}

/// Validation grid over `(x, t) ∈ [−1, 1] × (0, t_max]` with exact
/// targets (output 0 = u).
pub fn burgers_validation_set(nx: usize, nt: usize, t_max: f64, nu: f64) -> ValidationSet {
    let n = nx * nt;
    let mut points = Matrix::zeros(n, 2);
    let mut targets = Matrix::zeros(n, 1);
    let mut row = 0;
    for it in 0..nt {
        let t = t_max * (it as f64 + 1.0) / nt as f64;
        for ix in 0..nx {
            let x = -1.0 + 2.0 * (ix as f64 + 0.5) / nx as f64;
            points.set(row, 0, x);
            points.set(row, 1, t);
            targets.set(row, 0, exact_solution(x, t, nu));
            row += 1;
        }
    }
    ValidationSet {
        points,
        targets,
        output_indices: vec![0],
        names: vec!["u".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_condition_is_minus_sine() {
        let pi = std::f64::consts::PI;
        for &x in &[-0.8, -0.3, 0.0, 0.4, 0.9] {
            let u = exact_solution(x, 0.0, BENCH_NU);
            assert!((u + (pi * x).sin()).abs() < 1e-12);
        }
    }

    #[test]
    fn odd_symmetry_in_x() {
        for &t in &[0.1, 0.5, 0.9] {
            for &x in &[0.2, 0.5, 0.8] {
                let up = exact_solution(x, t, BENCH_NU);
                let um = exact_solution(-x, t, BENCH_NU);
                assert!((up + um).abs() < 1e-8, "u({x},{t})={up}, u(−{x},{t})={um}");
            }
        }
    }

    #[test]
    fn zero_at_origin_and_boundaries() {
        for &t in &[0.05, 0.25, 0.75] {
            assert!(exact_solution(0.0, t, BENCH_NU).abs() < 1e-10);
            assert!(exact_solution(1.0, t, BENCH_NU).abs() < 1e-6);
            assert!(exact_solution(-1.0, t, BENCH_NU).abs() < 1e-6);
        }
    }

    #[test]
    fn shock_steepens_at_origin() {
        // |du/dx| at x=0 grows sharply as the shock forms near t ≈ 0.3–0.5.
        let slope = |t: f64| {
            let h = 1e-3;
            (exact_solution(h, t, BENCH_NU) - exact_solution(-h, t, BENCH_NU)) / (2.0 * h)
        };
        let early = slope(0.05).abs();
        let late = slope(0.6).abs();
        assert!(
            late > 5.0 * early,
            "shock did not steepen: {early} -> {late}"
        );
    }

    #[test]
    fn satisfies_pde_by_finite_difference() {
        // Check u_t + u u_x − ν u_xx ≈ 0 away from the shock.
        let (x, t) = (0.5, 0.3);
        let nu = BENCH_NU;
        let h = 1e-4;
        let u = exact_solution(x, t, nu);
        let ux = (exact_solution(x + h, t, nu) - exact_solution(x - h, t, nu)) / (2.0 * h);
        let uxx = (exact_solution(x + h, t, nu) - 2.0 * u + exact_solution(x - h, t, nu)) / (h * h);
        let ut = (exact_solution(x, t + h, nu) - exact_solution(x, t - h, nu)) / (2.0 * h);
        let r = ut + u * ux - nu * uxx;
        assert!(r.abs() < 5e-3, "residual {r}");
    }

    #[test]
    fn validation_grid_shape() {
        let vs = burgers_validation_set(16, 4, 1.0, BENCH_NU);
        assert_eq!(vs.len(), 64);
        assert_eq!(vs.names, vec!["u"]);
        for r in 0..vs.len() {
            assert!(vs.targets.get(r, 0).is_finite());
            assert!(vs.targets.get(r, 0).abs() <= 1.0 + 1e-9);
        }
    }
}
