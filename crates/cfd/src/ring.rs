//! Validation grids for the parameterised annular ring.
//!
//! The radial source flow through the annulus is an exact steady
//! incompressible Navier–Stokes solution (see
//! [`sgm_physics::geometry::AnnulusChannel::exact_solution`]), so the
//! validation fields the paper obtains from OpenFOAM are available here in
//! closed form, at any parameter value.

use sgm_physics::geometry::AnnulusChannel;
use sgm_physics::validate::ValidationSet;

/// Validation sets at the given inner radii (the paper uses
/// `r_i ∈ {1.0, 0.875, 0.75}`), each a polar grid of `nr × nth` points
/// with exact `(u, v, p)` targets.
pub fn ring_validation_sets(
    ring: &AnnulusChannel,
    radii: &[f64],
    nr: usize,
    nth: usize,
) -> Vec<ValidationSet> {
    radii
        .iter()
        .map(|&r_i| {
            let (points, targets) = ring.validation_grid(r_i, nr, nth);
            ValidationSet {
                points,
                targets,
                output_indices: vec![0, 1, 2],
                names: vec!["u".into(), "v".into(), "p".into()],
            }
        })
        .collect()
}

/// The paper's validation radii for the AR example.
pub const PAPER_VALIDATION_RADII: [f64; 3] = [1.0, 0.875, 0.75];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sets_have_expected_shapes() {
        let ring = AnnulusChannel::default();
        let sets = ring_validation_sets(&ring, &PAPER_VALIDATION_RADII, 6, 12);
        assert_eq!(sets.len(), 3);
        for s in &sets {
            assert_eq!(s.len(), 72);
            assert_eq!(s.output_indices, vec![0, 1, 2]);
        }
    }

    #[test]
    fn targets_satisfy_mass_flux() {
        // Total radial flux through any circle equals 2π r_i U_in.
        let ring = AnnulusChannel::default();
        let sets = ring_validation_sets(&ring, &[1.0], 4, 64);
        let s = &sets[0];
        // Points come in rings of 64; flux of first ring:
        let r0 = {
            let (x, y) = (s.points.get(0, 0), s.points.get(0, 1));
            (x * x + y * y).sqrt()
        };
        let mut flux = 0.0;
        for i in 0..64 {
            let (x, y) = (s.points.get(i, 0), s.points.get(i, 1));
            let (u, v) = (s.targets.get(i, 0), s.targets.get(i, 1));
            let r = (x * x + y * y).sqrt();
            // radial component u·x/r + v·y/r
            flux += (u * x / r + v * y / r) * (2.0 * std::f64::consts::PI * r0 / 64.0);
        }
        let expect = 2.0 * std::f64::consts::PI * 1.0 * ring.inlet_velocity;
        assert!(
            (flux - expect).abs() < 1e-6 * expect.abs(),
            "flux {flux} vs {expect}"
        );
    }
}
