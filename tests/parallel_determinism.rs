//! Cross-crate determinism contract of the `sgm-par` runtime: with a
//! fixed seed, every pooled code path must produce *bit-identical*
//! results for thread counts 1, 2 and 8 — and match the serial oracle.
//!
//! Chunk boundaries are derived from problem sizes only and per-chunk
//! results merge in chunk order, so the thread count may only change who
//! computes each chunk, never what is computed.
//!
//! The contract is per SIMD dispatch tier: the lighter tests run the
//! whole thread-count matrix once per tier in
//! `sgm_linalg::simd::available_tiers()` (scalar everywhere, plus AVX2
//! on hosts that have it). Results may differ *across* tiers — only by
//! bounded FMA contraction, pinned by `crates/testkit/tests/
//! simd_oracles.rs` — but must be bit-identical *within* a tier.

use sgm_core::{
    DmisConfig, DmisSampler, RadConfig, RadSampler, RarDConfig, RarDSampler, SgmConfig, SgmSampler,
};
use sgm_graph::knn::{build_knn_graph, KnnConfig, KnnStrategy};
use sgm_graph::points::PointCloud;
use sgm_graph::resistance::{approx_edge_resistances, ApproxErOptions};
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_linalg::simd;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{BatchDerivatives, Mlp, MlpConfig};
use sgm_nn::optimizer::AdamConfig;
use sgm_nn::BatchedMlp;
use sgm_par::Parallelism;
use sgm_physics::geometry::{Cavity, FillStrategy};
use sgm_physics::pde::{Pde, PoissonConfig};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::PinnModel;
use sgm_train::{Probe, RunState, Sampler, TrainOptions, Trainer};

/// Draw one batch through the no-allocation `fill_batch` entry point.
fn next_batch(s: &mut dyn Sampler, batch: usize, rng: &mut Rng64) -> Vec<usize> {
    let mut out = Vec::new();
    s.fill_batch(batch, &mut out, rng);
    out
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn run_per_thread_count<T>(f: impl Fn() -> T) -> Vec<T> {
    let mut out = vec![sgm_par::with_parallelism(Parallelism::Serial, &f)];
    for &t in &THREAD_COUNTS {
        out.push(sgm_par::with_parallelism(Parallelism::Threads(t), &f));
    }
    out
}

fn assert_all_bits_equal(runs: &[Vec<f64>], what: &str) {
    for (ri, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(runs[0].len(), run.len(), "{what}: length mismatch run {ri}");
        for (i, (a, b)) in runs[0].iter().zip(run).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{what}[{i}]: serial {a} vs run {ri} {b}"
            );
        }
    }
}

/// MLP forward values, input derivatives and parameter gradients are
/// bit-identical for every thread count.
#[test]
fn mlp_gradients_bit_identical_across_thread_counts() {
    let cfg = MlpConfig {
        input_dim: 2,
        output_dim: 2,
        hidden_width: 24,
        hidden_layers: 3,
        activation: Activation::SiLu,
        fourier: None,
    };
    let mut rng = Rng64::new(901);
    let net = Mlp::new(&cfg, &mut rng);
    let x = Matrix::gaussian(300, 2, &mut rng);
    for &tier in simd::available_tiers() {
        let runs = simd::with_tier(tier, || {
            run_per_thread_count(|| {
                let values = net.forward(&x);
                let (full, cache) = net.forward_with_derivs(&x, &[0, 1]);
                let mut adj = BatchDerivatives::zeros_like(&full);
                for (dst, src) in adj
                    .values
                    .as_mut_slice()
                    .iter_mut()
                    .zip(full.values.as_slice())
                {
                    *dst = 2.0 * src;
                }
                for d in 0..2 {
                    for (dst, src) in adj.jac[d]
                        .as_mut_slice()
                        .iter_mut()
                        .zip(full.jac[d].as_slice())
                    {
                        *dst = 2.0 * src;
                    }
                }
                let grads = net.backward(&cache, &adj);
                let mut flat = values.as_slice().to_vec();
                for d in 0..2 {
                    flat.extend_from_slice(full.jac[d].as_slice());
                    flat.extend_from_slice(full.hess[d].as_slice());
                }
                flat.extend_from_slice(&grads.flat());
                flat
            })
        });
        assert_all_bits_equal(&runs, &format!("mlp [{tier:?}]"));
    }
}

/// The batched multi-model forward/backward: B-instance derivatives and
/// parameter gradients are bit-identical for every thread count within
/// a tier, and every instance is bit-identical to the same network run
/// solo — the grouping contract the probe-fusion, sweep and serve
/// co-execution call sites rely on.
#[test]
fn batched_mlp_bit_identical_across_thread_counts_and_solo() {
    let cfg = MlpConfig {
        input_dim: 2,
        output_dim: 2,
        hidden_width: 24,
        hidden_layers: 3,
        activation: Activation::SiLu,
        fourier: None,
    };
    let mut rng = Rng64::new(912);
    let nets: Vec<Mlp> = (0..3).map(|_| Mlp::new(&cfg, &mut rng)).collect();
    let xs: Vec<Matrix> = (0..3).map(|_| Matrix::gaussian(300, 2, &mut rng)).collect();
    let batched_flat = |lane_derivs: &BatchDerivatives, grads_flat: &[f64], flat: &mut Vec<f64>| {
        flat.extend_from_slice(lane_derivs.values.as_slice());
        for k in 0..2 {
            flat.extend_from_slice(lane_derivs.jac[k].as_slice());
            flat.extend_from_slice(lane_derivs.hess[k].as_slice());
        }
        flat.extend_from_slice(grads_flat);
    };
    for &tier in simd::available_tiers() {
        let runs = simd::with_tier(tier, || {
            run_per_thread_count(|| {
                let refs: Vec<&Mlp> = nets.iter().collect();
                let packed = BatchedMlp::pack(&refs);
                let mut ws = packed.make_workspace(300, 2);
                let xrefs: Vec<&Matrix> = xs.iter().collect();
                packed.forward_with_derivs_batched(&xrefs, &[0, 1], &mut ws);
                let mut d = BatchDerivatives::zeros(300, 2, 2);
                let mut lane_derivs = Vec::new();
                for lane in 0..3 {
                    ws.extract_derivs(lane, &mut d);
                    let mut adj = BatchDerivatives::zeros_like(&d);
                    for (dst, src) in adj
                        .values
                        .as_mut_slice()
                        .iter_mut()
                        .zip(d.values.as_slice())
                    {
                        *dst = 2.0 * src;
                    }
                    for k in 0..2 {
                        for (dst, src) in adj.jac[k]
                            .as_mut_slice()
                            .iter_mut()
                            .zip(d.jac[k].as_slice())
                        {
                            *dst = 2.0 * src;
                        }
                    }
                    ws.set_adjoints(lane, &adj);
                    lane_derivs.push(d.clone());
                }
                let mut bgrads = packed.zero_gradients();
                packed.backward_batched(&mut ws, &mut bgrads);
                let mut flat: Vec<f64> = Vec::new();
                for lane in 0..3 {
                    let mut g = nets[lane].zero_gradients();
                    bgrads.extract_to(lane, &mut g);
                    batched_flat(&lane_derivs[lane], &g.flat(), &mut flat);
                }
                flat
            })
        });
        assert_all_bits_equal(&runs, &format!("batched mlp [{tier:?}]"));
        // Per-instance solo reference, same tier: the batched run must
        // reproduce each solo network bit for bit.
        let solo: Vec<f64> = simd::with_tier(tier, || {
            let mut flat = Vec::new();
            for (net, x) in nets.iter().zip(&xs) {
                let (d, cache) = net.forward_with_derivs(x, &[0, 1]);
                let mut adj = BatchDerivatives::zeros_like(&d);
                for (dst, src) in adj
                    .values
                    .as_mut_slice()
                    .iter_mut()
                    .zip(d.values.as_slice())
                {
                    *dst = 2.0 * src;
                }
                for k in 0..2 {
                    for (dst, src) in adj.jac[k]
                        .as_mut_slice()
                        .iter_mut()
                        .zip(d.jac[k].as_slice())
                    {
                        *dst = 2.0 * src;
                    }
                }
                let g = net.backward(&cache, &adj);
                batched_flat(&d, &g.flat(), &mut flat);
            }
            flat
        });
        assert_all_bits_equal(
            &[runs[0].clone(), solo],
            &format!("batched vs solo [{tier:?}]"),
        );
    }
}

/// Brute and HNSW kNN graphs (edges, weights) and the approximate
/// effective resistances are bit-identical for every thread count.
#[test]
fn knn_graph_and_er_bit_identical_across_thread_counts() {
    let mut rng = Rng64::new(902);
    let pts = PointCloud::uniform_box(600, 2, 0.0, 1.0, &mut rng);
    for strategy in [KnnStrategy::Brute, KnnStrategy::Hnsw] {
        for &tier in simd::available_tiers() {
            let runs = simd::with_tier(tier, || {
                run_per_thread_count(|| {
                    let g = build_knn_graph(
                        &pts,
                        &KnnConfig {
                            k: 6,
                            strategy,
                            ..KnnConfig::default()
                        },
                    );
                    let er = approx_edge_resistances(&g, &ApproxErOptions::default());
                    let mut flat: Vec<f64> = Vec::new();
                    for ((u, v, w), r) in g.edges().zip(&er) {
                        flat.push(u as f64);
                        flat.push(v as f64);
                        flat.push(w);
                        flat.push(*r);
                    }
                    flat
                })
            });
            assert_all_bits_equal(&runs, &format!("knn/{strategy:?} [{tier:?}]"));
        }
    }
}

/// A full SGM refresh + epoch draw — probe selection, pooled loss
/// probes, score mapping, epoch assembly — yields identical epochs for
/// every thread count.
#[test]
fn sgm_sampler_epoch_bit_identical_across_thread_counts() {
    let problem = Problem::new(Pde::Poisson(PoissonConfig {
        forcing: |p: &[f64]| if p[0] < 0.5 { 50.0 } else { 0.1 },
    }));
    let mut rng = Rng64::new(903);
    let interior = Cavity::default().sample_interior(500, FillStrategy::Halton, &mut rng);
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
        boundary_targets: Matrix::zeros(1, 1),
    };
    let net = Mlp::new(
        &MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 12,
            hidden_layers: 2,
            activation: Activation::Tanh,
            fourier: None,
        },
        &mut Rng64::new(904),
    );
    for &tier in simd::available_tiers() {
        let runs = simd::with_tier(tier, || {
            run_per_thread_count(|| {
                let mut s = SgmSampler::new(
                    &data.interior,
                    SgmConfig {
                        k: 6,
                        min_clusters: 8,
                        max_cluster_frac: 0.2,
                        tau_e: 1,
                        tau_g: 0,
                        background: false,
                        ..SgmConfig::default()
                    },
                );
                let model = PinnModel::new(&problem, &data);
                let probe = Probe::new(&net, &model);
                let mut rng = Rng64::new(905);
                let mut flat: Vec<f64> = Vec::new();
                for iter in 0..3 {
                    s.refresh(iter, &probe, &mut rng);
                    for i in next_batch(&mut s, 200, &mut rng) {
                        flat.push(i as f64);
                    }
                }
                flat
            })
        });
        assert_all_bits_equal(&runs, &format!("sgm epoch [{tier:?}]"));
    }
}

/// A full SGM training run killed at iteration 23 and resumed from its
/// JSON run state reproduces the uninterrupted run bit-for-bit — same
/// history, same final weights — for every thread count. The synthetic
/// clock makes the recorded timestamps part of the contract too.
///
/// Pinned to the host's detected SIMD tier (not the full tier matrix):
/// the run is the most expensive case here, and checkpoint/resume is
/// tier-oblivious — the lighter tests above already cover both tiers.
#[test]
fn training_resume_bit_identical_across_thread_counts() {
    let problem = Problem::new(Pde::Poisson(PoissonConfig {
        forcing: |p: &[f64]| if p[0] < 0.5 { 50.0 } else { 0.1 },
    }));
    let mut rng = Rng64::new(906);
    let interior = Cavity::default().sample_interior(400, FillStrategy::Halton, &mut rng);
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
        boundary_targets: Matrix::zeros(1, 1),
    };
    let net_cfg = MlpConfig {
        input_dim: 2,
        output_dim: 1,
        hidden_width: 10,
        hidden_layers: 2,
        activation: Activation::Tanh,
        fourier: None,
    };
    let mk_net = || Mlp::new(&net_cfg, &mut Rng64::new(907));
    let mk_sampler = |interior: &PointCloud| {
        SgmSampler::new(
            interior,
            SgmConfig {
                k: 6,
                min_clusters: 8,
                max_cluster_frac: 0.2,
                tau_e: 10,
                tau_g: 0,
                background: false,
                ..SgmConfig::default()
            },
        )
    };
    let opts = TrainOptions {
        iterations: 60,
        batch_interior: 48,
        batch_boundary: 1,
        adam: AdamConfig::default(),
        seed: 908,
        record_every: 10,
        max_seconds: None,
        synthetic_dt: Some(1.0 / 1024.0),
    };
    let runs = simd::with_tier(simd::detected_tier(), || {
        run_per_thread_count(|| {
            let model = PinnModel::new(&problem, &data);
            // Uninterrupted reference run.
            let mut net_full = mk_net();
            let full = {
                let mut sampler = mk_sampler(&data.interior);
                let mut tr = Trainer {
                    net: &mut net_full,
                    model: &model,
                };
                tr.run(&mut sampler, None, &opts)
            };
            // Kill at iteration 23, round-trip the state through JSON text,
            // resume with freshly constructed net + sampler.
            let state = {
                let mut net = mk_net();
                let mut sampler = mk_sampler(&data.interior);
                let mut tr = Trainer {
                    net: &mut net,
                    model: &model,
                };
                tr.run_until(&mut sampler, None, &opts, 23)
            };
            let state =
                RunState::from_json(&state.to_json().expect("serialise")).expect("parse run state");
            let mut net_res = mk_net();
            let resumed = {
                let mut sampler = mk_sampler(&data.interior);
                let mut tr = Trainer {
                    net: &mut net_res,
                    model: &model,
                };
                tr.resume(&mut sampler, None, &opts, &state)
                    .expect("resume")
            };
            assert_eq!(full.history.len(), resumed.history.len());
            for (a, b) in full.history.iter().zip(&resumed.history) {
                assert_eq!(a.iteration, b.iteration);
                assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
                assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
            }
            let pf = net_full.params();
            let pr = net_res.params();
            for (a, b) in pf.iter().zip(&pr) {
                assert_eq!(a.to_bits(), b.to_bits(), "resumed weights diverged");
            }
            let mut flat: Vec<f64> = Vec::new();
            for r in &full.history {
                flat.push(r.iteration as f64);
                flat.push(r.seconds);
                flat.push(r.train_loss);
            }
            flat.extend_from_slice(&pf);
            flat
        })
    });
    assert_all_bits_equal(&runs, "resumed training");
}

/// The point-set-adaptive rivals — RAD, RAR-D and DMIS — train the
/// quickstart Poisson cavity *through their adapt stage* (point-set
/// mutations fire at iterations 10 and 20) bit-identically for every
/// thread count, and a run killed at iteration 23 — after both
/// mutations — resumes from its JSON run state bit-for-bit against
/// fresh net + sampler instances. This is the contract that makes
/// moving/growing the collocation cloud checkpoint-safe: the state
/// must carry the mutated coordinates (format v2) and every sampler's
/// internal state must be a pure function of what it persists.
///
/// Pinned to the detected SIMD tier for the same reason as the SGM
/// resume test above.
#[test]
fn adaptive_rivals_resume_bit_identical_across_thread_counts() {
    let problem = Problem::new(Pde::Poisson(PoissonConfig {
        forcing: |p: &[f64]| if p[0] < 0.5 { 50.0 } else { 0.1 },
    }));
    let mut rng = Rng64::new(909);
    let interior = Cavity::default().sample_interior(300, FillStrategy::Halton, &mut rng);
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
        boundary_targets: Matrix::zeros(1, 1),
    };
    let n = data.interior.len();
    let net_cfg = MlpConfig {
        input_dim: 2,
        output_dim: 1,
        hidden_width: 10,
        hidden_layers: 2,
        activation: Activation::Tanh,
        fourier: None,
    };
    let mk_net = || Mlp::new(&net_cfg, &mut Rng64::new(910));
    let opts = TrainOptions {
        iterations: 40,
        batch_interior: 48,
        batch_boundary: 1,
        adam: AdamConfig::default(),
        seed: 911,
        record_every: 10,
        max_seconds: None,
        synthetic_dt: Some(1.0 / 1024.0),
    };
    type MkSampler = Box<dyn Fn() -> Box<dyn Sampler>>;
    let rivals: Vec<(&str, MkSampler)> = vec![
        (
            "rad",
            Box::new(move || {
                Box::new(RadSampler::new(
                    n,
                    RadConfig {
                        tau: 10,
                        pool_size: 512,
                        ..RadConfig::default()
                    },
                ))
            }),
        ),
        (
            "rar_d",
            Box::new(move || {
                Box::new(RarDSampler::new(
                    n,
                    RarDConfig {
                        tau: 10,
                        candidates: 128,
                        add_per_adapt: 16,
                        ..RarDConfig::default()
                    },
                ))
            }),
        ),
        (
            "dmis",
            Box::new(move || {
                Box::new(DmisSampler::new(
                    n,
                    DmisConfig {
                        tau: 10,
                        grid: 8,
                        ..DmisConfig::default()
                    },
                ))
            }),
        ),
    ];
    for (name, mk_sampler) in &rivals {
        let runs = simd::with_tier(simd::detected_tier(), || {
            run_per_thread_count(|| {
                let model = PinnModel::new(&problem, &data);
                // Uninterrupted reference run.
                let mut net_full = mk_net();
                let full = {
                    let mut sampler = mk_sampler();
                    let mut tr = Trainer {
                        net: &mut net_full,
                        model: &model,
                    };
                    tr.run(sampler.as_mut(), None, &opts)
                };
                // Kill at iteration 23 — after both point-set mutations.
                let state = {
                    let mut net = mk_net();
                    let mut sampler = mk_sampler();
                    let mut tr = Trainer {
                        net: &mut net,
                        model: &model,
                    };
                    tr.run_until(sampler.as_mut(), None, &opts, 23)
                };
                assert_eq!(state.version, 2, "{name}: adaptive state carries points");
                let pts = state.points.as_ref().expect("points checkpoint present");
                assert_eq!(pts.dim, 2, "{name}: checkpointed dim");
                assert!(
                    pts.epoch >= 2,
                    "{name}: two adapts should have bumped the mutation epoch, got {}",
                    pts.epoch
                );
                let state = RunState::from_json(&state.to_json().expect("serialise"))
                    .expect("parse run state");
                let mut net_res = mk_net();
                let resumed = {
                    let mut sampler = mk_sampler();
                    let mut tr = Trainer {
                        net: &mut net_res,
                        model: &model,
                    };
                    tr.resume(sampler.as_mut(), None, &opts, &state)
                        .expect("resume")
                };
                assert_eq!(full.history.len(), resumed.history.len(), "{name}");
                for (a, b) in full.history.iter().zip(&resumed.history) {
                    assert_eq!(a.iteration, b.iteration, "{name}");
                    assert_eq!(a.seconds.to_bits(), b.seconds.to_bits(), "{name}");
                    assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits(), "{name}");
                }
                let pf = net_full.params();
                let pr = net_res.params();
                for (a, b) in pf.iter().zip(&pr) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{name}: resumed weights diverged");
                }
                let mut flat: Vec<f64> = Vec::new();
                for r in &full.history {
                    flat.push(r.iteration as f64);
                    flat.push(r.seconds);
                    flat.push(r.train_loss);
                }
                flat.extend_from_slice(&pf);
                flat
            })
        });
        assert_all_bits_equal(&runs, &format!("{name} adaptive resume"));
    }
}
