//! Invariants of Algorithm 1 (the SGM-PINN sampling loop) checked across
//! the crate boundary with a real problem, network and trainer.

use sgm_core::score::{assemble_epoch, combine_scores, map_scores, ScoreMapping};
use sgm_core::{MisConfig, MisSampler, SgmConfig, SgmSampler};
use sgm_graph::points::PointCloud;
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_physics::geometry::{Cavity, FillStrategy};
use sgm_physics::pde::{Pde, PoissonConfig};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::PinnModel;
use sgm_train::{Probe, Sampler};

/// Draw one batch through the no-allocation `fill_batch` entry point.
fn next_batch(s: &mut dyn Sampler, batch: usize, rng: &mut Rng64) -> Vec<usize> {
    let mut out = Vec::new();
    s.fill_batch(batch, &mut out, rng);
    out
}

fn setup(n: usize, seed: u64) -> (Mlp, Problem, TrainSet) {
    let problem = Problem::new(Pde::Poisson(PoissonConfig {
        forcing: |p: &[f64]| 10.0 * (3.0 * p[0]).sin() * (3.0 * p[1]).cos(),
    }));
    let mut rng = Rng64::new(seed);
    let interior = Cavity::default().sample_interior(n, FillStrategy::Halton, &mut rng);
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
        boundary_targets: Matrix::zeros(1, 1),
    };
    let net = Mlp::new(
        &MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 8,
            hidden_layers: 1,
            activation: Activation::Tanh,
            fourier: None,
        },
        &mut Rng64::new(seed + 1),
    );
    (net, problem, data)
}

fn cfg() -> SgmConfig {
    SgmConfig {
        k: 6,
        min_clusters: 10,
        max_cluster_frac: 0.2,
        tau_e: 50,
        tau_g: 0,
        background: false,
        ..SgmConfig::default()
    }
}

/// Line 5 of Algorithm 1: the probe set holds ~r·S_i points per cluster.
#[test]
fn probe_budget_matches_r() {
    let (net, prob, data) = setup(500, 1);
    let mut s = SgmSampler::new(&data.interior, cfg());
    let model = PinnModel::new(&prob, &data);
    let probe = Probe::new(&net, &model);
    let mut rng = Rng64::new(2);
    s.refresh(0, &probe, &mut rng);
    let expected: usize = s
        .clustering()
        .sizes()
        .iter()
        .map(|&sz| ((sz as f64 * 0.15).ceil() as usize).clamp(1, sz))
        .sum();
    assert_eq!(s.stats().probe_evals, expected);
}

/// Same seed ⇒ identical batch streams (bit-reproducible experiments).
#[test]
fn sampling_is_deterministic() {
    let (net, prob, data) = setup(300, 3);
    let mk = || {
        let mut s = SgmSampler::new(&data.interior, cfg());
        let model = PinnModel::new(&prob, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(7);
        s.refresh(0, &probe, &mut rng);
        (0..5)
            .flat_map(|_| next_batch(&mut s, 32, &mut rng))
            .collect::<Vec<_>>()
    };
    assert_eq!(mk(), mk());
}

/// The floor-one rule means a full epoch pass touches every cluster; with
/// it disabled and extreme score spread, some clusters may receive zero
/// samples (the ablation scenario behind "forgetting").
#[test]
fn floor_one_contrast() {
    let clusters = vec![vec![0u32, 1], vec![2, 3], vec![4, 5]];
    let sizes = [2usize, 2, 2];
    let scores = [0.0, 0.0, 100.0];
    let with_floor = map_scores(
        &scores,
        &sizes,
        ScoreMapping::Linear { lo: 0.0, hi: 1.0 },
        true,
    );
    let without = map_scores(
        &scores,
        &sizes,
        ScoreMapping::Linear { lo: 0.0, hi: 1.0 },
        false,
    );
    assert!(with_floor.counts.iter().all(|&c| c >= 1));
    assert_eq!(without.counts[0], 0);
    let mut rng = Rng64::new(1);
    let epoch = assemble_epoch(&clusters, &with_floor.counts, &mut rng);
    for cl in &clusters {
        assert!(epoch.iter().any(|i| cl.contains(&(*i as u32))));
    }
}

/// The combined score is scale-invariant in each component (normalised
/// before fusion, paper §3.5).
#[test]
fn score_fusion_scale_invariant() {
    let a = combine_scores(&[1.0, 2.0, 4.0], &[0.5, 0.25, 1.0], 1.0);
    let b = combine_scores(&[10.0, 20.0, 40.0], &[5.0, 2.5, 10.0], 1.0);
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-12);
    }
}

/// MIS refresh scores the whole dataset (the overhead the paper contrasts
/// with SGM's r%-per-cluster probes).
#[test]
fn mis_scores_full_dataset_sgm_scores_fraction() {
    let (net, prob, data) = setup(400, 5);
    let model = PinnModel::new(&prob, &data);
    let probe = Probe::new(&net, &model);
    let mut rng = Rng64::new(6);
    let mut mis = MisSampler::new(400, MisConfig::default());
    mis.refresh(0, &probe, &mut rng);
    assert_eq!(mis.probe_evals(), 400);

    let mut sgm = SgmSampler::new(&data.interior, cfg());
    sgm.refresh(0, &probe, &mut rng);
    let sgm_evals = sgm.stats().probe_evals;
    assert!(
        sgm_evals < 400 / 2,
        "SGM probed {sgm_evals} of 400 — should be far below N"
    );
}

/// Batches never index out of range, for all samplers, across refreshes.
#[test]
fn batches_in_range_across_lifecycle() {
    let (net, prob, data) = setup(250, 8);
    let model = PinnModel::new(&prob, &data);
    let probe = Probe::new(&net, &model);
    let mut rng = Rng64::new(9);
    let mut sgm = SgmSampler::new(&data.interior, cfg());
    let mut mis = MisSampler::new(
        250,
        MisConfig {
            tau_e: 40,
            ..MisConfig::default()
        },
    );
    for iter in 0..120 {
        sgm.refresh(iter, &probe, &mut rng);
        mis.refresh(iter, &probe, &mut rng);
        for i in next_batch(&mut sgm, 17, &mut rng) {
            assert!(i < 250);
        }
        for i in next_batch(&mut mis, 17, &mut rng) {
            assert!(i < 250);
        }
    }
    assert!(sgm.stats().refreshes >= 2);
}
