//! Steady-state allocation contract of the staged training engine: after
//! a short warmup, an iteration of the hot path (draw → gather →
//! loss/grad → step) performs **zero** heap allocations when running
//! serially. Every buffer is owned by the per-run workspaces, so the
//! only events allowed to allocate are workspace construction, sampler
//! refreshes and recording — none of which fire in the measured window.
//!
//! The counting `#[global_allocator]` makes this a hard test, not a
//! heuristic: a single stray `Vec` or `Matrix` in the loop fails it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use sgm_graph::points::PointCloud;
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_nn::optimizer::AdamConfig;
use sgm_par::Parallelism;
use sgm_physics::geometry::{Cavity, FillStrategy};
use sgm_physics::pde::{Pde, PoissonConfig};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::PinnModel;
use sgm_train::{Hook, ObsHook, Stage, TrainOptions, Trainer, UniformSampler};

/// Forwards to the system allocator while counting every `alloc` and
/// `realloc` call (deallocations are free and not counted).
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Records the cumulative allocation count at the end of every
/// iteration. The vector is pre-reserved so the pushes themselves never
/// allocate inside the measured window.
struct AllocCounter {
    counts: Vec<usize>,
    record_stages: usize,
}

impl Hook for AllocCounter {
    fn on_stage(&mut self, _iter: usize, stage: Stage, _dt: std::time::Duration) {
        if stage == Stage::Record {
            self.record_stages += 1;
        }
    }

    fn on_iteration(&mut self, _iter: usize) {
        self.counts.push(ALLOCS.load(Ordering::Relaxed));
    }
}

#[test]
fn steady_state_iterations_do_not_allocate() {
    const ITERS: usize = 40;
    const WARMUP: usize = 5;

    let problem = Problem::new(Pde::Poisson(PoissonConfig {
        forcing: |p: &[f64]| (3.0 * p[0]).sin() * (2.0 * p[1]).cos(),
    }));
    let mut rng = Rng64::new(31);
    let interior = Cavity::default().sample_interior(600, FillStrategy::Halton, &mut rng);
    let (boundary, boundary_targets) = Cavity::default().sample_boundary(16, 4, &mut rng);
    let data = TrainSet {
        interior,
        boundary,
        boundary_targets,
    };
    let mut net = Mlp::new(
        &MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 16,
            hidden_layers: 2,
            activation: Activation::Tanh,
            fourier: None,
        },
        &mut Rng64::new(32),
    );
    let model = PinnModel::new(&problem, &data);
    let mut sampler = UniformSampler::new(data.interior.len());
    let opts = TrainOptions {
        iterations: ITERS,
        batch_interior: 64,
        batch_boundary: 16,
        adam: AdamConfig::default(),
        seed: 33,
        // Larger than ITERS: only the final iteration records, which is
        // outside the measured window (its record follows on_iteration).
        record_every: 10 * ITERS,
        max_seconds: None,
        synthetic_dt: None,
    };
    let mut hook = AllocCounter {
        counts: Vec::with_capacity(ITERS + 1),
        record_stages: 0,
    };
    // The metrics-recording hook rides along: its registry writes are
    // relaxed atomics into static shards, so the zero-allocation
    // assertions below hold with instrumentation enabled (registration
    // itself happens in the warmup window).
    let mut obs = ObsHook::new();
    sgm_par::with_parallelism(Parallelism::Serial, || {
        let mut tr = Trainer {
            net: &mut net,
            model: &model,
        };
        let mut hooks: [&mut dyn Hook; 2] = [&mut obs, &mut hook];
        tr.run_hooked(&mut sampler, None, &opts, &mut hooks);
    });
    assert_eq!(hook.counts.len(), ITERS);
    // Iteration 0 records (`0 % record_every == 0`) and so does the final
    // one; both are outside the measured window.
    assert_eq!(hook.record_stages, 2, "records at iteration 0 and the end");
    // Every iteration after warmup (the final, recording one excluded —
    // its Record stage fires after on_iteration, so it cannot contaminate
    // earlier windows) must add exactly zero allocations.
    for i in WARMUP..ITERS - 1 {
        let delta = hook.counts[i] - hook.counts[i - 1];
        assert_eq!(
            delta, 0,
            "iteration {i} allocated {delta} times in steady state"
        );
    }
}

/// Direct contract on the `sgm-obs` registry: once a metric is
/// registered (first record), every further counter add and histogram
/// record is allocation-free — the property the engine test above
/// relies on.
#[test]
fn metric_records_do_not_allocate_in_steady_state() {
    static C: sgm_obs::Counter = sgm_obs::Counter::new("test_zero_alloc_counter");
    static G: sgm_obs::Gauge = sgm_obs::Gauge::new("test_zero_alloc_gauge");
    static H: sgm_obs::Histogram = sgm_obs::Histogram::new("test_zero_alloc_hist");
    // Warmup: the first record of each metric pushes one registry entry
    // (allowed to allocate, happens once per process).
    C.inc();
    G.set(1.0);
    H.record(1);
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..1000u64 {
        C.add(i);
        G.add(0.5);
        H.record(i * 37);
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(delta, 0, "steady-state metric records allocated {delta}x");
    assert_eq!(C.value(), 1 + (0..1000).sum::<u64>());
    assert_eq!(H.snapshot().count, 1001);
}

/// The same engine loop re-run with a fresh workspace produces identical
/// weights: the allocation-free path is not a different numerical path.
#[test]
fn zero_alloc_path_is_reproducible() {
    let problem = Problem::new(Pde::Poisson(PoissonConfig {
        forcing: |p: &[f64]| (3.0 * p[0]).sin(),
    }));
    let mut rng = Rng64::new(41);
    let interior = Cavity::default().sample_interior(200, FillStrategy::Halton, &mut rng);
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
        boundary_targets: Matrix::zeros(1, 1),
    };
    let cfg = MlpConfig {
        input_dim: 2,
        output_dim: 1,
        hidden_width: 8,
        hidden_layers: 1,
        activation: Activation::Tanh,
        fourier: None,
    };
    let opts = TrainOptions {
        iterations: 25,
        batch_interior: 32,
        batch_boundary: 1,
        adam: AdamConfig::default(),
        seed: 42,
        record_every: 5,
        max_seconds: None,
        synthetic_dt: Some(1.0 / 1024.0),
    };
    let model = PinnModel::new(&problem, &data);
    let run = || {
        let mut net = Mlp::new(&cfg, &mut Rng64::new(43));
        let mut sampler = UniformSampler::new(data.interior.len());
        let mut tr = Trainer {
            net: &mut net,
            model: &model,
        };
        let result = tr.run(&mut sampler, None, &opts);
        (net.params(), result)
    };
    let (pa, ra) = run();
    let (pb, rb) = run();
    assert_eq!(ra.history.len(), rb.history.len());
    for (x, y) in pa.iter().zip(&pb) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
