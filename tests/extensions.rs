//! Integration tests of the extension systems: spectral sparsification
//! feeding LRD, tiled parallel rebuilds feeding the sampler, RAR-vs-SGM
//! overhead accounting, and model checkpointing end-to-end.

use sgm_core::{RarConfig, RarSampler, SgmConfig, SgmSampler};
use sgm_graph::knn::{build_knn_graph, KnnConfig, KnnStrategy};
use sgm_graph::lrd::{decompose, LrdConfig};
use sgm_graph::partition::{parallel_decompose, GridPartitionConfig};
use sgm_graph::points::PointCloud;
use sgm_graph::sparsify::{quadratic_form_deviation, sparsify, SparsifyOptions};
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::checkpoint::Checkpoint;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_physics::geometry::{Cavity, FillStrategy};
use sgm_physics::pde::{Pde, PoissonConfig};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::PinnModel;
use sgm_train::{Probe, Sampler};

fn cloud(n: usize, seed: u64) -> PointCloud {
    let mut rng = Rng64::new(seed);
    PointCloud::uniform_box(n, 2, 0.0, 1.0, &mut rng)
}

/// Sparsify a dense PGM, then cluster the sparsifier: the clustering must
/// stay valid and the graph spectrally close.
#[test]
fn sparsified_pgm_still_clusters() {
    let pts = cloud(400, 1);
    let dense = build_knn_graph(
        &pts,
        &KnnConfig {
            k: 24,
            strategy: KnnStrategy::Grid,
            ..KnnConfig::default()
        },
    );
    let sparse = sparsify(
        &dense,
        &SparsifyOptions {
            target_edges: dense.num_edges() / 2,
            ..SparsifyOptions::default()
        },
    );
    assert!(sparse.num_edges() < dense.num_edges());
    assert!(sparse.is_connected());
    let dev = quadratic_form_deviation(&dense, &sparse, 10, 2);
    assert!(dev < 1.0, "spectral deviation {dev}");
    let clustering = decompose(
        &sparse,
        &LrdConfig {
            min_clusters: 16,
            ..LrdConfig::default()
        },
    );
    assert_eq!(clustering.num_nodes(), 400);
    assert!(clustering.num_clusters() >= 16);
}

/// The tiled parallel decomposition yields clusters usable by the
/// score→epoch pipeline (every node covered, compact labels).
#[test]
fn parallel_decomposition_feeds_epoch_assembly() {
    use sgm_core::score::{assemble_epoch, map_scores, ScoreMapping};
    let pts = cloud(600, 3);
    let clustering = parallel_decompose(
        &pts,
        &GridPartitionConfig {
            tiles_per_axis: 3,
            threads: 2,
            knn: KnnConfig {
                k: 6,
                strategy: KnnStrategy::Grid,
                ..KnnConfig::default()
            },
            lrd: LrdConfig {
                min_clusters: 4,
                ..LrdConfig::default()
            },
        },
    );
    let sizes = clustering.sizes();
    let scores: Vec<f64> = (0..sizes.len()).map(|i| i as f64).collect();
    let plan = map_scores(&scores, &sizes, ScoreMapping::default(), true);
    let mut rng = Rng64::new(4);
    let epoch = assemble_epoch(clustering.clusters(), &plan.counts, &mut rng);
    assert!(!epoch.is_empty());
    assert!(epoch.iter().all(|&i| i < 600));
}

/// RAR scores only candidates; SGM scores r% of every cluster; both are
/// far below MIS's full-N — and the accounting reflects it.
#[test]
fn overhead_ordering_rar_sgm() {
    let problem = Problem::new(Pde::Poisson(PoissonConfig {
        forcing: |p: &[f64]| (4.0 * p[0]).sin() + p[1],
    }));
    let mut rng = Rng64::new(5);
    let interior = Cavity::default().sample_interior(2000, FillStrategy::Halton, &mut rng);
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
        boundary_targets: Matrix::zeros(1, 1),
    };
    let net = Mlp::new(
        &MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 8,
            hidden_layers: 1,
            activation: Activation::Tanh,
            fourier: None,
        },
        &mut Rng64::new(6),
    );
    let model = PinnModel::new(&problem, &data);
    let probe = Probe::new(&net, &model);
    let mut sgm = SgmSampler::new(
        &data.interior,
        SgmConfig {
            tau_e: 10,
            tau_g: 0,
            background: false,
            min_clusters: 16,
            ..SgmConfig::default()
        },
    );
    let mut rar = RarSampler::new(
        2000,
        RarConfig {
            tau: 10,
            candidates: 200,
            add_per_refresh: 20,
            ..RarConfig::default()
        },
        &mut rng,
    );
    for iter in 0..30 {
        sgm.refresh(iter, &probe, &mut rng);
        rar.refresh(iter, &probe, &mut rng);
    }
    // 3 refreshes each: SGM ≈ 3 · 0.15·N = 900; RAR ≈ 2 · 200 = 400
    // (RAR skips iter 0); both ≪ MIS's 3 · 2000 = 6000.
    assert!(
        sgm.stats().probe_evals < 1200,
        "sgm {}",
        sgm.stats().probe_evals
    );
    assert!(rar.probe_evals() <= 600, "rar {}", rar.probe_evals());
}

/// Checkpoint a trained model and verify the restored surrogate produces
/// identical predictions — the "train once, ship the surrogate" flow.
#[test]
fn checkpoint_roundtrip_preserves_predictions() {
    let mut rng = Rng64::new(7);
    let net = Mlp::new(
        &MlpConfig {
            input_dim: 2,
            output_dim: 3,
            hidden_width: 14,
            hidden_layers: 2,
            activation: Activation::SiLu,
            fourier: Some(sgm_nn::mlp::FourierConfig {
                num_features: 4,
                sigma: 0.8,
            }),
        },
        &mut rng,
    );
    let json = Checkpoint::capture(&net).to_json().expect("serialise");
    let restored = Checkpoint::from_json(&json)
        .expect("parse")
        .restore()
        .expect("restore");
    let x = Matrix::gaussian(8, 2, &mut rng);
    let a = net.forward(&x);
    let b = restored.forward(&x);
    assert_eq!(a.as_slice(), b.as_slice());
}
