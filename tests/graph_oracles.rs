//! Oracle tests for the graph substrate: approximate algorithms (grid /
//! HNSW kNN, smoothed-projection effective resistance, LRD) checked
//! against their exact counterparts on randomised inputs.

use sgm_graph::graph::Graph;
use sgm_graph::knn::{brute_knn, build_knn_graph, grid_knn, recall, KnnConfig, KnnStrategy};
use sgm_graph::lrd::{decompose, ErSource, LrdConfig};
use sgm_graph::metrics::cut_fraction;
use sgm_graph::points::PointCloud;
use sgm_graph::resistance::{
    approx_edge_resistances, exact_edge_resistances, exact_pair_resistance, rank_correlation,
    ApproxErOptions,
};
use sgm_linalg::rng::Rng64;

fn random_cloud(n: usize, dim: usize, seed: u64) -> PointCloud {
    let mut rng = Rng64::new(seed);
    PointCloud::uniform_box(n, dim, 0.0, 1.0, &mut rng)
}

// The four oracle properties below run as deterministic seeded sweeps
// (16 cases each, mirroring the original proptest config).

/// Grid kNN is exact: recall 1.0 against brute force.
#[test]
fn grid_knn_is_exact() {
    for case in 0u64..16 {
        let mut rng = Rng64::new(0x61d ^ case);
        let seed = rng.below(500) as u64;
        let n = 50 + rng.below(200);
        let k = 1 + rng.below(7);
        let cloud = random_cloud(n, 2, seed);
        let exact = brute_knn(&cloud, k);
        let grid = grid_knn(&cloud, k);
        let r = recall(&grid, &exact);
        assert!(r > 0.999, "case={case} n={n} k={k} recall {r}");
    }
}

/// On structured graphs (two communities joined by bridges) the
/// approximate ER must rank every bridge edge above the bulk — the
/// property LRD depends on (never contract across bottlenecks). On
/// *unstructured* clouds exact ERs are nearly uniform and rank noise
/// is expected, so the test constructs structure explicitly.
#[test]
fn approx_er_ranks_bridges_highest() {
    for case in 0u64..16 {
        let mut case_rng = Rng64::new(0xb81d ^ case);
        let seed = case_rng.below(200) as u64;
        let n_blob = 20 + case_rng.below(40);
        let mut rng = Rng64::new(seed);
        let mut flat = Vec::new();
        for _ in 0..n_blob {
            flat.extend_from_slice(&[rng.uniform(), rng.uniform()]);
            flat.extend_from_slice(&[8.0 + rng.uniform(), rng.uniform()]);
        }
        let cloud = PointCloud::from_flat(2, flat);
        let g = build_knn_graph(
            &cloud,
            &KnnConfig {
                k: 5,
                strategy: KnnStrategy::Brute,
                ..KnnConfig::default()
            },
        );
        // The kNN graph of two distant blobs has no cross edges; add two
        // explicit bridges.
        let mut edges: Vec<(usize, usize, f64)> = g.edges().collect();
        edges.push((0, 1, 1.0));
        edges.push((2, 3, 1.0));
        let g = Graph::from_edges(g.num_nodes(), &edges);
        let approx = approx_edge_resistances(
            &g,
            &ApproxErOptions {
                seed: seed ^ 0xE5,
                ..ApproxErOptions::default()
            },
        );
        // Bridge edges are node pairs 0-1 and 2-3. LRD contracts edges in
        // ascending ER order, so what matters is that bridges land in the
        // top tail of the estimate — never among the early contractions.
        let mut sorted = approx.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q90 = sorted[(sorted.len() as f64 * 0.9) as usize];
        let mut bridges_found = 0;
        for ((u, v, _), &r) in g.edges().zip(&approx) {
            if (u, v) == (0, 1) || (u, v) == (2, 3) {
                bridges_found += 1;
                assert!(
                    r >= q90,
                    "case={case} bridge ER {r} below the 90th percentile {q90}"
                );
            }
        }
        assert_eq!(bridges_found, 2, "case={case}");
        // And the exact/approx orderings correlate positively overall.
        let exact = exact_edge_resistances(&g);
        let rho = rank_correlation(&exact, &approx);
        assert!(rho > 0.0, "case={case} rank correlation {rho}");
    }
}

/// Foster's theorem holds for the calibrated approximate resistances.
#[test]
fn approx_er_foster_calibrated() {
    for case in 0u64..16 {
        let mut case_rng = Rng64::new(0xf05 ^ case);
        let seed = case_rng.below(200) as u64;
        let n = 30 + case_rng.below(90);
        let cloud = random_cloud(n, 2, seed);
        let g = build_knn_graph(
            &cloud,
            &KnnConfig {
                k: 4,
                strategy: KnnStrategy::Brute,
                ..KnnConfig::default()
            },
        );
        let approx = approx_edge_resistances(&g, &ApproxErOptions::default());
        let (_, comps) = g.components();
        let target = (g.num_nodes() - comps) as f64;
        let sum: f64 = g.edges().zip(&approx).map(|((_, _, w), r)| w * r).sum();
        assert!(
            (sum - target).abs() < 1e-6 * target.max(1.0),
            "case={case} sum {sum} vs {target}"
        );
    }
}

/// LRD produces a valid partition whose cut stays bounded.
#[test]
fn lrd_partition_is_valid() {
    for case in 0u64..16 {
        let mut case_rng = Rng64::new(0x12d ^ case);
        let seed = case_rng.below(200) as u64;
        let level = 1 + case_rng.below(7);
        let cloud = random_cloud(150, 2, seed);
        let g = build_knn_graph(
            &cloud,
            &KnnConfig {
                k: 6,
                strategy: KnnStrategy::Grid,
                ..KnnConfig::default()
            },
        );
        let c = decompose(
            &g,
            &LrdConfig {
                level,
                er: ErSource::Approx(ApproxErOptions {
                    seed,
                    ..ApproxErOptions::default()
                }),
                min_clusters: 4,
                max_cluster_frac: 0.2,
                budget_scale: 1.0,
            },
        );
        // Partition covers everything exactly once.
        assert_eq!(c.num_nodes(), 150, "case={case}");
        let total: usize = c.sizes().iter().sum();
        assert_eq!(total, 150, "case={case}");
        // The LRD theorem: only a bounded fraction of edges are cut — we
        // check the trivial upper bound (< 100%) plus sanity that the
        // partition is non-degenerate.
        let f = cut_fraction(&g, &c);
        assert!((0.0..=1.0).contains(&f), "case={case}");
        assert!(c.num_clusters() >= 4, "case={case}");
    }
}

/// Triangle inequality of effective resistance (it is a metric).
#[test]
fn effective_resistance_is_a_metric() {
    let cloud = random_cloud(30, 2, 9);
    let g = build_knn_graph(
        &cloud,
        &KnnConfig {
            k: 4,
            strategy: KnnStrategy::Brute,
            ..KnnConfig::default()
        },
    );
    // Use a connected component only.
    let (labels, _) = g.components();
    let comp0: Vec<usize> = (0..30).filter(|&i| labels[i] == labels[0]).collect();
    if comp0.len() < 3 {
        return;
    }
    let (a, b, c) = (comp0[0], comp0[1], comp0[2]);
    let rab = exact_pair_resistance(&g, a, b);
    let rbc = exact_pair_resistance(&g, b, c);
    let rac = exact_pair_resistance(&g, a, c);
    assert!(rac <= rab + rbc + 1e-9, "{rac} > {rab} + {rbc}");
    assert!(rab >= 0.0 && rbc >= 0.0 && rac >= 0.0);
}

/// Denser graphs have smaller effective resistances (Rayleigh
/// monotonicity: adding edges can only decrease ER).
#[test]
fn rayleigh_monotonicity() {
    let base = vec![(0usize, 1usize, 1.0f64), (1, 2, 1.0), (2, 3, 1.0)];
    let g1 = Graph::from_edges(4, &base);
    let mut denser = base.clone();
    denser.push((0, 3, 1.0));
    denser.push((0, 2, 1.0));
    let g2 = Graph::from_edges(4, &denser);
    for (u, v) in [(0usize, 3usize), (0, 2), (1, 3)] {
        let r1 = exact_pair_resistance(&g1, u, v);
        let r2 = exact_pair_resistance(&g2, u, v);
        assert!(r2 <= r1 + 1e-9, "({u},{v}): {r2} > {r1}");
    }
}

/// kNN-graph construction on a parameterised 3-column cloud projected to
/// its spatial part matches building on the projection directly.
#[test]
fn spatial_projection_equivalence() {
    let mut rng = Rng64::new(13);
    let mut flat = Vec::new();
    for _ in 0..100 {
        flat.push(rng.uniform());
        flat.push(rng.uniform());
        flat.push(rng.uniform_in(0.75, 1.1)); // design parameter
    }
    let full = PointCloud::from_flat(3, flat);
    let spatial = full.project(2);
    let cfg = KnnConfig {
        k: 5,
        strategy: KnnStrategy::Brute,
        ..KnnConfig::default()
    };
    let g1 = build_knn_graph(&spatial, &cfg);
    let edges1: std::collections::HashSet<(usize, usize)> =
        g1.edges().map(|(u, v, _)| (u, v)).collect();
    let g2 = build_knn_graph(&full.project(2), &cfg);
    let edges2: std::collections::HashSet<(usize, usize)> =
        g2.edges().map(|(u, v, _)| (u, v)).collect();
    assert_eq!(edges1, edges2);
}
