//! Cross-crate oracle tests: the hand-derived batched propagation in
//! `sgm-nn` must agree with the independent autodiff engines in
//! `sgm-autodiff` — dual numbers for input derivatives, and the
//! higher-order tape for full parameter gradients of derivative-dependent
//! losses (the PINN case).

use sgm_autodiff::dual::Dual2;
use sgm_autodiff::tape::{Tape, Var};
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{BatchDerivatives, Mlp, MlpConfig};

/// Scalar re-evaluation of an `sgm-nn` MLP with Dual2 along one input
/// dimension — an implementation-independent oracle for value, ∂/∂x_d and
/// ∂²/∂x_d².
fn dual2_eval(net: &Mlp, cfg: &MlpConfig, x: &[f64], diff_dim: usize, output: usize) -> Dual2 {
    let params = net.params();
    let mut off = 0;
    let mut act: Vec<Dual2> = x
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            if i == diff_dim {
                Dual2::variable(v)
            } else {
                Dual2::constant(v)
            }
        })
        .collect();
    let mut sizes = vec![(cfg.input_dim, cfg.hidden_width)];
    for _ in 1..cfg.hidden_layers {
        sizes.push((cfg.hidden_width, cfg.hidden_width));
    }
    sizes.push((cfg.hidden_width, cfg.output_dim));
    for (li, &(fan_in, fan_out)) in sizes.iter().enumerate() {
        let w = &params[off..off + fan_in * fan_out];
        off += fan_in * fan_out;
        let b = &params[off..off + fan_out];
        off += fan_out;
        let mut next = Vec::with_capacity(fan_out);
        for o in 0..fan_out {
            let mut z = Dual2::constant(b[o]);
            for i in 0..fan_in {
                z = z + act[i] * w[o * fan_in + i];
            }
            next.push(if li + 1 == sizes.len() {
                z
            } else {
                match cfg.activation {
                    Activation::SiLu => z.silu(),
                    Activation::Tanh => z.tanh(),
                    Activation::Sin => z.sin(),
                    Activation::Identity => z,
                }
            });
        }
        act = next;
    }
    act[output]
}

/// Values, Jacobians and Hessian diagonals from the batched fast path
/// agree with the dual-number oracle for random architectures/inputs
/// (seeded sweep of 24 cases, mirroring the original proptest config).
#[test]
fn batched_derivs_match_dual_oracle() {
    let activations = [Activation::SiLu, Activation::Tanh, Activation::Sin];
    for case in 0u64..24 {
        let mut case_rng = Rng64::new(0xad0 ^ case);
        let seed = case_rng.below(1000) as u64;
        let width = 3 + case_rng.below(7);
        let depth = 1 + case_rng.below(3);
        let act = activations[case_rng.below(3)];
        let x0 = case_rng.uniform_in(-1.5, 1.5);
        let x1 = case_rng.uniform_in(-1.5, 1.5);
        let cfg = MlpConfig {
            input_dim: 2,
            output_dim: 2,
            hidden_width: width,
            hidden_layers: depth,
            activation: act,
            fourier: None,
        };
        let mut rng = Rng64::new(seed);
        let net = Mlp::new(&cfg, &mut rng);
        let x = Matrix::from_rows(&[&[x0, x1]]);
        let (full, _) = net.forward_with_derivs(&x, &[0, 1]);
        for d in 0..2 {
            for o in 0..2 {
                let oracle = dual2_eval(&net, &cfg, &[x0, x1], d, o);
                let tol = 1e-8 * (1.0 + oracle.v.abs() + oracle.d.abs() + oracle.dd.abs());
                assert!(
                    (full.values.get(0, o) - oracle.v).abs() < tol,
                    "case={case} value o={o}: {} vs {}",
                    full.values.get(0, o),
                    oracle.v
                );
                assert!(
                    (full.jac[d].get(0, o) - oracle.d).abs() < tol,
                    "case={case} jac d={d} o={o}: {} vs {}",
                    full.jac[d].get(0, o),
                    oracle.d
                );
                assert!(
                    (full.hess[d].get(0, o) - oracle.dd).abs() < tol,
                    "case={case} hess d={d} o={o}: {} vs {}",
                    full.hess[d].get(0, o),
                    oracle.dd
                );
            }
        }
    }
}

/// Tape re-evaluation of a tiny MLP where parameters are tape inputs:
/// returns (loss_var, param_vars) for the PINN-style loss
/// `Σ_samples (u² + u_x² + u_xx²)`.
fn tape_loss(net: &Mlp, cfg: &MlpConfig, samples: &[[f64; 2]]) -> (Var, Vec<Var>) {
    let tape = Tape::new();
    let params = net.params();
    let pvars: Vec<Var> = params.iter().map(|&p| tape.input(p)).collect();
    let mut total = tape.constant(0.0);
    for s in samples {
        let xv = [tape.input(s[0]), tape.constant(s[1])];
        let mut act: Vec<Var> = xv.to_vec();
        let mut off = 0;
        let mut sizes = vec![(cfg.input_dim, cfg.hidden_width)];
        for _ in 1..cfg.hidden_layers {
            sizes.push((cfg.hidden_width, cfg.hidden_width));
        }
        sizes.push((cfg.hidden_width, cfg.output_dim));
        for (li, &(fan_in, fan_out)) in sizes.iter().enumerate() {
            let mut next = Vec::with_capacity(fan_out);
            for o in 0..fan_out {
                let mut z = pvars[off + fan_in * fan_out + o].clone(); // bias
                for i in 0..fan_in {
                    z = z.add_v(&pvars[off + o * fan_in + i].mul_v(&act[i]));
                }
                next.push(if li + 1 == sizes.len() { z } else { z.tanh() });
            }
            off += fan_in * fan_out + fan_out;
            act = next;
        }
        let u = act[0].clone();
        let ux = u.grad(&[xv[0].clone()])[0].clone();
        let uxx = ux.grad(&[xv[0].clone()])[0].clone();
        total = total
            .add_v(&u.square())
            .add_v(&ux.square())
            .add_v(&uxx.square());
    }
    (total, pvars)
}

/// Full-system check: parameter gradients of a second-derivative loss from
/// the `sgm-nn` backward pass equal those from the higher-order tape.
#[test]
fn parameter_gradients_match_tape_for_pinn_loss() {
    let cfg = MlpConfig {
        input_dim: 2,
        output_dim: 1,
        hidden_width: 4,
        hidden_layers: 2,
        activation: Activation::Tanh,
        fourier: None,
    };
    let mut rng = Rng64::new(77);
    let net = Mlp::new(&cfg, &mut rng);
    let samples = [[0.3, -0.4], [0.8, 0.2]];

    // Fast path.
    let x = Matrix::from_rows(&[&samples[0][..], &samples[1][..]]);
    let (full, cache) = net.forward_with_derivs(&x, &[0]);
    let mut adj = BatchDerivatives::zeros_like(&full);
    for i in 0..2 {
        adj.values.set(i, 0, 2.0 * full.values.get(i, 0));
        adj.jac[0].set(i, 0, 2.0 * full.jac[0].get(i, 0));
        adj.hess[0].set(i, 0, 2.0 * full.hess[0].get(i, 0));
    }
    let grads = net.backward(&cache, &adj).flat();

    // Tape oracle (third-order differentiation under the hood).
    let (loss, pvars) = tape_loss(&net, &cfg, &samples);
    let tape_grads = loss.grad(&pvars);
    assert_eq!(grads.len(), tape_grads.len());
    for (i, (a, b)) in grads.iter().zip(&tape_grads).enumerate() {
        let bv = b.value();
        assert!(
            (a - bv).abs() < 1e-8 * (1.0 + bv.abs()),
            "param {i}: fast {a} vs tape {bv}"
        );
    }
}

/// The values-only fast path agrees with the derivative-carrying path.
#[test]
fn forward_paths_agree_on_batches() {
    let cfg = MlpConfig {
        input_dim: 3,
        output_dim: 2,
        hidden_width: 12,
        hidden_layers: 3,
        activation: Activation::SiLu,
        fourier: None,
    };
    let mut rng = Rng64::new(5);
    let net = Mlp::new(&cfg, &mut rng);
    let x = Matrix::gaussian(17, 3, &mut rng);
    let a = net.forward(&x);
    let (b, _) = net.forward_with_derivs(&x, &[0, 1]);
    for i in 0..a.as_slice().len() {
        assert!((a.as_slice()[i] - b.values.as_slice()[i]).abs() < 1e-13);
    }
}
