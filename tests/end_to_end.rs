//! End-to-end smoke tests: full training runs through the public API with
//! each sampler, checking that the system actually learns.

use sgm_core::{MisConfig, MisSampler, SgmConfig, SgmSampler, UniformSampler};
use sgm_graph::points::PointCloud;
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_nn::optimizer::{AdamConfig, LrSchedule};
use sgm_physics::geometry::{AnnulusChannel, Cavity, FillStrategy};
use sgm_physics::pde::{NsConfig, Pde, PoissonConfig};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::validate::ValidationSet;
use sgm_physics::PinnModel;
use sgm_train::{Sampler, TrainOptions, Trainer};

fn poisson_setup(seed: u64) -> (Problem, TrainSet, ValidationSet) {
    let pi = std::f64::consts::PI;
    let problem = Problem::new(Pde::Poisson(PoissonConfig {
        forcing: |p: &[f64]| {
            let pi = std::f64::consts::PI;
            2.0 * pi * pi * (pi * p[0]).sin() * (pi * p[1]).sin()
        },
    }));
    let mut rng = Rng64::new(seed);
    let interior = Cavity::default().sample_interior(1024, FillStrategy::Halton, &mut rng);
    let mut bpts = Vec::new();
    for i in 0..128 {
        let t = rng.uniform();
        let (x, y) = match i % 4 {
            0 => (t, 0.0),
            1 => (t, 1.0),
            2 => (0.0, t),
            _ => (1.0, t),
        };
        bpts.extend_from_slice(&[x, y]);
    }
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, bpts),
        boundary_targets: Matrix::zeros(128, 1),
    };
    let g = 16;
    let mut pts = Matrix::zeros(g * g, 2);
    let mut targets = Matrix::zeros(g * g, 1);
    for i in 0..g {
        for j in 0..g {
            let (x, y) = ((i as f64 + 0.5) / g as f64, (j as f64 + 0.5) / g as f64);
            pts.set(i * g + j, 0, x);
            pts.set(i * g + j, 1, y);
            targets.set(i * g + j, 0, (pi * x).sin() * (pi * y).sin());
        }
    }
    let val = ValidationSet {
        points: pts,
        targets,
        output_indices: vec![0],
        names: vec!["u".into()],
    };
    (problem, data, val)
}

fn train_poisson(sampler: &mut dyn Sampler, seed: u64) -> (f64, f64) {
    let (problem, data, val) = poisson_setup(seed);
    let mut net = Mlp::new(
        &MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 20,
            hidden_layers: 2,
            activation: Activation::Tanh,
            fourier: None,
        },
        &mut Rng64::new(seed ^ 0xF00),
    );
    let opts = TrainOptions {
        iterations: 900,
        batch_interior: 64,
        batch_boundary: 32,
        adam: AdamConfig {
            lr: 5e-3,
            schedule: LrSchedule::Constant,
            ..AdamConfig::default()
        },
        seed,
        record_every: 100,
        max_seconds: None,
        synthetic_dt: None,
    };
    let result = {
        let model = PinnModel::new(&problem, &data);
        let mut tr = Trainer {
            net: &mut net,
            model: &model,
        };
        tr.run(sampler, Some(&val), &opts)
    };
    let first = result.history.first().unwrap().val_errors[0];
    let best = result.min_error(0).unwrap().0;
    (first, best)
}

#[test]
fn uniform_learns_poisson() {
    let mut s = UniformSampler::new(1024);
    let (first, best) = train_poisson(&mut s, 21);
    assert!(best < 0.5 * first, "no improvement: {first} -> {best}");
}

#[test]
fn sgm_learns_poisson() {
    let (_p, data, _v) = poisson_setup(22);
    let mut s = SgmSampler::new(
        &data.interior,
        SgmConfig {
            k: 8,
            tau_e: 150,
            tau_g: 0,
            min_clusters: 16,
            background: false,
            ..SgmConfig::default()
        },
    );
    let (first, best) = train_poisson(&mut s, 22);
    assert!(best < 0.5 * first, "no improvement: {first} -> {best}");
}

#[test]
fn mis_learns_poisson() {
    let mut s = MisSampler::new(
        1024,
        MisConfig {
            tau_e: 150,
            ..MisConfig::default()
        },
    );
    let (first, best) = train_poisson(&mut s, 23);
    assert!(best < 0.5 * first, "no improvement: {first} -> {best}");
}

#[test]
fn sgm_s_trains_parameterised_navier_stokes() {
    // Short AR run with the ISR term enabled: checks the whole S1–S4 +
    // SPADE + NS-residual pipeline holds together and reduces error.
    let ring = AnnulusChannel::default();
    let mut problem = Problem::new(Pde::NavierStokes(NsConfig {
        nu: 0.1,
        zero_eq: None,
    }));
    problem.bc_weight = 10.0;
    let mut rng = Rng64::new(31);
    let interior = ring.sample_interior(1500, FillStrategy::Halton, &mut rng);
    let (boundary, boundary_targets) = ring.sample_boundary(128, 3, &mut rng);
    let data = TrainSet {
        interior,
        boundary,
        boundary_targets,
    };
    let (pts, targets) = ring.validation_grid(1.0, 6, 12);
    let val = ValidationSet {
        points: pts,
        targets,
        output_indices: vec![0, 1, 2],
        names: vec!["u".into(), "v".into(), "p".into()],
    };
    let mut net = Mlp::new(
        &MlpConfig {
            input_dim: 3,
            output_dim: 3,
            hidden_width: 24,
            hidden_layers: 2,
            activation: Activation::SiLu,
            fourier: None,
        },
        &mut Rng64::new(32),
    );
    let mut sampler = SgmSampler::new(
        &data.interior,
        SgmConfig {
            k: 7,
            lrd_level: 6,
            min_clusters: 16,
            tau_e: 150,
            tau_g: 0,
            use_isr: true,
            isr_cap: 64,
            spatial_dims: 2,
            background: false,
            ..SgmConfig::default()
        },
    );
    let opts = TrainOptions {
        iterations: 700,
        batch_interior: 64,
        batch_boundary: 32,
        adam: AdamConfig {
            lr: 3e-3,
            schedule: LrSchedule::Constant,
            ..AdamConfig::default()
        },
        seed: 33,
        record_every: 100,
        max_seconds: None,
        synthetic_dt: None,
    };
    let result = {
        let model = PinnModel::new(&problem, &data);
        let mut tr = Trainer {
            net: &mut net,
            model: &model,
        };
        tr.run(&mut sampler, Some(&val), &opts)
    };
    let first_u = result.history.first().unwrap().val_errors[0];
    let best_u = result.min_error(0).unwrap().0;
    assert!(
        best_u < first_u,
        "u error should improve: {first_u} -> {best_u}"
    );
    assert!(sampler.stats().refreshes >= 2);
}
