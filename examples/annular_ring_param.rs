//! Parameterised annular ring (paper §4.2): one network learns the flow
//! for every inner radius `r_i ∈ [0.75, 1.1]`, trained with SGM-S
//! (SGM-PINN + the ISR stability term).
//!
//! ```sh
//! cargo run --release -p sgm-core --example annular_ring_param
//! ```
//!
//! After training, the model is evaluated at three radii it was never
//! specifically fitted to, demonstrating the amortised "solve a whole
//! design family once" workflow that motivates parameterised PINNs.

use sgm_cfd::ring::{ring_validation_sets, PAPER_VALIDATION_RADII};
use sgm_core::{SgmConfig, SgmSampler};
use sgm_graph::knn::KnnStrategy;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_nn::optimizer::{AdamConfig, LrSchedule};
use sgm_physics::geometry::{AnnulusChannel, FillStrategy};
use sgm_physics::pde::{NsConfig, Pde};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::{AveragedValidation, PinnModel};
use sgm_train::{TrainOptions, Trainer};

fn main() {
    let ring = AnnulusChannel::default();
    let mut problem = Problem::new(Pde::NavierStokes(NsConfig {
        nu: 0.1,
        zero_eq: None,
    }));
    problem.bc_weight = 10.0;

    let mut rng = Rng64::new(21);
    let interior = ring.sample_interior(8192, FillStrategy::Halton, &mut rng);
    let (boundary, boundary_targets) = ring.sample_boundary(512, 3, &mut rng);
    let data = TrainSet {
        interior,
        boundary,
        boundary_targets,
    };
    let validation = ring_validation_sets(&ring, &PAPER_VALIDATION_RADII, 8, 24);

    let mut net = Mlp::new(
        &MlpConfig {
            input_dim: 3,  // (x, y, r_i)
            output_dim: 3, // (u, v, p)
            hidden_width: 40,
            hidden_layers: 3,
            activation: Activation::SiLu,
            fourier: None,
        },
        &mut Rng64::new(31),
    );
    // SGM-S: the PGM is built on the spatial coordinates only (paper
    // §3.2), while the ISR term senses sensitivity to the full input —
    // including the design parameter (paper §3.4, §4.2).
    let mut sampler = SgmSampler::new(
        &data.interior,
        SgmConfig {
            k: 7,
            knn_strategy: KnnStrategy::Grid,
            lrd_level: 6,
            min_clusters: 48,
            tau_e: 300,
            tau_g: 2000,
            use_isr: true,
            isr_weight: 1.0,
            spatial_dims: 2,
            ..SgmConfig::default()
        },
    );

    let opts = TrainOptions {
        iterations: usize::MAX / 2,
        batch_interior: 128,
        batch_boundary: 64,
        adam: AdamConfig {
            lr: 2e-3,
            schedule: LrSchedule::Exponential {
                gamma: 0.9,
                decay_steps: 2000,
            },
            ..AdamConfig::default()
        },
        seed: 3,
        record_every: 100,
        max_seconds: Some(30.0),
        synthetic_dt: None,
    };
    println!("training SGM-S on the parameterised annulus (30s)...");
    let result = {
        let model = PinnModel::new(&problem, &data);
        let mut tr = Trainer {
            net: &mut net,
            model: &model,
        };
        tr.run(&mut sampler, Some(&AveragedValidation(&validation)), &opts)
    };
    let last = result.history.last().unwrap();
    println!(
        "finished {} iterations; averaged errors u={:.4} v={:.4} p={:.4}",
        last.iteration, last.val_errors[0], last.val_errors[1], last.val_errors[2]
    );

    // Inference across the design family: centreline speed at y = 0.
    println!("\ninstant design sweep (u at (x, 0) for three radii):");
    for &r_i in &PAPER_VALIDATION_RADII {
        print!("  r_i={r_i:<6}");
        for ix in 0..5 {
            let x = r_i + (ring.r_outer - r_i) * (ix as f64 + 0.5) / 5.0;
            let q = sgm_linalg::dense::Matrix::from_rows(&[&[x, 0.0, r_i]]);
            let out = net.forward(&q);
            let (u_exact, _, _) = ring.exact_solution(x, 0.0, r_i);
            print!(" u({x:.2})={:.3}(exact {:.3})", out.get(0, 0), u_exact);
        }
        println!();
    }
    let stats = sampler.stats();
    println!(
        "\nsampler: {} refreshes, {} probes, {:.2}s overhead, {} rebuilds",
        stats.refreshes, stats.probe_evals, stats.refresh_seconds, stats.rebuilds_applied
    );
    println!(
        "rebuilds: {} completed, {} stale epochs served, last took {:.3}s",
        stats.rebuilds_completed, stats.rebuilds_stale_served, stats.last_rebuild_seconds
    );
}
