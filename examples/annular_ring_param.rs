//! Parameterised annular ring (paper §4.2): one network learns the flow
//! for every inner radius `r_i ∈ [0.75, 1.1]`, trained with SGM-S
//! (SGM-PINN + the ISR stability term).
//!
//! ```sh
//! cargo run --release -p sgm-core --example annular_ring_param
//! ```
//!
//! After training, the model is evaluated at three radii it was never
//! specifically fitted to, demonstrating the amortised "solve a whole
//! design family once" workflow that motivates parameterised PINNs.
//!
//! A second stage then trains one *specialist* network per validation
//! radius — the same architecture at B fixed parameter values — as a
//! single [`ParamSweep`] batch: all instances advance in lockstep
//! through the interleaved `BatchedMlp` kernels instead of B
//! sequential solo runs, each bit-identical to the run it replaces.

use sgm_cfd::ring::{ring_validation_sets, PAPER_VALIDATION_RADII};
use sgm_core::{SgmConfig, SgmSampler};
use sgm_graph::knn::KnnStrategy;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_nn::optimizer::{AdamConfig, LrSchedule};
use sgm_physics::geometry::{AnnulusChannel, FillStrategy};
use sgm_physics::pde::{NsConfig, Pde};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::{AveragedValidation, PinnModel};
use sgm_train::{ParamSweep, SweepJob, TrainOptions, Trainer, UniformSampler};

fn main() {
    let ring = AnnulusChannel::default();
    let mut problem = Problem::new(Pde::NavierStokes(NsConfig {
        nu: 0.1,
        zero_eq: None,
    }));
    problem.bc_weight = 10.0;

    let mut rng = Rng64::new(21);
    let interior = ring.sample_interior(8192, FillStrategy::Halton, &mut rng);
    let (boundary, boundary_targets) = ring.sample_boundary(512, 3, &mut rng);
    let data = TrainSet {
        interior,
        boundary,
        boundary_targets,
    };
    let validation = ring_validation_sets(&ring, &PAPER_VALIDATION_RADII, 8, 24);

    let mut net = Mlp::new(
        &MlpConfig {
            input_dim: 3,  // (x, y, r_i)
            output_dim: 3, // (u, v, p)
            hidden_width: 40,
            hidden_layers: 3,
            activation: Activation::SiLu,
            fourier: None,
        },
        &mut Rng64::new(31),
    );
    // SGM-S: the PGM is built on the spatial coordinates only (paper
    // §3.2), while the ISR term senses sensitivity to the full input —
    // including the design parameter (paper §3.4, §4.2).
    let mut sampler = SgmSampler::new(
        &data.interior,
        SgmConfig {
            k: 7,
            knn_strategy: KnnStrategy::Grid,
            lrd_level: 6,
            min_clusters: 48,
            tau_e: 300,
            tau_g: 2000,
            use_isr: true,
            isr_weight: 1.0,
            spatial_dims: 2,
            ..SgmConfig::default()
        },
    );

    let opts = TrainOptions {
        iterations: usize::MAX / 2,
        batch_interior: 128,
        batch_boundary: 64,
        adam: AdamConfig {
            lr: 2e-3,
            schedule: LrSchedule::Exponential {
                gamma: 0.9,
                decay_steps: 2000,
            },
            ..AdamConfig::default()
        },
        seed: 3,
        record_every: 100,
        max_seconds: Some(30.0),
        synthetic_dt: None,
    };
    println!("training SGM-S on the parameterised annulus (30s)...");
    let result = {
        let model = PinnModel::new(&problem, &data);
        let mut tr = Trainer {
            net: &mut net,
            model: &model,
        };
        tr.run(&mut sampler, Some(&AveragedValidation(&validation)), &opts)
    };
    let last = result.history.last().unwrap();
    println!(
        "finished {} iterations; averaged errors u={:.4} v={:.4} p={:.4}",
        last.iteration, last.val_errors[0], last.val_errors[1], last.val_errors[2]
    );

    // Inference across the design family: centreline speed at y = 0.
    println!("\ninstant design sweep (u at (x, 0) for three radii):");
    for &r_i in &PAPER_VALIDATION_RADII {
        print!("  r_i={r_i:<6}");
        for ix in 0..5 {
            let x = r_i + (ring.r_outer - r_i) * (ix as f64 + 0.5) / 5.0;
            let q = sgm_linalg::dense::Matrix::from_rows(&[&[x, 0.0, r_i]]);
            let out = net.forward(&q);
            let (u_exact, _, _) = ring.exact_solution(x, 0.0, r_i);
            print!(" u({x:.2})={:.3}(exact {:.3})", out.get(0, 0), u_exact);
        }
        println!();
    }
    let stats = sampler.stats();
    println!(
        "\nsampler: {} refreshes, {} probes, {:.2}s overhead, {} rebuilds",
        stats.refreshes, stats.probe_evals, stats.refresh_seconds, stats.rebuilds_applied
    );
    println!(
        "rebuilds: {} completed, {} stale epochs served, last took {:.3}s",
        stats.rebuilds_completed, stats.rebuilds_stale_served, stats.last_rebuild_seconds
    );

    // ---- Stage 2: per-radius specialists as one batched sweep ----
    // One network per validation radius, trained through the ParamSweep
    // lockstep runner: every Adam step runs all instances at once
    // through the interleaved BatchedMlp kernels. Lockstep execution
    // requires a non-adapting sampler (point sets must stay fixed), so
    // the specialists draw uniform batches — the SGM-S run above keeps
    // the adaptive-sampling story.
    let radii = PAPER_VALIDATION_RADII;
    println!(
        "\ntraining {} per-radius specialists as one batched ParamSweep (10s)...",
        radii.len()
    );
    let mut spec_rng = Rng64::new(91);
    let spec_problems: Vec<Problem> = radii
        .iter()
        .map(|_| {
            let mut p = Problem::new(Pde::NavierStokes(NsConfig {
                nu: 0.1,
                zero_eq: None,
            }));
            p.bc_weight = 10.0;
            p
        })
        .collect();
    let spec_data: Vec<TrainSet> = radii
        .iter()
        .map(|&r_i| {
            // Pinning the parameter range collapses the family to one
            // design: all samples carry this specialist's radius.
            let fixed = AnnulusChannel {
                param_range: (r_i, r_i),
                ..AnnulusChannel::default()
            };
            let interior = fixed.sample_interior(2048, FillStrategy::Halton, &mut spec_rng);
            let (boundary, boundary_targets) = fixed.sample_boundary(256, 3, &mut spec_rng);
            TrainSet {
                interior,
                boundary,
                boundary_targets,
            }
        })
        .collect();
    let spec_models: Vec<PinnModel> = spec_problems
        .iter()
        .zip(&spec_data)
        .map(|(p, d)| PinnModel::new(p, d))
        .collect();
    let mut spec_nets: Vec<Mlp> = (0..radii.len())
        .map(|i| {
            Mlp::new(
                &MlpConfig {
                    input_dim: 3,
                    output_dim: 3,
                    hidden_width: 40,
                    hidden_layers: 3,
                    activation: Activation::SiLu,
                    fourier: None,
                },
                &mut Rng64::new(51 + i as u64),
            )
        })
        .collect();
    let mut spec_samplers: Vec<UniformSampler> = spec_data
        .iter()
        .map(|d| UniformSampler::new(d.num_interior()))
        .collect();
    let spec_opts = TrainOptions {
        iterations: usize::MAX / 2,
        batch_interior: 128,
        batch_boundary: 64,
        adam: AdamConfig {
            lr: 2e-3,
            schedule: LrSchedule::Exponential {
                gamma: 0.9,
                decay_steps: 2000,
            },
            ..AdamConfig::default()
        },
        seed: 5,
        record_every: 200,
        max_seconds: Some(10.0),
        synthetic_dt: None,
    };
    let spec_validators: Vec<AveragedValidation> = (0..radii.len())
        .map(|i| AveragedValidation(std::slice::from_ref(&validation[i])))
        .collect();
    let mut jobs: Vec<SweepJob<'_>> = spec_nets
        .iter_mut()
        .zip(&spec_models)
        .zip(&mut spec_samplers)
        .zip(&spec_validators)
        .map(|(((snet, model), spl), val)| SweepJob {
            net: snet,
            model,
            sampler: spl,
            validator: Some(val),
            opts: &spec_opts,
        })
        .collect();
    let spec_results = ParamSweep::run(&mut jobs).expect("sweep constraints hold");
    drop(jobs);
    for (i, &r_i) in radii.iter().enumerate() {
        let last = spec_results[i].history.last().unwrap();
        println!(
            "  specialist r_i={r_i:<6} {} iterations, errors u={:.4} v={:.4} p={:.4}",
            last.iteration, last.val_errors[0], last.val_errors[1], last.val_errors[2]
        );
    }
}
