//! Quickstart for the job server: start a server in-process, submit a
//! few jobs from two tenants over real sockets, watch them finish, and
//! download a checkpoint.
//!
//! ```sh
//! cargo run --release -p sgm-serve --example serve_quickstart
//! ```

use sgm_serve::{client, JobSpec, ServeConfig, Server};
use std::time::Duration;

fn main() {
    let server = Server::start(ServeConfig {
        workers: 2,
        slice_iterations: 10,
        ..ServeConfig::from_env()
    })
    .expect("bind");
    let addr = server.addr();
    println!("serving on http://{addr}");

    let mut ids = Vec::new();
    for (tenant, sampler) in [("alice", "mis"), ("alice", "uniform"), ("bob", "rad")] {
        let spec = JobSpec {
            tenant: tenant.into(),
            sampler: sampler.into(),
            iterations: 60,
            interior: 128,
            boundary: 32,
            batch_interior: 16,
            batch_boundary: 8,
            validation_grid: 8,
            record_every: 20,
            ..JobSpec::default()
        };
        let id = client::submit(addr, &spec).expect("submit");
        println!("submitted {tenant}/{sampler} as job {id}");
        ids.push(id);
    }

    for id in ids {
        let status = client::wait_settled(addr, id, Duration::from_secs(120)).expect("wait");
        println!(
            "job {id}: {} at iteration {} (loss {:.3e})",
            status.req_str("state").unwrap(),
            status.req_usize("iteration").unwrap(),
            status.req_f64("last_train_loss").unwrap_or(f64::NAN),
        );
        assert_eq!(status.req_str("state").unwrap(), "completed");
        let ckpt = client::checkpoint(addr, id).expect("checkpoint");
        println!(
            "job {id}: checkpoint is {} bytes of RunState JSON",
            ckpt.len()
        );
    }

    assert!(server.shutdown_and_join(), "connection threads drained");
    println!("server drained cleanly");
}
