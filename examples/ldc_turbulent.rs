//! Lid-driven cavity with zero-equation turbulence (paper §4.1),
//! head-to-head: uniform sampling vs SGM-PINN at the same small batch.
//!
//! ```sh
//! cargo run --release -p sgm-core --example ldc_turbulent
//! ```
//!
//! Trains two identically initialised networks for the same wall budget
//! and prints the validation errors of `u`, `v`, `ν` against a built-in
//! finite-difference reference solve.
//!
//! Environment knobs (all optional):
//!
//! * `SGM_BUDGET_SECS` — wall budget per method (default 25 s; CI's
//!   observability job shrinks this to a few seconds).
//! * `SGM_TAU_G` — SGM graph-rebuild period `τ_G` in iterations
//!   (default 1500; lower it to force background rebuilds into short
//!   runs).
//! * `SGM_TRACE`, `SGM_RUN_LOG`, `SGM_CHROME_TRACE` — span tracing and
//!   run-telemetry export (see the README's environment table).

use sgm_cfd::ldc::LdcSolver;
use sgm_core::{SgmConfig, SgmSampler, UniformSampler};
use sgm_graph::knn::KnnStrategy;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_nn::optimizer::{AdamConfig, LrSchedule};
use sgm_physics::geometry::{Cavity, FillStrategy};
use sgm_physics::pde::{NsConfig, Pde, ZeroEqConfig};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::{AveragedValidation, PinnModel};
use sgm_train::{Hook, ObsHook, Sampler, TrainOptions, Trainer};

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let budget = env_f64("SGM_BUDGET_SECS", 25.0); // seconds per method
    let tau_g = env_f64("SGM_TAU_G", 1500.0) as usize;
    let re = 100.0;
    let nu_mol = 1.0 / re;

    // Problem: steady NS + zero-equation closure; outputs (u, v, p, ν).
    let mut problem = Problem::new(Pde::NavierStokes(NsConfig {
        nu: nu_mol,
        zero_eq: Some(ZeroEqConfig {
            karman: 0.419,
            mixing_cap: 0.045,
            wall_distance: Cavity::wall_distance,
            sqrt_eps: 1e-8,
        }),
    }));
    problem.bc_weight = 10.0;

    // Data.
    let cavity = Cavity::default();
    let mut rng = Rng64::new(11);
    let interior = cavity.sample_interior(8192, FillStrategy::Halton, &mut rng);
    let (boundary, boundary_targets) = cavity.sample_boundary(256, 4, &mut rng);
    let data = TrainSet {
        interior,
        boundary,
        boundary_targets,
    };

    // Reference solve (plays OpenFOAM's role).
    eprintln!("running FDM reference solve at Re={re}...");
    let field = LdcSolver {
        n: 64,
        re,
        max_steps: 60_000,
        ..LdcSolver::default()
    }
    .solve();
    let validation = vec![field.validation_set(4, nu_mol, 0.419, 0.045)];

    let net_cfg = MlpConfig {
        input_dim: 2,
        output_dim: 4,
        hidden_width: 40,
        hidden_layers: 3,
        activation: Activation::SiLu,
        fourier: None,
    };
    let opts = TrainOptions {
        iterations: usize::MAX / 2,
        batch_interior: 192,
        batch_boundary: 64,
        adam: AdamConfig {
            lr: 2e-3,
            schedule: LrSchedule::Exponential {
                gamma: 0.9,
                decay_steps: 2000,
            },
            ..AdamConfig::default()
        },
        seed: 5,
        record_every: 100,
        max_seconds: Some(budget),
        synthetic_dt: None,
    };

    let run = |name: &str, sampler: &mut dyn Sampler| {
        let mut net = Mlp::new(&net_cfg, &mut Rng64::new(42));
        let result = {
            let model = PinnModel::new(&problem, &data);
            let mut tr = Trainer {
                net: &mut net,
                model: &model,
            };
            // Mirror stage timings and convergence into the metrics
            // registry, so SGM_RUN_LOG captures them.
            let mut obs = ObsHook::new();
            let mut hooks: [&mut dyn Hook; 1] = [&mut obs];
            tr.run_hooked(
                sampler,
                Some(&AveragedValidation(&validation)),
                &opts,
                &mut hooks,
            )
        };
        let last = result.history.last().unwrap();
        println!(
            "{name:>8}: {:>6} iters in {:.1}s | best u={:.4} v={:.4} nu={:.4}",
            last.iteration,
            result.total_seconds,
            result.min_error(0).unwrap().0,
            result.min_error(1).unwrap().0,
            result.min_error(2).unwrap().0,
        );
        result
    };

    println!("\n=== LDC zero-eq: uniform vs SGM-PINN ({budget:.0}s each) ===");
    let mut uniform = UniformSampler::new(data.interior.len());
    let r_uni = run("uniform", &mut uniform);
    let mut sgm = SgmSampler::new(
        &data.interior,
        SgmConfig {
            k: 30,
            knn_strategy: KnnStrategy::Grid,
            lrd_level: 10,
            min_clusters: 48,
            tau_e: 300,
            tau_g,
            ..SgmConfig::default()
        },
    );
    let r_sgm = run("sgm", &mut sgm);

    // Time for SGM to reach uniform's best v error.
    let (uni_best_v, t_uni) = r_uni.min_error(1).unwrap();
    match r_sgm.time_to_error(1, uni_best_v) {
        Some(t) => println!(
            "\nSGM reached uniform's best v ({uni_best_v:.4}) in {t:.1}s vs {t_uni:.1}s — {:.2}x",
            t_uni / t.max(1e-9)
        ),
        None => println!("\nSGM did not reach uniform's best v within the budget"),
    }
    let stats = sgm.stats();
    println!(
        "SGM overhead: {} refreshes ({} probes) costing {:.2}s; {} graph rebuilds applied",
        stats.refreshes, stats.probe_evals, stats.refresh_seconds, stats.rebuilds_applied
    );
    println!(
        "SGM rebuilds: {} completed ({} epochs served stale while one was in flight); \
         last rebuild took {:.3}s",
        stats.rebuilds_completed, stats.rebuilds_stale_served, stats.last_rebuild_seconds
    );

    // Run telemetry (no-op unless SGM_RUN_LOG / SGM_CHROME_TRACE set).
    let mut log = sgm_obs::RunLog::new("ldc_turbulent/sgm");
    log.meta("method", sgm_json::Value::Str("sgm".into()));
    log.meta("budget_seconds", sgm_json::Value::Num(budget));
    log.meta("tau_g", sgm_json::Value::Num(tau_g as f64));
    for r in &r_sgm.history {
        log.push_record(sgm_obs::RunRecord {
            iteration: r.iteration,
            seconds: r.seconds,
            train_loss: r.train_loss,
            val_errors: r.val_errors.clone(),
        });
    }
    match log.finish_from_env() {
        Ok(Some(path)) => println!("telemetry -> {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("telemetry write failed: {e}"),
    }
}
