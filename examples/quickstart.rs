//! Quickstart: solve a Poisson problem with a PINN accelerated by
//! SGM-PINN importance sampling.
//!
//! ```sh
//! cargo run --release -p sgm-core --example quickstart
//! ```
//!
//! Solves `−∇²u = 2π² sin(πx) sin(πy)` on the unit square with zero
//! Dirichlet boundaries (exact solution `u = sin(πx) sin(πy)`), then
//! reports the relative L2 error of the trained network.

use sgm_core::{SgmConfig, SgmSampler};
use sgm_graph::points::PointCloud;
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_nn::optimizer::{AdamConfig, LrSchedule};
use sgm_physics::geometry::{Cavity, FillStrategy};
use sgm_physics::pde::{Pde, PoissonConfig};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::validate::ValidationSet;
use sgm_physics::PinnModel;
use sgm_train::{TrainOptions, Trainer};

fn main() {
    let pi = std::f64::consts::PI;
    // 1. The PDE: −∇²u = f with a manufactured solution.
    let problem = Problem::new(Pde::Poisson(PoissonConfig {
        forcing: |p: &[f64]| {
            let pi = std::f64::consts::PI;
            2.0 * pi * pi * (pi * p[0]).sin() * (pi * p[1]).sin()
        },
    }));

    // 2. Collocation data: 4096 interior points + walls with u = 0.
    let mut rng = Rng64::new(7);
    let interior = Cavity::default().sample_interior(4096, FillStrategy::Halton, &mut rng);
    let mut bpts = Vec::new();
    for i in 0..256 {
        let t = rng.uniform();
        let (x, y) = match i % 4 {
            0 => (t, 0.0),
            1 => (t, 1.0),
            2 => (0.0, t),
            _ => (1.0, t),
        };
        bpts.extend_from_slice(&[x, y]);
    }
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, bpts),
        boundary_targets: Matrix::zeros(256, 1),
    };

    // 3. Validation grid against the exact solution.
    let g = 24;
    let mut pts = Matrix::zeros(g * g, 2);
    let mut targets = Matrix::zeros(g * g, 1);
    for i in 0..g {
        for j in 0..g {
            let (x, y) = ((i as f64 + 0.5) / g as f64, (j as f64 + 0.5) / g as f64);
            pts.set(i * g + j, 0, x);
            pts.set(i * g + j, 1, y);
            targets.set(i * g + j, 0, (pi * x).sin() * (pi * y).sin());
        }
    }
    let validation = ValidationSet {
        points: pts,
        targets,
        output_indices: vec![0],
        names: vec!["u".into()],
    };

    // 4. Network + the SGM-PINN sampler (S1–S4 of the paper).
    let mut net = Mlp::new(
        &MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 32,
            hidden_layers: 3,
            activation: Activation::SiLu,
            fourier: None,
        },
        &mut rng,
    );
    let mut sampler = SgmSampler::new(
        &data.interior,
        SgmConfig {
            k: 8,
            tau_e: 200,
            tau_g: 1000,
            min_clusters: 32,
            // τ_G rebuilds go through the persistent delta engine: only
            // points that moved (and their graph neighborhood) are
            // re-queried, and only dirty LRD blocks recomputed.
            incremental: Some(sgm_graph::refresh::RefreshOptions::default()),
            ..SgmConfig::default()
        },
    );

    // 5. Train.
    let opts = TrainOptions {
        iterations: 3000,
        batch_interior: 128,
        batch_boundary: 64,
        adam: AdamConfig {
            lr: 3e-3,
            schedule: LrSchedule::Exponential {
                gamma: 0.9,
                decay_steps: 1000,
            },
            ..AdamConfig::default()
        },
        seed: 1,
        record_every: 250,
        max_seconds: Some(30.0),
        synthetic_dt: None,
    };
    let result = {
        let model = PinnModel::new(&problem, &data);
        let mut trainer = Trainer {
            net: &mut net,
            model: &model,
        };
        trainer.run(&mut sampler, Some(&validation), &opts)
    };

    for r in &result.history {
        println!(
            "iter {:>5}  t={:>5.1}s  loss={:>9.3e}  rel-L2(u)={:.4}",
            r.iteration, r.seconds, r.train_loss, r.val_errors[0]
        );
    }
    let (best, at) = result.min_error(0).expect("history");
    let stats = sampler.stats();
    println!("\nbest relative L2 error: {best:.4} at {at:.1}s");
    println!(
        "sampler overhead: {} refreshes, {} loss probes, {:.2}s",
        stats.refreshes, stats.probe_evals, stats.refresh_seconds
    );
    println!(
        "rebuilds: {} completed ({} stale epochs served), last took {:.3}s",
        stats.rebuilds_completed, stats.rebuilds_stale_served, stats.last_rebuild_seconds
    );
    println!(
        "incremental engine: {} points rescored, {} edges patched, \
         last dirty fraction {:.3}, last patch {:.3}s",
        stats.points_rescored,
        stats.edges_patched,
        stats.last_dirty_fraction,
        stats.last_patch_seconds
    );
    assert!(best < 0.2, "quickstart should reach <20% error");
}
