//! Inspect what the S1/S2 pipeline actually produces: build the PGM over
//! a collocation cloud, run the LRD decomposition at several levels, and
//! print cluster statistics plus an ASCII map of the clustering.
//!
//! ```sh
//! cargo run --release -p sgm-core --example cluster_explorer
//! ```

use sgm_graph::knn::{build_knn_graph, KnnConfig, KnnStrategy};
use sgm_graph::lrd::{decompose, ErSource, LrdConfig};
use sgm_graph::metrics::{cut_fraction, size_summary};
use sgm_graph::resistance::ApproxErOptions;
use sgm_linalg::rng::Rng64;
use sgm_physics::geometry::{Cavity, FillStrategy};

fn main() {
    let mut rng = Rng64::new(2024);
    let cloud = Cavity::default().sample_interior(4000, FillStrategy::Halton, &mut rng);
    println!("cloud: {} points in 2-D", cloud.len());

    let graph = build_knn_graph(
        &cloud,
        &KnnConfig {
            k: 12,
            strategy: KnnStrategy::Grid,
            ..KnnConfig::default()
        },
    );
    println!(
        "PGM: {} nodes, {} edges, avg degree {:.1}, connected = {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.average_degree(),
        graph.is_connected()
    );

    for level in [2usize, 4, 6, 8, 10] {
        let clustering = decompose(
            &graph,
            &LrdConfig {
                level,
                er: ErSource::Approx(ApproxErOptions::default()),
                budget_scale: 1.0,
                max_cluster_frac: 0.02,
                min_clusters: 16,
            },
        );
        let (mn, med, mx) = size_summary(&clustering);
        println!(
            "L={level:>2}: {:>5} clusters | sizes min/med/max = {mn}/{med}/{mx} | cut fraction = {:.3}",
            clustering.num_clusters(),
            cut_fraction(&graph, &clustering)
        );
        if level == 8 {
            // ASCII map: each cell shows (cluster id % 10) of the nearest
            // sample — neighbouring cells sharing digits = spatially
            // coherent clusters.
            println!("\n  cluster map at L=8 (digit = cluster id mod 10):");
            let grid = 48;
            for gy in (0..grid / 2).rev() {
                print!("  ");
                for gx in 0..grid {
                    let (x, y) = (
                        (gx as f64 + 0.5) / grid as f64,
                        (gy as f64 + 0.5) / (grid / 2) as f64,
                    );
                    let mut best = (f64::MAX, 0usize);
                    for i in 0..cloud.len() {
                        let p = cloud.point(i);
                        let d = (p[0] - x).powi(2) + (p[1] - y).powi(2);
                        if d < best.0 {
                            best = (d, i);
                        }
                    }
                    let c = clustering.assignment()[best.1] % 10;
                    print!("{c}");
                }
                println!();
            }
            println!();
        }
    }
    println!("higher L ⇒ coarser clustering; the cut fraction stays bounded (LRD theorem).");
}
