//! Chip thermal analysis with an SGM-accelerated PINN — the CAD workload
//! the paper's introduction opens with.
//!
//! ```sh
//! cargo run --release -p sgm-core --example chip_thermal
//! ```
//!
//! A floorplan with two hot cores and a low-conductivity cache region is
//! solved twice: by the finite-volume reference solver and by a PINN
//! sampled with SGM-PINN. Because the heat sources are concentrated in
//! small blocks, the residual field is extremely non-uniform — exactly
//! the regime importance sampling is built for: the cluster scores light
//! up over the cores, and the sampler focuses batches there.

use sgm_cfd::heat::{ChipLayout, HeatSolver};
use sgm_core::{SgmConfig, SgmSampler};
use sgm_graph::points::PointCloud;
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_nn::optimizer::{AdamConfig, LrSchedule};
use sgm_physics::geometry::{Cavity, FillStrategy};
use sgm_physics::pde::{HeatConfig, Pde};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::{AveragedValidation, PinnModel};
use sgm_train::{Sampler, TrainOptions, Trainer};

/// Draw one batch through the no-allocation `fill_batch` entry point.
fn next_batch(s: &mut dyn Sampler, batch: usize, rng: &mut Rng64) -> Vec<usize> {
    let mut out = Vec::new();
    s.fill_batch(batch, &mut out, rng);
    out
}

/// The layout the PDE closures read (fn pointers need a static source).
fn layout() -> ChipLayout {
    ChipLayout::default()
}

fn conductivity(p: &[f64]) -> f64 {
    layout().conductivity(p[0], p[1])
}

/// κ is piecewise constant; its distributional gradient at block borders
/// is not seen by collocation points almost surely, so 0 is the correct
/// pointwise value.
fn conductivity_grad(_p: &[f64]) -> [f64; 2] {
    [0.0, 0.0]
}

fn power(p: &[f64]) -> f64 {
    layout().power(p[0], p[1])
}

fn main() {
    // Reference solve.
    eprintln!("running finite-volume reference solve...");
    let field = HeatSolver {
        n: 64,
        ..HeatSolver::default()
    }
    .solve(&layout());
    println!(
        "reference: peak T = {:.3} (converged in {} sweeps)",
        field.peak(),
        field.sweeps
    );
    let validation = vec![field.validation_set(4)];

    // PINN problem: ∇·(κ∇T) + q = 0, T = 0 on the die edge (heat sink).
    let mut problem = Problem::new(Pde::Heat(HeatConfig {
        conductivity,
        conductivity_grad,
        source: power,
    }));
    problem.bc_weight = 20.0;
    let mut rng = Rng64::new(17);
    let interior = Cavity::default().sample_interior(6000, FillStrategy::Halton, &mut rng);
    let mut bpts = Vec::new();
    for i in 0..256 {
        let t = rng.uniform();
        let (x, y) = match i % 4 {
            0 => (t, 0.0),
            1 => (t, 1.0),
            2 => (0.0, t),
            _ => (1.0, t),
        };
        bpts.extend_from_slice(&[x, y]);
    }
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, bpts),
        boundary_targets: Matrix::zeros(256, 1),
    };

    let mut net = Mlp::new(
        &MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 36,
            hidden_layers: 3,
            activation: Activation::SiLu,
            fourier: None,
        },
        &mut Rng64::new(18),
    );
    let mut sampler = SgmSampler::new(
        &data.interior,
        SgmConfig {
            k: 10,
            tau_e: 250,
            tau_g: 0,
            min_clusters: 40,
            ..SgmConfig::default()
        },
    );
    let opts = TrainOptions {
        iterations: usize::MAX / 2,
        batch_interior: 128,
        batch_boundary: 64,
        adam: AdamConfig {
            lr: 3e-3,
            schedule: LrSchedule::Exponential {
                gamma: 0.9,
                decay_steps: 1500,
            },
            ..AdamConfig::default()
        },
        seed: 19,
        record_every: 200,
        max_seconds: Some(30.0),
        synthetic_dt: None,
    };
    println!("training the thermal PINN with SGM sampling (30s)...");
    let result = {
        let model = PinnModel::new(&problem, &data);
        let mut tr = Trainer {
            net: &mut net,
            model: &model,
        };
        tr.run(&mut sampler, Some(&AveragedValidation(&validation)), &opts)
    };
    let (best, at) = result.min_error(0).expect("history");
    println!("best relative L2 error of T: {best:.4} at {at:.1}s");

    // Where did the sampler put its attention? Count epoch mass over the
    // hot core vs an idle corner.
    let probe_batch: Vec<usize> = {
        let mut rng2 = Rng64::new(20);
        next_batch(&mut sampler, 4000, &mut rng2)
    };
    let hot = probe_batch
        .iter()
        .filter(|&&i| {
            let p = data.interior.point(i);
            layout().power(p[0], p[1]) > 0.0
        })
        .count() as f64
        / probe_batch.len() as f64;
    // The two power blocks cover ~16% of the die.
    println!(
        "fraction of samples in powered blocks: {:.2} (area fraction ≈ 0.16)",
        hot
    );
    // PINN peak-temperature estimate vs reference.
    let mut peak = f64::MIN;
    for gy in 0..40 {
        for gx in 0..40 {
            let q = Matrix::from_rows(&[&[gx as f64 / 39.0, gy as f64 / 39.0]]);
            peak = peak.max(net.forward(&q).get(0, 0));
        }
    }
    println!("peak T: PINN {:.3} vs reference {:.3}", peak, field.peak());
}
