//! Viscous Burgers shock formation — the classic PINN benchmark, solved
//! with SGM-PINN sampling and validated against the exact Cole–Hopf
//! solution.
//!
//! ```sh
//! cargo run --release -p sgm-core --example burgers_shock
//! ```
//!
//! `u_t + u u_x = ν u_xx`, `x ∈ [−1, 1]`, `t ∈ [0, 1]`, `ν = 0.01/π`,
//! `u(x, 0) = −sin(πx)`. The solution steepens into a near-shock at
//! `x = 0`; the PDE residuals concentrate along that moving front, giving
//! the clusters there high scores — a textbook importance-sampling win.

use sgm_cfd::burgers::{burgers_validation_set, exact_solution, BENCH_NU};
use sgm_core::{SgmConfig, SgmSampler, UniformSampler};
use sgm_graph::points::PointCloud;
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_nn::optimizer::{AdamConfig, LrSchedule};
use sgm_physics::pde::{BurgersConfig, Pde};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::{AveragedValidation, PinnModel};
use sgm_train::{Sampler, TrainOptions, Trainer};

/// Draw one batch through the no-allocation `fill_batch` entry point.
fn next_batch(s: &mut dyn Sampler, batch: usize, rng: &mut Rng64) -> Vec<usize> {
    let mut out = Vec::new();
    s.fill_batch(batch, &mut out, rng);
    out
}

fn main() {
    let mut problem = Problem::new(Pde::Burgers(BurgersConfig { nu: BENCH_NU }));
    problem.bc_weight = 20.0;

    // Collocation over (x, t) ∈ [−1, 1] × [0, 1].
    let mut rng = Rng64::new(23);
    let n = 6000;
    let mut flat = Vec::with_capacity(n * 2);
    for i in 0..n {
        flat.push(-1.0 + 2.0 * sgm_physics::geometry::halton(i + 1, 2));
        flat.push(sgm_physics::geometry::halton(i + 1, 3));
    }
    let interior = PointCloud::from_flat(2, flat);
    // "Boundary": initial condition at t = 0 plus x = ±1 walls.
    let nb = 384;
    let mut bpts = Vec::with_capacity(nb * 2);
    let mut tgt = Matrix::zeros(nb, 1);
    for i in 0..nb {
        match i % 3 {
            0 => {
                let x = rng.uniform_in(-1.0, 1.0);
                bpts.extend_from_slice(&[x, 0.0]);
                tgt.set(i, 0, -(std::f64::consts::PI * x).sin());
            }
            1 => {
                bpts.extend_from_slice(&[-1.0, rng.uniform()]);
                tgt.set(i, 0, 0.0);
            }
            _ => {
                bpts.extend_from_slice(&[1.0, rng.uniform()]);
                tgt.set(i, 0, 0.0);
            }
        }
    }
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, bpts),
        boundary_targets: tgt,
    };
    let validation = vec![burgers_validation_set(32, 8, 1.0, BENCH_NU)];

    let opts = TrainOptions {
        iterations: usize::MAX / 2,
        batch_interior: 128,
        batch_boundary: 64,
        adam: AdamConfig {
            lr: 3e-3,
            schedule: LrSchedule::Exponential {
                gamma: 0.9,
                decay_steps: 2000,
            },
            ..AdamConfig::default()
        },
        seed: 24,
        record_every: 200,
        max_seconds: Some(25.0),
        synthetic_dt: None,
    };
    let net_cfg = MlpConfig {
        input_dim: 2,
        output_dim: 1,
        hidden_width: 32,
        hidden_layers: 3,
        activation: Activation::Tanh,
        fourier: None,
    };

    let run = |label: &str, sampler: &mut dyn Sampler| {
        let mut net = Mlp::new(&net_cfg, &mut Rng64::new(42));
        let result = {
            let model = PinnModel::new(&problem, &data);
            let mut tr = Trainer {
                net: &mut net,
                model: &model,
            };
            tr.run(sampler, Some(&AveragedValidation(&validation)), &opts)
        };
        let (best, at) = result.min_error(0).unwrap();
        println!("{label:>8}: best rel-L2(u) = {best:.4} at {at:.1}s");
        (net, result)
    };

    println!("=== Burgers shock: uniform vs SGM (25s each) ===");
    let mut uni = UniformSampler::new(data.interior.len());
    let _ = run("uniform", &mut uni);
    let mut sgm = SgmSampler::new(
        &data.interior,
        SgmConfig {
            k: 8,
            tau_e: 250,
            tau_g: 0,
            min_clusters: 40,
            ..SgmConfig::default()
        },
    );
    let (net, _) = run("sgm", &mut sgm);

    // Profile at t = 0.75 around the shock.
    println!("\nu(x, 0.75) near the shock (PINN vs exact):");
    for &x in &[-0.2, -0.1, -0.05, 0.0, 0.05, 0.1, 0.2] {
        let q = Matrix::from_rows(&[&[x, 0.75]]);
        let pred = net.forward(&q).get(0, 0);
        let exact = exact_solution(x, 0.75, BENCH_NU);
        println!("  x={x:>6}: {pred:>7.3} vs {exact:>7.3}");
    }
    // Where did SGM sample? Fraction of batch near the shock band |x|<0.15.
    let mut rng2 = Rng64::new(77);
    let batch = next_batch(&mut sgm, 4000, &mut rng2);
    let near = batch
        .iter()
        .filter(|&&i| data.interior.point(i)[0].abs() < 0.15)
        .count() as f64
        / batch.len() as f64;
    println!("\nfraction of SGM samples in the shock band |x| < 0.15: {near:.2} (area 0.075)");
}
