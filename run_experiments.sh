#!/bin/bash
# Regenerates every experiment artifact sequentially (single-core safe).
cd /root/repo
export SGM_BUDGET_SECS=${SGM_BUDGET_SECS:-75}
export SGM_ABLATION_SECS=${SGM_ABLATION_SECS:-10}
set -x
cargo build --release --workspace 2>&1 | tail -3
cargo test --release -p sgm-core -p sgm-nn 2>&1 | grep -E "test result|FAILED|error\[" 
cargo run --release -p sgm-bench --bin table1   > target/table1_output.txt 2>&1
cargo run --release -p sgm-bench --bin table2   > target/table2_output.txt 2>&1
cargo run --release -p sgm-bench --bin fig2     > target/fig2_output.txt 2>&1
cargo run --release -p sgm-bench --bin fig3     > target/fig3_output.txt 2>&1
cargo run --release -p sgm-bench --bin fig4     > target/fig4_output.txt 2>&1
cargo run --release -p sgm-bench --bin ablation > target/ablation_output.txt 2>&1
echo "PIPELINE_COMPLETE"
