#!/bin/bash
# Regenerates every experiment artifact sequentially (single-core safe).
#
# Usage: ./run_experiments.sh [--quick]
#   --quick  smoke mode: tiny wall budgets + bench dry-run, just proves
#            the whole pipeline still executes end to end.
cd /root/repo
if [ "$1" = "--quick" ]; then
    export SGM_BUDGET_SECS=${SGM_BUDGET_SECS:-3}
    export SGM_ABLATION_SECS=${SGM_ABLATION_SECS:-1}
    BENCH_ARGS="--test"
else
    export SGM_BUDGET_SECS=${SGM_BUDGET_SECS:-75}
    export SGM_ABLATION_SECS=${SGM_ABLATION_SECS:-10}
    BENCH_ARGS=""
fi
set -x
cargo build --release --workspace 2>&1 | tail -3
cargo test --release -p sgm-core -p sgm-nn 2>&1 | grep -E "test result|FAILED|error\["
cargo bench -p sgm-bench --bench components -- $BENCH_ARGS > target/bench_output.txt 2>&1 || exit 1
cargo run --release -p sgm-bench --bin table1   > target/table1_output.txt 2>&1
cargo run --release -p sgm-bench --bin table2   > target/table2_output.txt 2>&1
cargo run --release -p sgm-bench --bin fig2     > target/fig2_output.txt 2>&1
cargo run --release -p sgm-bench --bin fig3     > target/fig3_output.txt 2>&1
cargo run --release -p sgm-bench --bin fig4     > target/fig4_output.txt 2>&1
cargo run --release -p sgm-bench --bin ablation > target/ablation_output.txt 2>&1
echo "PIPELINE_COMPLETE"
