#!/bin/bash
# Regenerates every experiment artifact sequentially (single-core safe).
#
# Usage: ./run_experiments.sh [--quick|--samplers-quick|--serve-quick]
#   --quick           smoke mode: tiny wall budgets + bench dry-run, just
#                     proves the whole pipeline still executes end to end.
#   --samplers-quick  only the sampler bake-off tier: the cross-sampler ×
#                     cross-PDE convergence matrix (gated on its
#                     statistical acceptance checks) plus the
#                     sampler_overhead bench group diffed with
#                     bench_diff --strict (idle adapt stage must cost
#                     within noise of a draw-only engine run).
#   --serve-quick     smoke the job server: 25 quickstart-sized jobs from
#                     4 tenants through real sockets (fairness +
#                     backpressure asserted in-binary), telemetry
#                     schema-checked by validate_telemetry.
cd /root/repo
if [ "$1" = "--serve-quick" ]; then
    set -x
    cargo build --release -p sgm-serve -p sgm-testkit 2>&1 | tail -3
    mkdir -p target
    SERVE_LOG="$PWD/target/serve_quick.jsonl"
    # The load test exits non-zero on any dropped connection, unfair
    # tenant split, or missing backpressure. At smoke scale (~6 jobs
    # per tenant in ~50 ms) the throughput ratio is dominated by timing
    # noise, so the fairness bound is loosened here; the real ≤3x gate
    # runs on the 200-job CI tier and the 1000-job acceptance test.
    cargo run --release -p sgm-serve --bin load_test -- \
        --jobs 25 --tenants 4 --workers 2 --queue-depth 8 --max-jobs 16 \
        --fairness-max 25 --out "$SERVE_LOG" || exit 1
    cargo run --release -p sgm-testkit --bin validate_telemetry -- "$SERVE_LOG" \
        --require-metric sgm_serve_jobs_completed_total --min-records 25 || exit 1
    echo "SERVE_QUICK_COMPLETE"
    exit 0
fi
if [ "$1" = "--samplers-quick" ]; then
    set -x
    cargo build --release -p sgm-bench 2>&1 | tail -3
    # Matrix + statistical acceptance gates (non-zero exit on failure).
    cargo run --release -p sgm-bench --bin sampler_matrix || exit 1
    # Adapt-stage overhead: same case names in both dumps, sampler
    # switched by env; --strict fails the tier on a >10 % regression.
    cargo bench -p sgm-bench --bench components -- \
        sampler_overhead/engine_adapt_stage --iters 20 \
        --json "$PWD/target/sampler_adapt_off.json" > target/sampler_adapt_off.txt 2>&1 || exit 1
    SGM_SAMPLER_ADAPT=1 cargo bench -p sgm-bench --bench components -- \
        sampler_overhead/engine_adapt_stage --iters 20 \
        --json "$PWD/target/sampler_adapt_on.json" > target/sampler_adapt_on.txt 2>&1 || exit 1
    cargo run --release -p sgm-bench --bin bench_diff -- --strict \
        target/sampler_adapt_off.json target/sampler_adapt_on.json || exit 1
    echo "SAMPLERS_QUICK_COMPLETE"
    exit 0
fi
if [ "$1" = "--quick" ]; then
    export SGM_BUDGET_SECS=${SGM_BUDGET_SECS:-3}
    export SGM_ABLATION_SECS=${SGM_ABLATION_SECS:-1}
    BENCH_ARGS="--test"
else
    export SGM_BUDGET_SECS=${SGM_BUDGET_SECS:-75}
    export SGM_ABLATION_SECS=${SGM_ABLATION_SECS:-10}
    BENCH_ARGS=""
fi
# Every experiment bin writes one telemetry JSONL per method run here
# (consumed by `run_report` and validated by `validate_telemetry`).
export SGM_RUN_LOG_DIR=${SGM_RUN_LOG_DIR:-$PWD/target/telemetry}
mkdir -p "$SGM_RUN_LOG_DIR"
set -x
cargo build --release --workspace 2>&1 | tail -3
cargo test --release -p sgm-core -p sgm-nn 2>&1 | grep -E "test result|FAILED|error\["
cargo bench -p sgm-bench --bench components -- $BENCH_ARGS > target/bench_output.txt 2>&1 || exit 1
# SIMD kernel group in both dispatch tiers; diff the dumps so a tier
# regression (or a broken fallback) fails the pipeline loudly. The
# --json paths must be absolute: cargo runs bench binaries with the
# package dir (crates/bench) as cwd, not the workspace root.
SGM_SIMD=scalar cargo bench -p sgm-bench --bench components -- $BENCH_ARGS simd_kernels --json "$PWD/target/simd_scalar.json" > target/simd_scalar_output.txt 2>&1 || exit 1
SGM_SIMD=auto   cargo bench -p sgm-bench --bench components -- $BENCH_ARGS simd_kernels --json "$PWD/target/simd_auto.json"   > target/simd_auto_output.txt 2>&1 || exit 1
cargo run --release -p sgm-bench --bin bench_diff -- target/simd_scalar.json target/simd_auto.json > target/simd_diff.txt 2>&1 || exit 1
# Incremental refresh vs full rebuild, same machine, identical
# (group,name) ids in both dumps — bench_diff's speedup column *is* the
# delta-engine win. The 1M tier is skipped here (capped at 256k); quick
# mode dry-runs the bench, producing empty dumps, so the ≥3x gate only
# arms on real runs.
REFRESH_MAX_N=${SGM_REFRESH_BENCH_MAX_N:-262144}
# Quick mode dry-runs produce empty dumps: disarm the gate and keep the
# scratch diff in target/ so the committed BENCH_PR6.json (real numbers)
# is never clobbered by a smoke run.
if [ -z "$BENCH_ARGS" ]; then
    REFRESH_GATE="--min-speedup 3"
    REFRESH_JSON="$PWD/BENCH_PR6.json"
else
    REFRESH_GATE=""
    REFRESH_JSON="$PWD/target/refresh_diff_quick.json"
fi
SGM_REFRESH_MODE=full  SGM_REFRESH_BENCH_MAX_N=$REFRESH_MAX_N cargo bench -p sgm-bench --bench refresh_scaling -- $BENCH_ARGS --json "$PWD/target/refresh_full.json"  > target/refresh_full_output.txt 2>&1 || exit 1
SGM_REFRESH_MODE=delta SGM_REFRESH_BENCH_MAX_N=$REFRESH_MAX_N cargo bench -p sgm-bench --bench refresh_scaling -- $BENCH_ARGS --json "$PWD/target/refresh_delta.json" > target/refresh_delta_output.txt 2>&1 || exit 1
cargo run --release -p sgm-bench --bin bench_diff -- $REFRESH_GATE --json "$REFRESH_JSON" target/refresh_full.json target/refresh_delta.json > target/refresh_diff.txt 2>&1 || exit 1
# Batched multi-model execution: the same multi_model cases run B
# sequential solo passes (seq) and one interleaved BatchedMlp pass
# (batched); bench_diff's speedup column is the batched-execution win.
# BENCH_PR9.json keeps the full honest record (B < 8 pads to 8 lanes
# and reads as a slowdown there — see DESIGN.md §6f); the gate runs on
# the lane-full b8_w128 case only, the probe/sweep/serve regime, at a
# noise floor below the ~1.4x it measures. Quick mode dry-runs the
# bench (empty dumps), so the gate only arms on real runs.
if [ -z "$BENCH_ARGS" ]; then
    MULTI_GATE="--min-speedup 1.2"
    MULTI_JSON="$PWD/BENCH_PR9.json"
else
    MULTI_GATE=""
    MULTI_JSON="$PWD/target/multi_diff_quick.json"
fi
SGM_MULTI_MODE=seq     cargo bench -p sgm-bench --bench components -- $BENCH_ARGS multi_model --json "$PWD/target/multi_seq.json"     > target/multi_seq_output.txt 2>&1 || exit 1
SGM_MULTI_MODE=batched cargo bench -p sgm-bench --bench components -- $BENCH_ARGS multi_model --json "$PWD/target/multi_batched.json" > target/multi_batched_output.txt 2>&1 || exit 1
cargo run --release -p sgm-bench --bin bench_diff -- --json "$MULTI_JSON" target/multi_seq.json target/multi_batched.json > target/multi_diff.txt 2>&1 || exit 1
if [ -n "$MULTI_GATE" ]; then
    SGM_MULTI_MODE=seq     cargo bench -p sgm-bench --bench components -- multi_model/fwd_bwd_b8_w128 --iters 15 --json "$PWD/target/multi_seq_b8.json"     > target/multi_seq_b8_output.txt 2>&1 || exit 1
    SGM_MULTI_MODE=batched cargo bench -p sgm-bench --bench components -- multi_model/fwd_bwd_b8_w128 --iters 15 --json "$PWD/target/multi_batched_b8.json" > target/multi_batched_b8_output.txt 2>&1 || exit 1
    cargo run --release -p sgm-bench --bin bench_diff -- $MULTI_GATE target/multi_seq_b8.json target/multi_batched_b8.json > target/multi_gate.txt 2>&1 || exit 1
fi
cargo run --release -p sgm-bench --bin table1   > target/table1_output.txt 2>&1
cargo run --release -p sgm-bench --bin table2   > target/table2_output.txt 2>&1
cargo run --release -p sgm-bench --bin fig2     > target/fig2_output.txt 2>&1
cargo run --release -p sgm-bench --bin fig3     > target/fig3_output.txt 2>&1
cargo run --release -p sgm-bench --bin fig4     > target/fig4_output.txt 2>&1
cargo run --release -p sgm-bench --bin ablation > target/ablation_output.txt 2>&1
# Schema-check whatever telemetry the suites produced (tolerates an
# empty dir on bins that don't route through run_suite).
if ls "$SGM_RUN_LOG_DIR"/*.jsonl >/dev/null 2>&1; then
    cargo run --release -p sgm-testkit --bin validate_telemetry -- "$SGM_RUN_LOG_DIR"/*.jsonl \
        > target/telemetry_validation.txt 2>&1 || exit 1
fi
echo "PIPELINE_COMPLETE"
